//! Standalone rt3-serve server: binds a real TCP socket and serves the
//! length-prefixed binary protocol until the battery dies (graceful
//! drain) or an optional wall-clock limit elapses.
//!
//! Environment knobs (shared `rt3::env::parsed` helper):
//!
//! * `RT3_SERVE_ADDR` — bind address (default `127.0.0.1:7733`; use port
//!   `0` for an ephemeral port, printed on startup);
//! * `RT3_BATTERY_J` — battery capacity in joules (default 120);
//! * `RT3_SERVE_SECS` — wall-clock limit in seconds, `0` = run until the
//!   battery dies (default 0);
//! * `RT3_WINDOW_MS` — governor window in milliseconds (default 1000).
//!
//! Point `cargo run --release --example loadgen` at the printed address
//! via `RT3_SERVE_ADDR`, or poke it with `rt3::server::ServeClient`.
//!
//! Run with `cargo run --release --example serve_socket`.

use rt3::server::{Server, ServerConfig, ServerSpec};
use std::time::{Duration, Instant};

fn main() {
    let addr: String = match std::env::var("RT3_SERVE_ADDR") {
        Ok(raw) => raw,
        Err(_) => "127.0.0.1:7733".to_string(),
    };
    let battery_j: f64 = rt3::env::parsed("RT3_BATTERY_J", 120.0);
    let limit_secs: f64 = rt3::env::parsed("RT3_SERVE_SECS", 0.0);
    let window_ms: f64 = rt3::env::parsed("RT3_WINDOW_MS", 1_000.0);

    let spec = ServerSpec::paper_default(battery_j);
    let levels = spec.governor.levels().len();
    let config = ServerConfig {
        window_ms,
        ..ServerConfig::default()
    };
    let mut server = Server::spawn(&addr, spec, config).expect("server spawn");
    println!(
        "serving on {} ({} governor levels, {:.0} J battery, {:.0} ms windows)",
        server.local_addr(),
        levels,
        battery_j,
        window_ms
    );

    let started = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(100));
        if server.is_draining() {
            println!(
                "battery dead after {:.1} s: drained",
                started.elapsed().as_secs_f64()
            );
            break;
        }
        if limit_secs > 0.0 && started.elapsed().as_secs_f64() >= limit_secs {
            println!("wall-clock limit reached: shutting down");
            break;
        }
    }
    println!(
        "{}",
        server
            .metrics_snapshot()
            .to_jsonl(&[("source", "serve_socket")])
            .trim_end()
    );
    server.shutdown();
}
