//! Battery-runtime scenario: simulate a battery-powered device running
//! Transformer inference continuously ("dancing along the battery"),
//! comparing no reconfiguration, DVFS only, and DVFS + RT3 software
//! reconfiguration — the paper's Table II story as a runnable program.
//!
//! Run with `cargo run --example battery_runtime`.

use rt3::core::{run_level1, AccuracyEvaluator, PruningSpec};
use rt3::core::{Rt3Config, SurrogateEvaluator, TaskProfile};
use rt3::hardware::{
    number_of_runs, simulate_battery_lifetime, simulate_fixed_level, ExecutionProfile,
    ModelWorkload, PerformancePredictor, PowerModel,
};
use rt3::sparse::SparseFormat;
use rt3::transformer::{TransformerConfig, TransformerLm};

fn main() {
    let mut config = Rt3Config::wikitext_default();
    config.timing_constraint_ms = 115.0;
    config.energy_budget_j = 50_000.0;
    let predictor = PerformancePredictor::cortex_a7();
    let power = PowerModel::cortex_a7();
    let governor = &config.governor;
    let top = *governor.levels().last().expect("levels");

    // Level-1 pruned model M1: just meets the deadline at the top level.
    let model = TransformerLm::new(TransformerConfig::paper_transformer(512), 7);
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let base_sparsity = backbone.sparsity.max(0.55);
    let latency = |s: f64, level| {
        let w = ModelWorkload::from_config(
            &config.workload_config,
            s,
            config.seq_len,
            SparseFormat::BlockPruned,
        );
        predictor.latency_ms(&w, level)
    };

    println!("timing constraint: {} ms", config.timing_constraint_ms);
    println!(
        "M1 (sparsity {:.0}%): latency at l6 = {:.1} ms",
        100.0 * base_sparsity,
        latency(base_sparsity, &top)
    );

    // E1: no reconfiguration.
    let e1 = simulate_fixed_level(
        &top,
        config.energy_budget_j,
        ExecutionProfile {
            latency_ms: latency(base_sparsity, &top),
            power_w: power.power_w(&top),
        },
        config.timing_constraint_ms,
    );

    // E2: DVFS only (same model everywhere).
    let e2_profiles: Vec<ExecutionProfile> = governor
        .levels()
        .iter()
        .map(|l| ExecutionProfile {
            latency_ms: latency(base_sparsity, l),
            power_w: power.power_w(l),
        })
        .collect();
    let e2 = simulate_battery_lifetime(
        governor,
        config.energy_budget_j,
        &e2_profiles,
        config.timing_constraint_ms,
    );

    // E3: DVFS + per-level sparsity chosen so every level meets the deadline.
    let per_level_sparsity = [0.87, 0.74, base_sparsity];
    let e3_profiles: Vec<ExecutionProfile> = governor
        .levels()
        .iter()
        .zip(per_level_sparsity)
        .map(|(l, s)| ExecutionProfile {
            latency_ms: latency(s, l),
            power_w: power.power_w(l),
        })
        .collect();
    let e3 = simulate_battery_lifetime(
        governor,
        config.energy_budget_j,
        &e3_profiles,
        config.timing_constraint_ms,
    );

    println!();
    println!("approach   runs        deadline-met   improvement");
    for (name, report) in [("E1", &e1), ("E2", &e2), ("E3", &e3)] {
        println!(
            "{:<10} {:<11} {:<14} {:.2}x",
            name,
            report.runs,
            report.constraint_satisfied,
            report.runs as f64 / e1.runs as f64
        );
    }

    // accuracy paid by E3's sparser low-frequency models
    println!();
    println!("accuracy per E3 sub-model (surrogate):");
    for (level, s) in governor.levels().iter().zip(per_level_sparsity) {
        let acc = evaluator.evaluate(
            &rt3::transformer::MaskSet::new(),
            &PruningSpec {
                sparsity: s,
                level1_guided: true,
                level2: Some(true),
            },
        );
        println!(
            "  l{} ({} MHz): sparsity {:.0}% -> accuracy {:.2}%, energy/inference {:.3} J",
            level.index,
            level.frequency_mhz,
            100.0 * s,
            100.0 * acc,
            power.energy_per_inference_j(level, latency(s, level))
        );
    }
    let energy_best = power.energy_per_inference_j(&top, latency(base_sparsity, &top));
    println!(
        "\nfor reference, a full battery ({} J) would fit {} F-mode inferences",
        config.energy_budget_j,
        number_of_runs(config.energy_budget_j, energy_best)
    );
}
