//! Observability-plane acceptance run: the heterogeneous-cliff fleet under
//! *round-robin* routing (which burns three batteries down — the failure
//! the obs plane must predict), with every device at the `Full` telemetry
//! level so the per-device [`rt3::telemetry::ObsPlane`] scrapes series and
//! evaluates the default alert rules each governor window.
//!
//! Two gates, both asserted here and re-checked by CI from the emitted
//! `BENCH_obs.json` line:
//!
//! 1. **Alert lead time.** For every device that dies, the `battery_cliff`
//!    burn-rate rule (time-to-death below eight windows, sustained for
//!    two) must have entered `Firing` at least **two governor windows
//!    before the death it predicts** — an operator paging on it has time
//!    to shed load before the battery is gone.
//! 2. **Miss attribution.** Under battery-aware routing (the
//!    `telemetry_trace` fixture configuration: load concentrates on
//!    healthy devices, so greedy micro-batching produces genuine deadline
//!    misses) the cross-layer span forest rebuilt from the request trace
//!    must attribute **100% of deadline misses** to a dominant queue /
//!    switch / infer segment, and the per-device span totals must
//!    reconcile with the recorded latency histograms.
//!
//! `BENCH_QUICK=1` (CI smoke mode) skips the informational predictive
//! comparison run and keeps only the two gated runs.
//!
//! Run with `cargo run --release --example serve_obs`.

use rt3::core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SurrogateEvaluator, TaskProfile,
};
use rt3::runtime::{
    Fleet, FleetConfig, FleetReport, FleetScenario, RouterConfig, RoutingPolicy, SchedulerConfig,
    TelemetryConfig,
};
use rt3::telemetry::SpanForest;
use rt3::transformer::{TransformerConfig, TransformerLm};

fn main() {
    let quick: u32 = rt3::env::parsed("BENCH_QUICK", 0);

    // ---- offline: a tiny search so service times are milliseconds -------
    let model = TransformerLm::new(TransformerConfig::tiny(32), 13);
    let mut config = Rt3Config::tiny_test();
    config.seq_len = 256;
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);

    let scenario = FleetScenario::heterogeneous_cliff();
    let serve = |policy: RoutingPolicy| -> FleetReport {
        let fleet_cfg = FleetConfig {
            router: RouterConfig {
                policy,
                ..RouterConfig::default()
            },
            real_inference: false,
            // tight budget: greedy micro-batching produces genuine misses
            deadline_budget_ms: 16.0,
            scheduler: SchedulerConfig {
                workers: 1,
                max_batch: 16,
                ..SchedulerConfig::default()
            },
            telemetry: TelemetryConfig::full(),
            ..FleetConfig::default()
        };
        let fleet = Fleet::new(
            &model,
            backbone.masks.clone(),
            &space,
            &outcome,
            &config,
            &scenario,
            fleet_cfg,
        );
        fleet.run()
    };

    println!(
        "scenario: {} ({} devices, {} s), round-robin routing",
        scenario.name,
        scenario.device_count(),
        scenario.duration_s(),
    );
    let report = serve(RoutingPolicy::RoundRobin);
    for line in report.device_summaries() {
        println!("{line}");
    }

    // ---- gate 1: the cliff alert fires before every death ---------------
    let deaths = report.deaths();
    assert!(
        deaths > 0,
        "round-robin on the cliff scenario must kill batteries — \
         otherwise the lead-time gate is vacuous"
    );
    let mut min_lead: Option<u32> = None;
    for (device, profile) in report.devices.iter().zip(&scenario.devices) {
        let Some(died_at_s) = device.died_at_s else {
            continue;
        };
        let obs = device
            .telemetry
            .as_ref()
            .expect("Full telemetry on every device")
            .obs
            .as_ref()
            .expect("Full telemetry carries the obs plane");
        let fired_at = obs.first_firing("battery_cliff").unwrap_or_else(|| {
            panic!(
                "{} died at {died_at_s} s but battery_cliff never fired",
                profile.name
            )
        });
        assert!(
            fired_at < died_at_s,
            "{}: battery_cliff fired at window {fired_at}, at or after the death at {died_at_s} s",
            profile.name
        );
        let lead = died_at_s - fired_at;
        println!(
            "  {:<14} died at {died_at_s:>3} s, battery_cliff fired at window {fired_at:>3} \
             (lead {lead} windows)",
            profile.name
        );
        assert!(
            lead >= 2,
            "{}: alert lead of {lead} windows is below the 2-window gate",
            profile.name
        );
        min_lead = Some(min_lead.map_or(lead, |m| m.min(lead)));
    }
    let min_lead = min_lead.expect("at least one death was checked above");

    // ---- gate 2: spans attribute 100% of deadline misses ----------------
    // battery-aware routing concentrates load on healthy devices, which is
    // what pushes admitted requests past the tight 16 ms budget — and,
    // being the default policy, doubles as the survival comparison
    let aware = serve(RoutingPolicy::BatteryAware);
    println!(
        "battery-aware comparison: {} deaths, {} deadline misses",
        aware.deaths(),
        aware.missed_deadline(),
    );
    assert!(
        aware.missed_deadline() > 0,
        "the fixture configuration must produce misses — \
         otherwise the attribution gate is vacuous"
    );
    let mut merged = SpanForest::default();
    for device in &aware.devices {
        let snapshot = device.telemetry.as_ref().expect("Full snapshot");
        let forest = snapshot.spans();
        let queue_sum: f64 = forest.requests.iter().map(|r| r.queue_ms()).sum();
        let hist_sum = snapshot
            .metrics
            .histogram("queue_wait_ms")
            .map_or(0.0, |h| h.sum());
        assert!(
            (queue_sum - hist_sum).abs() <= 1e-6 * hist_sum.abs().max(1.0),
            "span queue total {queue_sum} disagrees with the recorded histogram {hist_sum}"
        );
        merged.merge(&forest);
    }
    let attribution = merged.miss_attribution();
    assert_eq!(
        attribution.total(),
        aware.missed_deadline(),
        "every deadline miss must be attributed to a dominant segment"
    );
    println!(
        "miss attribution: {} queue, {} switch, {} infer ({} total misses)",
        attribution.queue,
        attribution.switch,
        attribution.infer,
        attribution.total(),
    );

    // informational: predictive routing on the same trace, and how often
    // the same rule set pages when the fleet stays healthy
    if quick == 0 {
        let predictive = serve(RoutingPolicy::Predictive);
        let fired = predictive
            .devices
            .iter()
            .filter_map(|d| {
                d.telemetry
                    .as_ref()?
                    .obs
                    .as_ref()?
                    .first_firing("battery_cliff")
            })
            .count();
        println!(
            "predictive comparison: {} deaths, battery_cliff fired on {fired}/{} devices",
            predictive.deaths(),
            predictive.devices.len(),
        );
    }

    println!(
        concat!(
            "{{\"bench\": \"obs/heterogeneous_cliff\", \"routing\": \"round-robin\", ",
            "\"deaths\": {deaths}, \"alert_lead_windows\": {lead}, ",
            "\"completed\": {completed}, \"missed_deadline\": {missed}, ",
            "\"miss_queue\": {queue}, \"miss_switch\": {switch}, \"miss_infer\": {infer}}}"
        ),
        deaths = deaths,
        lead = min_lead,
        completed = aware.completed(),
        missed = aware.missed_deadline(),
        queue = attribution.queue,
        switch = attribution.switch,
        infer = attribution.infer,
    );
    println!("serve_obs OK: alert lead {min_lead} windows, 100% of misses attributed");
}
