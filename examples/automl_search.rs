//! AutoML search with *real training*: runs the full RT3 pipeline — BP, the
//! pattern search space, the RL controller and joint backbone training
//! (Fig. 2) — on a tiny Transformer and a synthetic WikiText-like corpus, so
//! every accuracy number is measured rather than taken from a surrogate.
//!
//! This is the faithful-but-slow path; it takes a minute or two on a laptop.
//! Run with `cargo run --release --example automl_search`.
//!
//! Environment (so CI can run a quick mode without code edits):
//! * `RT3_BUDGET` — Level-2 episodes / proposals (default 8);
//! * `RT3_SEED` — search seed (default the `tiny_test` seed);
//! * `RT3_OPTIMIZER` — the Level-2 optimizer
//!   (`reinforce|evolutionary|bandit|random|exhaustive`, default
//!   `reinforce`, the paper's RL controller).

use rt3::core::SurrogateEvaluator;
use rt3::core::{
    build_optimizer, build_search_space, individually_train_lm, joint_train_lm,
    level2_assignment_space, run_level1, run_level2_search_with, OptimizerKind, Rt3Config,
    TaskProfile, TrainedLmEvaluator,
};
use rt3::data::{CorpusConfig, MarkovCorpus};
use rt3::pruning::combined_masks_for_model;
use rt3::transformer::{Model, TrainOptions, TransformerConfig, TransformerLm};

fn main() {
    // tiny model + corpus so real training stays fast
    let corpus = MarkovCorpus::generate(&CorpusConfig {
        vocab_size: 64,
        train_tokens: 4_000,
        valid_tokens: 600,
        branching: 3,
        seed: 13,
    });
    let model = TransformerLm::new(TransformerConfig::tiny(64), 3);
    let train_options = TrainOptions {
        epochs: 1,
        learning_rate: 5e-3,
        batch_size: 8,
        seq_len: 10,
        max_batches_per_epoch: Some(20),
        seed: 5,
    };

    let mut config = Rt3Config::tiny_test();
    config.episodes = rt3::env::parsed("RT3_BUDGET", 8);
    config.seed = rt3::env::parsed("RT3_SEED", config.seed);
    config.workload_config = TransformerConfig::paper_transformer(512);
    let optimizer_kind = OptimizerKind::parse(
        &std::env::var("RT3_OPTIMIZER").unwrap_or_else(|_| "reinforce".into()),
    )
    .expect("RT3_OPTIMIZER");

    // Level 1 with a *trained* evaluator: the backbone accuracy is measured.
    let mut evaluator =
        TrainedLmEvaluator::new(model.clone(), corpus.clone(), train_options.clone());
    let backbone = run_level1(&model, &config, &mut evaluator);
    println!(
        "level 1: backbone sparsity {:.1}%, measured accuracy {:.2}% (unpruned {:.2}%)",
        100.0 * backbone.sparsity,
        100.0 * backbone.accuracy,
        100.0 * backbone.unpruned_accuracy
    );

    // Level 2: the search uses the fast surrogate to explore, then the
    // chosen pattern sets are verified with real joint training.
    let space = build_search_space(&model, &backbone, &config);
    let mut surrogate = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let mut optimizer = build_optimizer(
        optimizer_kind,
        level2_assignment_space(&space, &config),
        config.seed,
    );
    let outcome = run_level2_search_with(
        optimizer.as_mut(),
        &model,
        &backbone,
        &space,
        &config,
        &mut surrogate,
    );
    let best = outcome.best.expect("feasible solution");
    println!(
        "level 2 ({}): best actions {:?} with sparsities {:?}",
        optimizer_kind,
        best.actions,
        best.sparsities
            .iter()
            .map(|s| format!("{:.0}%", 100.0 * s))
            .collect::<Vec<_>>()
    );

    // Build the per-level mask sets and jointly train the shared backbone.
    let prunable = model.prunable_parameter_names();
    let level_masks: Vec<_> = best
        .actions
        .iter()
        .map(|&a| {
            combined_masks_for_model(
                &model,
                &backbone.masks,
                &prunable,
                &space.candidates()[a].set,
            )
        })
        .collect();
    let weights = vec![1.0 / level_masks.len() as f64; level_masks.len()];
    let mut shared = model.clone();
    let joint = joint_train_lm(&mut shared, &corpus, &level_masks, &weights, &train_options);
    println!("joint training (Fig. 2): per-level measured accuracy");
    for (i, score) in joint.per_level_scores.iter().enumerate() {
        println!("  M{}: {:.2}%", i + 1, 100.0 * score);
    }

    // Upper bound: train each sub-model individually.
    let ub = individually_train_lm(&model, &corpus, &level_masks, &train_options);
    println!("upper bound (individually trained models):");
    for (i, score) in ub.iter().enumerate() {
        let gap = score - joint.per_level_scores[i];
        println!(
            "  M{}: {:.2}% (gap to joint: {:+.2}%)",
            i + 1,
            100.0 * score,
            100.0 * gap
        );
    }
    println!();
    println!("RT3 switches between these sub-models by swapping pattern sets (ms), while the");
    println!("upper bound must reload a full model (seconds) — see the table3_automl bench.");
}
