//! Chaos suite for the simulated fleet: every scenario runs under
//! closed-loop clients (bounded outstanding jobs, timeout-retry with
//! exponential backoff + seeded jitter, abandonment) against the three
//! routing policies, every run is checked against the global invariant
//! harness ([`rt3::runtime::check_invariants`]), and each run emits one
//! JSON line — the `BENCH_chaos.json` rows. The example **fails**
//! (non-zero exit) if any invariant is violated, or if predictive routing
//! does not strictly beat round-robin on retry amplification under the
//! retry-storm scenario (the headline closed-loop result: routing on
//! predicted time-to-death keeps the weak device alive longer, so fewer
//! rejects feed back as retries).
//!
//! Environment knobs (shared `rt3::env::parsed` helper):
//!
//! * `RT3_CHAOS_SCENARIO` — `all` (default: retry-storm, flash-crowd,
//!   thermal-wave, charge-cycle), one scenario by name, or `gen:<seed>`
//!   for a generated scenario (the pass/fail gate only runs when the
//!   retry-storm scenario is in the suite);
//! * `RT3_SEED` — traffic/jitter seed (default 42).
//!
//! Run with `cargo run --release --example serve_chaos`.

use rt3::core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SurrogateEvaluator, TaskProfile,
};
use rt3::runtime::{check_invariants, ChaosReport, ChaosScenario, Fleet, RoutingPolicy};
use rt3::transformer::{TransformerConfig, TransformerLm};

fn main() {
    let seed: u64 = rt3::env::parsed("RT3_SEED", 42);
    let which: String = rt3::env::parsed("RT3_CHAOS_SCENARIO", "all".to_string());

    let scenarios: Vec<ChaosScenario> = match which.as_str() {
        "all" => vec![
            ChaosScenario::retry_storm(),
            ChaosScenario::flash_crowd(),
            ChaosScenario::thermal_wave(),
            ChaosScenario::charge_cycle(),
        ],
        other => match other.strip_prefix("gen:") {
            Some(gen_seed) => {
                let gen_seed: u64 = gen_seed
                    .parse()
                    .unwrap_or_else(|_| panic!("RT3_CHAOS_SCENARIO={other:?}: bad gen seed"));
                vec![ChaosScenario::generate(gen_seed)]
            }
            None => vec![ChaosScenario::by_name(other).unwrap_or_else(|| {
                panic!(
                    "RT3_CHAOS_SCENARIO={other:?} (expected all, gen:<seed>, \
                     retry-storm, flash-crowd, thermal-wave or charge-cycle)"
                )
            })],
        },
    };

    // the chaos harness stresses the control plane (admission, routing,
    // retries), not the kernels: the tiny offline pipeline keeps the
    // whole suite in seconds while exercising identical decision paths
    let model = TransformerLm::new(TransformerConfig::tiny(32), 13);
    let config = Rt3Config::tiny_test();
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);

    let run = |policy: RoutingPolicy, chaos: &ChaosScenario| -> ChaosReport {
        let fleet_cfg = ChaosScenario::storm_fleet_config(policy, seed);
        let scenario = chaos.fleet_scenario();
        let fleet = Fleet::new(
            &model,
            backbone.masks.clone(),
            &space,
            &outcome,
            &config,
            &scenario,
            fleet_cfg,
        );
        fleet.run_chaos(chaos)
    };

    let policies = [
        RoutingPolicy::BatteryAware,
        RoutingPolicy::Predictive,
        RoutingPolicy::RoundRobin,
    ];
    let mut failures = Vec::new();
    for chaos in &scenarios {
        println!(
            "scenario {} ({} s, seed {seed:#x}): clients retry ≤{}, backoff {:.0} ms ×{:.1}",
            chaos.name,
            chaos.fleet_scenario().duration_s(),
            chaos.clients.max_attempts,
            chaos.clients.backoff_base_ms,
            chaos.clients.backoff_factor,
        );
        let mut amplification = Vec::new();
        for policy in policies {
            let report = run(policy, chaos);
            let invariants = match check_invariants(chaos, &report) {
                Ok(()) => "ok".to_string(),
                Err(violations) => {
                    for violation in &violations {
                        failures.push(format!("{} / {:?}: {violation}", chaos.name, policy));
                    }
                    format!("{} violated", violations.len())
                }
            };
            println!("  {}  invariants {}", report.summary(), invariants);
            let clients = &report.clients;
            println!(
                concat!(
                    "{{\"bench\": \"chaos/{name}\", \"routing\": \"{routing}\", ",
                    "\"seed\": {seed}, \"jobs\": {jobs}, \"suppressed\": {suppressed}, ",
                    "\"attempts\": {attempts}, \"retries\": {retries}, ",
                    "\"succeeded\": {succeeded}, \"succeeded_late\": {late}, ",
                    "\"abandoned\": {abandoned}, \"pending_at_end\": {pending}, ",
                    "\"retry_amplification\": {amp:.4}, \"success_rate\": {ok:.4}, ",
                    "\"fleet_arrivals\": {arrivals}, \"unroutable\": {unroutable}, ",
                    "\"fleet_miss_rate\": {miss:.4}, \"deaths\": {deaths}, ",
                    "\"invariants\": \"{invariants}\"}}"
                ),
                name = chaos.name,
                routing = report.fleet.routing,
                seed = seed,
                jobs = clients.jobs,
                suppressed = clients.suppressed,
                attempts = clients.attempts,
                retries = clients.retries,
                succeeded = clients.succeeded,
                late = clients.succeeded_late,
                abandoned = clients.abandoned,
                pending = clients.pending_at_end,
                amp = clients.retry_amplification(),
                ok = clients.success_rate(),
                arrivals = report.fleet.arrivals,
                unroutable = report.fleet.unroutable,
                miss = report.fleet.miss_rate(),
                deaths = report.fleet.deaths(),
                invariants = invariants,
            );
            amplification.push((policy, clients.retry_amplification()));
        }

        // the headline gate: under the retry storm, predictive routing
        // must amplify strictly less than round-robin — time-to-death
        // routing starves the nearly-dead battery, so the fleet keeps its
        // admission capacity and the feedback loop stays tamer
        if chaos.name == "chaos-retry-storm" {
            let amp_of = |p: RoutingPolicy| {
                amplification
                    .iter()
                    .find(|(q, _)| *q == p)
                    .map(|&(_, a)| a)
                    .expect("every policy ran")
            };
            let predictive = amp_of(RoutingPolicy::Predictive);
            let round_robin = amp_of(RoutingPolicy::RoundRobin);
            if predictive < round_robin {
                println!(
                    "  gate: predictive amplification {predictive:.3} < \
                     round-robin {round_robin:.3}"
                );
            } else {
                failures.push(format!(
                    "retry-storm gate: predictive amplification {predictive:.3} \
                     must be strictly below round-robin {round_robin:.3}"
                ));
            }
        }
    }

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    println!(
        "serve_chaos OK: every invariant held across {} scenario(s)",
        scenarios.len()
    );
}
