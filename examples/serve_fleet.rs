//! Fleet-scale sharded serving: the offline RT3 search runs once, then a
//! fleet of four simulated devices — heterogeneous initial charge, one on a
//! charger, a staggered thermal cap and a mid-trace battery cliff — serves
//! one arrival stream under four routing policies. Battery-headroom
//! routing must beat both the round-robin and the sticky baseline on
//! deadline-miss rate, and *predictive* routing (time-to-death from each
//! device's EWMA drain rate, via the shared cost layer) must do at least as
//! well as raw headroom: the drain tracker sees that the charging device is
//! effectively bottomless and that a fast-draining full battery is not, and
//! shifts load accordingly.
//!
//! Environment knobs (shared `rt3::env::parsed` helper, as in
//! `search_comparison`):
//!
//! * `RT3_SEED` — fleet traffic seed (default the `FleetConfig` default);
//! * `RT3_SCENARIO` — `cliff` (default) or `diurnal`;
//! * `RT3_SPH` — seconds per simulated hour for the diurnal trace
//!   (default 5);
//! * `RT3_TELEMETRY` — `jsonl:<path>`: record the runs at the `Full`
//!   telemetry level and dump the predictive run's per-device metrics,
//!   request traces, decision audits and router counters to `<path>` as
//!   JSONL (one `"device"` label per line, the router as `"router"`, the
//!   fleet-wide merged aggregate as `"fleet"`).
//!
//! The pass/fail assertions only run in the default configuration — with
//! overrides the example is exploratory.
//!
//! Run with `cargo run --release --example serve_fleet`.

use rt3::core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SurrogateEvaluator, TaskProfile,
};
use rt3::runtime::{
    Fleet, FleetConfig, FleetReport, FleetScenario, RouterConfig, RoutingPolicy, TelemetryConfig,
};
use rt3::transformer::{TransformerConfig, TransformerLm};

/// Parses `RT3_TELEMETRY=jsonl:<path>` into the JSONL sink path, `None`
/// when the variable is unset.
fn telemetry_sink() -> Option<std::path::PathBuf> {
    match std::env::var("RT3_TELEMETRY") {
        Ok(raw) => match raw.strip_prefix("jsonl:") {
            Some(path) if !path.is_empty() => Some(path.into()),
            _ => panic!("RT3_TELEMETRY={raw:?} (expected jsonl:<path>)"),
        },
        Err(_) => None,
    }
}

fn main() {
    let seed = rt3::env::parsed("RT3_SEED", FleetConfig::default().seed);
    let scenario_name: String = rt3::env::parsed("RT3_SCENARIO", "cliff".to_string());
    let sink = telemetry_sink();
    let default_run = seed == FleetConfig::default().seed && scenario_name == "cliff";

    // ---- offline: the two-level RT3 search (shared by every device) ------
    let mut config = Rt3Config::wikitext_default();
    config.timing_constraint_ms = 115.0;
    config.episodes = 16;
    let model = TransformerLm::new(TransformerConfig::paper_transformer(256), 11);
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    println!("offline search: Level 1 (block pruning) + Level 2 (pattern sets per V/F level)...");
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
    println!(
        "  backbone sparsity {:.0}%, feasible: {}",
        100.0 * backbone.sparsity,
        outcome.best.is_some(),
    );

    // ---- online: the selected fleet trace --------------------------------
    let scenario = match scenario_name.as_str() {
        "cliff" => FleetScenario::heterogeneous_cliff(),
        "diurnal" => FleetScenario::diurnal(rt3::env::parsed("RT3_SPH", 5)),
        other => panic!("RT3_SCENARIO={other:?} (expected cliff|diurnal)"),
    };
    println!(
        "\nscenario: {} ({} devices, {} s, fleet arrivals {} req/s, seed {seed:#x})",
        scenario.name,
        scenario.device_count(),
        scenario.duration_s(),
        scenario.arrivals.rate_at(0),
    );
    for device in &scenario.devices {
        println!(
            "  {:<14} battery {:>4.0} J at {:>3.0}%{}{}{}",
            device.name,
            device.battery_capacity_j,
            100.0 * device.initial_soc,
            match device.cliff {
                Some((at_s, drop)) => format!(", cliff −{:.0}% at {at_s} s", 100.0 * drop),
                None => String::new(),
            },
            if device.charge_w > 0.0 {
                format!(
                    ", charger {:.1} W from {} s",
                    device.charge_w, device.charge_from_s
                )
            } else {
                String::new()
            },
            match device.thermal_cap {
                Some((from_s, until_s, pos)) =>
                    format!(", thermal cap to l-pos {pos} during [{from_s}, {until_s}) s"),
                None => String::new(),
            },
        );
    }

    let serve = |policy: RoutingPolicy| -> FleetReport {
        let fleet_config = FleetConfig {
            router: RouterConfig {
                policy,
                ..RouterConfig::default()
            },
            // two cores per device and a tight deadline: the fleet only has
            // headroom while most devices are alive, so routing that burns a
            // battery down early pays for it in misses later
            deadline_budget_ms: 250.0,
            scheduler: rt3::runtime::SchedulerConfig {
                queue_capacity: 64,
                max_batch: 4,
                workers: 2,
            },
            seed,
            // with a JSONL sink the runs also record traces + audits; the
            // routing behaviour itself is identical either way
            telemetry: if sink.is_some() {
                TelemetryConfig::full()
            } else {
                TelemetryConfig::default()
            },
            ..FleetConfig::default()
        };
        let fleet = Fleet::new(
            &model,
            backbone.masks.clone(),
            &space,
            &outcome,
            &config,
            &scenario,
            fleet_config,
        );
        fleet.run()
    };

    let battery_aware = serve(RoutingPolicy::BatteryAware);
    let predictive = serve(RoutingPolicy::Predictive);
    let round_robin = serve(RoutingPolicy::RoundRobin);
    let sticky = serve(RoutingPolicy::Sticky);

    println!("\nper-device outcome (battery-aware):");
    for line in battery_aware.device_summaries() {
        println!("{line}");
    }
    println!("per-device outcome (predictive):");
    for line in predictive.device_summaries() {
        println!("{line}");
    }
    println!("per-device outcome (round-robin):");
    for line in round_robin.device_summaries() {
        println!("{line}");
    }
    println!("per-device outcome (sticky):");
    for line in sticky.device_summaries() {
        println!("{line}");
    }

    println!("\nrouting        served   miss-rate  p95      switches  energy    imbalance  deaths");
    for report in [&battery_aware, &predictive, &round_robin, &sticky] {
        println!(
            "{:<13} {:>6}   {:>7.2}%  {:>6.1}  {:>8}  {:>6.1} J  {:>8.2}  {:>6}",
            report.routing,
            report.completed(),
            100.0 * report.miss_rate(),
            report.latency_percentile_ms(0.95),
            report.total_switches(),
            report.total_energy_j(),
            report.load_imbalance(),
            report.deaths(),
        );
    }

    println!(
        "\npredictive miss rate {:.2}% vs battery-aware {:.2}% vs round-robin {:.2}% vs sticky {:.2}%",
        100.0 * predictive.miss_rate(),
        100.0 * battery_aware.miss_rate(),
        100.0 * round_robin.miss_rate(),
        100.0 * sticky.miss_rate(),
    );
    println!(
        "real sparse inference (predictive): {} micro-batches across the fleet",
        predictive
            .devices
            .iter()
            .map(|d| d.real_batches)
            .sum::<u64>(),
    );
    if let Some(path) = &sink {
        let mut jsonl = String::new();
        for (device, profile) in predictive.devices.iter().zip(&scenario.devices) {
            let snapshot = device
                .telemetry
                .as_ref()
                .expect("Full telemetry attaches a snapshot to every device");
            jsonl.push_str(&snapshot.to_jsonl(&[("device", &profile.name)]));
        }
        let router = predictive
            .telemetry
            .as_ref()
            .expect("Full telemetry attaches the router snapshot");
        jsonl.push_str(&router.to_jsonl(&[("device", "router")]));
        // the fleet-wide aggregate: counters added, histograms
        // bucket-merged, traces concatenated — one stream a dashboard can
        // consume without re-implementing the merge
        let merged = predictive
            .merged_device_telemetry()
            .expect("every device ran with telemetry");
        jsonl.push_str(&merged.to_jsonl(&[("device", "fleet")]));
        std::fs::write(path, &jsonl).expect("write telemetry JSONL");
        println!(
            "telemetry: {} JSONL lines written to {}",
            jsonl.lines().count(),
            path.display()
        );
    }
    if !default_run {
        println!("(overrides active — skipping the acceptance assertions)");
        return;
    }
    assert!(
        battery_aware.miss_rate() < round_robin.miss_rate(),
        "battery-headroom routing must beat round-robin on deadline-miss rate"
    );
    assert!(
        battery_aware.miss_rate() < sticky.miss_rate(),
        "battery-headroom routing must beat sticky routing on deadline-miss rate"
    );
    assert!(
        predictive.miss_rate() < battery_aware.miss_rate(),
        "predictive (time-to-death) routing must beat raw headroom routing \
         on deadline-miss rate"
    );
    assert!(
        predictive.deaths() <= battery_aware.deaths(),
        "predictive routing must not kill more devices than headroom routing"
    );
}
