//! Cost-model calibration and the predictive-routing comparison — the
//! measurement half of the rt3-cost layer.
//!
//! The pass:
//!
//! 1. run the offline two-level RT3 search and bank one sparse model per
//!    governor level;
//! 2. **calibrate**: time the real sparse-inference worker pool at every
//!    micro-batch size and level, fitting a per-level piecewise-linear
//!    amortisation curve (`rt3::runtime::calibrate`) — the measured
//!    replacement for the fixed batch-amortisation α;
//! 3. replay the bursty acceptance trace on one device under the fixed-α
//!    `Analytic` model and under the measured `Calibrated` model;
//! 4. replay the heterogeneous-cliff fleet trace under the PR 2 baseline
//!    (battery-headroom router + fixed α) and under the predictive router
//!    (time-to-death from the EWMA drain tracker) + calibrated model.
//!
//! Every result is emitted as a single-line JSON object (the committed
//! `BENCH_calibration.json`); the process exits non-zero — failing CI — if
//! the calibrated model misses more deadlines than fixed α on the bursty
//! trace, or if predictive routing loses to headroom routing on miss rate
//! or device deaths on the cliff trace.
//!
//! Environment knobs: `RT3_SEED` (traffic seed), `RT3_CALIB_QUICK=1`
//! (fewer timing repetitions, for CI).
//!
//! Run with `cargo run --release --example cost_calibration`.

use rt3::core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SurrogateEvaluator, TaskProfile,
};
use rt3::hardware::MemoryModel;
use rt3::runtime::{
    calibrate, AmortisationCurve, CalibrationOptions, CostModel, Fleet, FleetConfig, FleetReport,
    FleetScenario, LatencyModel, ModelBank, RouterConfig, RoutingPolicy, Scenario, ServeConfig,
    ServeEngine,
};
use rt3::transformer::{TransformerConfig, TransformerLm};
use std::sync::Arc;

fn json_array(values: impl Iterator<Item = f64>) -> String {
    let inner: Vec<String> = values.map(|v| format!("{v:.4}")).collect();
    format!("[{}]", inner.join(","))
}

fn main() {
    let seed = rt3::env::parsed("RT3_SEED", ServeConfig::default().seed);
    let quick = std::env::var("RT3_CALIB_QUICK").is_ok();

    // ---- offline: the two-level RT3 search -------------------------------
    let mut config = Rt3Config::wikitext_default();
    config.timing_constraint_ms = 115.0;
    config.episodes = 16;
    let model = TransformerLm::new(TransformerConfig::paper_transformer(256), 11);
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    println!("offline search: Level 1 (block pruning) + Level 2 (pattern sets per V/F level)...");
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
    let best = outcome.best.as_ref().expect("feasible solution");

    // ---- measure: the real worker pool at every (level, batch) -----------
    let levels = config.governor.levels().len();
    let bank = ModelBank::new(
        &model,
        backbone.masks.clone(),
        &space,
        &best.actions,
        MemoryModel::odroid_xu3(),
        levels,
    );
    let latency = LatencyModel {
        predictor: config.predictor,
        workload_config: config.workload_config.clone(),
        seq_len: config.seq_len,
    };
    let options = if quick {
        CalibrationOptions::quick()
    } else {
        CalibrationOptions::default()
    };
    println!(
        "calibrating: {} levels x batch 1..={} ({} reps x {} samples per point, 1 worker)...",
        levels, options.max_batch, options.repetitions, options.samples
    );
    let (calibrated, report) = calibrate(latency, &bank, options);
    let alpha = ServeConfig::default().cost.batch_alpha;
    for level in &report.levels {
        let fixed = AmortisationCurve::fixed_alpha(alpha, level.curve.len());
        println!(
            "{{\"bench\": \"cost_calibration/curve\", \"level\": {}, \"sparsity\": {:.4}, \
             \"measured_ms\": {}, \"multipliers\": {}, \"fixed_alpha_multipliers\": {}}}",
            level.level_pos,
            level.sparsity,
            json_array(level.points.iter().map(|p| p.measured_ms)),
            json_array((1..=level.curve.len()).map(|b| level.curve.multiplier(b))),
            json_array((1..=fixed.len()).map(|b| fixed.multiplier(b))),
        );
    }
    println!(
        "{{\"bench\": \"cost_calibration/deviation\", \"alpha\": {alpha}, \
         \"mean_abs_deviation\": {:.4}}}",
        report.mean_abs_deviation_from_alpha(alpha),
    );
    // measured V/F switch costs (cold rebuild of the destination variant
    // with the source resident), one JSON entry per ordered level pair
    let switch_entries: Vec<String> = report
        .switches
        .iter()
        .map(|s| {
            format!(
                "{{\"from\": {}, \"to\": {}, \"switch_cost_ms\": {:.4}}}",
                s.from_level, s.to_level, s.switch_cost_ms
            )
        })
        .collect();
    println!(
        "{{\"bench\": \"cost_calibration/switches\", \"backend\": \"{}\", \"pairs\": [{}]}}",
        rt3::sparse::Backend::detect().label(),
        switch_entries.join(",")
    );
    for s in &report.switches {
        println!(
            "switch {} -> {}: {:.2} ms (measured cold rebuild)",
            s.from_level, s.to_level, s.switch_cost_ms
        );
    }

    // ---- compare: fixed alpha vs measured curve on the bursty trace ------
    let scenario = Scenario::default_bursty();
    let serve_config = ServeConfig {
        battery_capacity_j: 29.0,
        real_inference: false,
        seed,
        ..ServeConfig::default()
    };
    let mut engine = ServeEngine::new(
        &model,
        backbone.masks.clone(),
        &space,
        &outcome,
        config.clone(),
        serve_config,
    );
    let fixed_report = engine.run(&scenario);
    engine.set_cost_model(Arc::new(calibrated.clone()));
    let calibrated_report = engine.run(&scenario);
    println!(
        "{{\"bench\": \"cost_calibration/bursty\", \"analytic_miss_rate\": {:.6}, \
         \"calibrated_miss_rate\": {:.6}, \"analytic_p95_ms\": {:.2}, \
         \"calibrated_p95_ms\": {:.2}, \"analytic_completed\": {}, \
         \"calibrated_completed\": {}}}",
        fixed_report.miss_rate(),
        calibrated_report.miss_rate(),
        fixed_report.p95_ms(),
        calibrated_report.p95_ms(),
        fixed_report.completed,
        calibrated_report.completed,
    );

    // ---- compare: headroom+fixed vs predictive+calibrated on the cliff ---
    let fleet_scenario = FleetScenario::heterogeneous_cliff();
    let fleet_run = |policy: RoutingPolicy, cost: Option<Arc<dyn CostModel>>| -> FleetReport {
        let fleet_config = FleetConfig {
            router: RouterConfig {
                policy,
                ..RouterConfig::default()
            },
            deadline_budget_ms: 250.0,
            scheduler: rt3::runtime::SchedulerConfig {
                queue_capacity: 64,
                max_batch: 4,
                workers: 2,
            },
            real_inference: false,
            seed,
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(
            &model,
            backbone.masks.clone(),
            &space,
            &outcome,
            &config,
            &fleet_scenario,
            fleet_config,
        );
        if let Some(cost) = cost {
            fleet = fleet.with_cost_model(cost);
        }
        fleet.run()
    };
    let headroom_fixed = fleet_run(RoutingPolicy::BatteryAware, None);
    let predictive_calibrated = fleet_run(
        RoutingPolicy::Predictive,
        Some(Arc::new(calibrated.clone())),
    );
    println!(
        "{{\"bench\": \"cost_calibration/fleet_cliff\", \"headroom_fixed_miss_rate\": {:.6}, \
         \"predictive_calibrated_miss_rate\": {:.6}, \"headroom_fixed_deaths\": {}, \
         \"predictive_calibrated_deaths\": {}, \"headroom_fixed_completed\": {}, \
         \"predictive_calibrated_completed\": {}}}",
        headroom_fixed.miss_rate(),
        predictive_calibrated.miss_rate(),
        headroom_fixed.deaths(),
        predictive_calibrated.deaths(),
        headroom_fixed.completed(),
        predictive_calibrated.completed(),
    );

    println!(
        "\nbursty: fixed-alpha miss {:.2}% vs calibrated miss {:.2}%",
        100.0 * fixed_report.miss_rate(),
        100.0 * calibrated_report.miss_rate(),
    );
    println!(
        "cliff fleet: headroom+fixed miss {:.2}% ({} deaths) vs predictive+calibrated \
         miss {:.2}% ({} deaths)",
        100.0 * headroom_fixed.miss_rate(),
        headroom_fixed.deaths(),
        100.0 * predictive_calibrated.miss_rate(),
        predictive_calibrated.deaths(),
    );

    // ---- gates (CI fails on regression) ----------------------------------
    let mut failed = false;
    if calibrated_report.miss_rate() > fixed_report.miss_rate() {
        eprintln!(
            "GATE FAILED: calibrated model misses more than fixed alpha on the bursty trace \
             ({:.4} > {:.4})",
            calibrated_report.miss_rate(),
            fixed_report.miss_rate(),
        );
        failed = true;
    }
    if predictive_calibrated.miss_rate() > headroom_fixed.miss_rate() {
        eprintln!(
            "GATE FAILED: predictive+calibrated misses more than headroom+fixed on the cliff \
             trace ({:.4} > {:.4})",
            predictive_calibrated.miss_rate(),
            headroom_fixed.miss_rate(),
        );
        failed = true;
    }
    if predictive_calibrated.deaths() > headroom_fixed.deaths() {
        eprintln!(
            "GATE FAILED: predictive+calibrated kills more devices than headroom+fixed ({} > {})",
            predictive_calibrated.deaths(),
            headroom_fixed.deaths(),
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nall cost-model gates passed");
}
