//! Ablation study: why both levels of RT3 matter.
//!
//! Compares No-Opt, random block pruning (rBP), rBP + random patterns (rPP),
//! rBP + importance-guided patterns (PP), guided block pruning alone (BP) and
//! the full RT3 pipeline on the three tasks of the paper's Table IV.
//!
//! Run with `cargo run --example ablation_study`.

use rt3::core::{run_ablation, Rt3Config, TaskProfile};
use rt3::transformer::{TransformerConfig, TransformerLm};

fn main() {
    let model = TransformerLm::new(TransformerConfig::paper_transformer(512), 17);
    let tasks = [
        ("WikiText-2", 104.0, TaskProfile::wikitext2()),
        ("RTE", 200.0, TaskProfile::rte()),
        ("STS-B", 330.0, TaskProfile::stsb()),
    ];
    for (name, constraint, profile) in tasks {
        let mut config = Rt3Config::wikitext_default();
        config.timing_constraint_ms = constraint;
        config.episodes = 20;
        println!("=== {} (T = {} ms) ===", name, constraint);
        println!(
            "{:<10} {:>10} {:>10} {:>8} {:>10} {:>8}",
            "method", "sparsity", "runs(e6)", "impr", "score", "loss"
        );
        for row in run_ablation(&model, &config, profile) {
            println!(
                "{:<10} {:>9.1}% {:>10.2} {:>7.2}x {:>9.2}% {:>7.2}%",
                row.variant.label(),
                100.0 * row.average_sparsity,
                row.number_of_runs / 1e6,
                row.improvement,
                100.0 * row.average_accuracy,
                100.0 * row.accuracy_loss
            );
        }
        println!();
    }
    println!("Take-aways (mirroring the paper):");
    println!(" * guided BP loses far less accuracy than random rBP at equal sparsity;");
    println!(" * importance-guided patterns (PP) beat random patterns (rPP);");
    println!(" * the full RT3 pipeline keeps accuracy close to BP-only while pruning");
    println!("   much further, which is what multiplies the number of runs per charge.");
}
