//! Table III-style comparison of Level-2 optimizers: REINFORCE (the
//! paper's choice), evolutionary, decomposed bandit and the random
//! baseline, all searching the *same* candidate pattern sets at the *same*
//! distinct-evaluation budget through the memoizing `SearchDriver`, plus an
//! exhaustive sweep of the full space as ground truth.
//!
//! Prints a human-readable table followed by one `{"bench":
//! "search_comparison/..."}` JSON line per optimizer (CI greps those into
//! `BENCH_search.json`), and **fails** (non-zero exit) if any tuned
//! optimizer ends below the random baseline's best reward at equal budget —
//! the search-quality gate.
//!
//! Environment:
//! * `RT3_BUDGET` — distinct evaluations per optimizer (default 32);
//! * `RT3_SEED` — shared optimizer seed (default the `Rt3Config` default);
//! * `RT3_OPTIMIZER` — run a single optimizer (`reinforce|evolutionary|
//!   bandit|random|exhaustive`) instead of the full comparison (the gate is
//!   skipped, since there is no baseline row to compare against).
//!
//! Run with `cargo run --release --example search_comparison`.

use rt3::core::{
    build_search_space, compare_optimizers, run_level1, ComparisonConfig, OptimizerKind,
    OptimizerReport, Rt3Config, SurrogateEvaluator, TaskProfile,
};
use rt3::transformer::{TransformerConfig, TransformerLm};

fn json_line(report: &OptimizerReport, budget_matched: bool) {
    let best = report.best.as_ref().expect("every optimizer finds a point");
    println!(
        "{{\"bench\": \"search_comparison/{}\", \"budget_matched\": {}, \
         \"best_reward\": {:.6}, \"weighted_accuracy\": {:.6}, \"number_of_runs\": {:.1}, \
         \"meets_constraint\": {}, \"actions\": {:?}, \"evals_to_best\": {}, \
         \"total_evaluations\": {}, \"proposals\": {}, \"cache_hit_rate\": {:.4}}}",
        report.name,
        budget_matched,
        best.reward,
        best.weighted_accuracy,
        best.number_of_runs,
        best.meets_constraint,
        best.actions,
        report.evals_to_best,
        report.unique_evaluations + report.readout_evaluations,
        report.proposals,
        report.cache_hit_rate,
    );
}

fn main() {
    let default_config = Rt3Config::wikitext_default();
    let budget = rt3::env::parsed("RT3_BUDGET", 32);
    if budget == 0 {
        eprintln!("RT3_BUDGET must be at least 1 (got 0)");
        std::process::exit(2);
    }
    let seed = rt3::env::parsed("RT3_SEED", default_config.seed);
    let only = std::env::var("RT3_OPTIMIZER")
        .ok()
        .map(|raw| OptimizerKind::parse(&raw).expect("RT3_OPTIMIZER"));

    // a tiny model but a wider candidate grid than the test config, so the
    // 3-level assignment space (8^3 = 512) is large enough that search
    // strategy matters at the default budget
    let model = TransformerLm::new(TransformerConfig::tiny(32), 13);
    let mut config = Rt3Config::tiny_test();
    config.seed = seed;
    config.candidate_sparsities = 8;
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);

    let mut comparison = ComparisonConfig::new(budget, seed);
    if let Some(kind) = only {
        comparison.optimizers = vec![kind];
    }
    let report = compare_optimizers(
        &model,
        &backbone,
        &space,
        &config,
        &mut evaluator,
        &comparison,
    );

    println!(
        "Level-2 optimizer comparison — task {}, {} levels x {} candidates, \
         budget {} distinct evaluations, seed {:#x}",
        report.task, report.num_levels, report.num_candidates, report.budget, report.seed
    );
    println!(
        "{:<14} {:>11} {:>10} {:>9} {:>14} {:>10}",
        "optimizer", "best reward", "acc (A_w)", "runs", "evals-to-best", "cache-hit"
    );
    let print_row = |row: &OptimizerReport| {
        let best = row.best.as_ref().expect("every optimizer finds a point");
        println!(
            "{:<14} {:>11.4} {:>9.2}% {:>9.0} {:>14} {:>9.0}%",
            row.name,
            best.reward,
            100.0 * best.weighted_accuracy,
            best.number_of_runs,
            row.evals_to_best,
            100.0 * row.cache_hit_rate,
        );
    };
    for row in &report.rows {
        print_row(row);
    }
    if let Some(optimum) = &report.optimum {
        print_row(optimum);
        println!(
            "(exhaustive sweeps all {} assignments as ground truth; it is not budget-matched)",
            report.num_candidates.pow(report.num_levels as u32)
        );
    }
    println!();
    for row in &report.rows {
        json_line(row, true);
    }
    if let Some(optimum) = &report.optimum {
        json_line(optimum, false);
    }

    // the search-quality gate: at equal budget, no tuned optimizer may end
    // below the random baseline
    let tuned_rows: Vec<_> = OptimizerKind::tuned()
        .iter()
        .filter_map(|kind| report.row(kind.name()))
        .collect();
    let random = report.row(OptimizerKind::Random.name());
    let (Some(random), false) = (random, tuned_rows.is_empty()) else {
        println!("(single-optimizer run: random-baseline gate skipped)");
        return;
    };
    let mut failed = false;
    for row in tuned_rows {
        if row.best_reward() < random.best_reward() {
            eprintln!(
                "GATE FAILED: {} best reward {:.6} < random baseline {:.6} at budget {}",
                row.name,
                row.best_reward(),
                random.best_reward(),
                report.budget
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("gate passed: every tuned optimizer >= random baseline at equal budget");
}
