//! Closed-loop socket load generator for the rt3-serve front-end: real
//! TCP connections, real wall-clock latency, one JSON line per run (the
//! `BENCH_serve.json` rows) — and **fails** (non-zero exit) if any request
//! is lost (sent but never resolved by a response, terminal frame or
//! socket error), if any connection fails, or if the latency histogram
//! comes back empty.
//!
//! By default the generator spawns an in-process server on an ephemeral
//! port and runs two loads against it:
//!
//! * `steady` — 64 connections, a latency-shaped row;
//! * `saturate` — `RT3_CONNECTIONS` connections (default 1000), the
//!   concurrency/no-silent-loss row.
//!
//! In in-process mode it also reconciles the server-side telemetry
//! counters against the client-side tallies, exactly like the loopback
//! integration tests.
//!
//! Environment knobs (shared `rt3::env::parsed` helper):
//!
//! * `RT3_SERVE_ADDR` — target an already-running server (e.g. a
//!   `serve_socket` process) instead of spawning one in-process; the
//!   server-side reconciliation is skipped;
//! * `RT3_CONNECTIONS` — saturate-phase concurrency (default 1000);
//! * `RT3_DURATION_S` — seconds of load per phase (default 5);
//! * `RT3_DEADLINE_MS` — per-request deadline budget (default 400);
//! * `RT3_BATTERY_J` — in-process server battery (default 10000, sized to
//!   survive the run);
//! * `BENCH_QUICK=1` — CI smoke mode: 32 connections, 1.5 s per phase,
//!   steady phase only.
//!
//! Run with `cargo run --release --example loadgen`.

use rt3::server::{loadgen, LoadgenConfig, Server, ServerConfig, ServerSpec};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn main() {
    let quick: u32 = rt3::env::parsed("BENCH_QUICK", 0);
    let quick = quick != 0;
    let connections: usize = rt3::env::parsed("RT3_CONNECTIONS", if quick { 32 } else { 1_000 });
    let duration_s: f64 = rt3::env::parsed("RT3_DURATION_S", if quick { 1.5 } else { 5.0 });
    let deadline_ms: f64 = rt3::env::parsed("RT3_DEADLINE_MS", 400.0);
    let battery_j: f64 = rt3::env::parsed("RT3_BATTERY_J", 10_000.0);

    // in-process server on an ephemeral port unless a target is given
    let server = match std::env::var("RT3_SERVE_ADDR") {
        Ok(_) => None,
        Err(_) => Some(
            Server::spawn(
                "127.0.0.1:0",
                ServerSpec::paper_default(battery_j),
                ServerConfig::default(),
            )
            .expect("server spawn"),
        ),
    };
    let addr: SocketAddr = match &server {
        Some(server) => server.local_addr(),
        None => {
            let raw = std::env::var("RT3_SERVE_ADDR").expect("checked above");
            raw.parse()
                .unwrap_or_else(|_| panic!("RT3_SERVE_ADDR={raw:?} is not a socket address"))
        }
    };
    println!(
        "loadgen -> {} ({} connections saturate phase, {:.1} s/phase, {:.0} ms budget)",
        addr, connections, duration_s, deadline_ms
    );

    // steady phase (latency-shaped) always runs; the saturate phase only
    // when it would differ from steady
    let mut phases = vec![("steady", connections.min(64))];
    if !quick && connections > 64 {
        phases.push(("saturate", connections));
    }

    let mut failures = Vec::new();
    let mut total_served = 0u64;
    for (label, conns) in phases {
        let config = LoadgenConfig {
            connections: conns,
            duration: Duration::from_secs_f64(duration_s),
            deadline_budget_ms: deadline_ms,
            ..LoadgenConfig::default()
        };
        let report = loadgen::run(addr, &config);
        println!(
            "  {label}: jobs {} (retries {} abandoned {}) sent {} served {} \
             (late {}) rejected {}+{} timeouts {} lost {} \
             p50 {:.1} ms p99 {:.1} ms",
            report.jobs,
            report.retries,
            report.jobs_abandoned,
            report.sent,
            report.served(),
            report.completed_late,
            report.rejected_queue_full,
            report.rejected_certain_miss,
            report.timeouts,
            report.lost(),
            report.wall_latency_ms.quantile(0.50),
            report.wall_latency_ms.quantile(0.99),
        );
        println!("{}", report.to_json(label, conns));
        total_served += report.served();
        if report.lost() > 0 {
            failures.push(format!("{label}: {} requests lost", report.lost()));
        }
        if report.connect_failures > 0 {
            failures.push(format!(
                "{label}: {} connections never established",
                report.connect_failures
            ));
        }
        if report.io_errors > 0 {
            failures.push(format!(
                "{label}: {} connections died mid-conversation",
                report.io_errors
            ));
        }
        if report.wall_latency_ms.count() == 0 {
            failures.push(format!("{label}: empty wall-latency histogram"));
        }
    }

    // in-process mode: the server's own counters must reconcile with what
    // the clients observed across every phase
    if let Some(server) = &server {
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.pending_requests() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let snapshot = server.metrics_snapshot();
        let counter = |name: &str| snapshot.metrics.counter(name).unwrap_or(0);
        if server.pending_requests() > 0 {
            failures.push(format!(
                "{} admitted requests never resolved",
                server.pending_requests()
            ));
        }
        if counter("requests_completed") != total_served {
            failures.push(format!(
                "server served {} but clients saw {}",
                counter("requests_completed"),
                total_served
            ));
        }
        println!(
            "  server: admitted {} completed {} (missed {}) rejected {}+{} \
             switches {}",
            counter("requests_admitted"),
            counter("requests_completed"),
            counter("deadline_missed"),
            counter("requests_rejected_queue_full"),
            counter("requests_rejected_certain_miss"),
            counter("switches"),
        );
    }

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    println!("loadgen OK: no lost responses, histogram populated");
}
