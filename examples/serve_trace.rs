//! Online serving scenario: play a bursty-traffic trace against the RT3
//! runtime — offline search first (Level 1 + Level 2), then the battery-aware
//! serving engine switches pattern sets as the battery drains, while a
//! fixed-level baseline burns through the same battery without
//! reconfiguration.
//!
//! Environment knobs (shared `rt3::env::parsed` helper, as in
//! `search_comparison`):
//!
//! * `RT3_SEED` — traffic seed (default the `ServeConfig` default);
//! * `RT3_SCENARIO` — `bursty` (default), `constant`, `cliff`, `charge` or
//!   `thermal`, each the canned 60 s variant;
//! * `RT3_BATTERY_J` — battery capacity in joules (default 29);
//! * `RT3_TELEMETRY` — `jsonl:<path>`: record the runs at the `Full`
//!   telemetry level and dump the adaptive run's metrics, request trace and
//!   controller decision audit to `<path>` as JSONL.
//!
//! The pass/fail assertions only run in the default configuration — with
//! overrides the example is exploratory.
//!
//! Run with `cargo run --example serve_trace`.

use rt3::core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SurrogateEvaluator, TaskProfile,
};
use rt3::runtime::{
    RuntimePolicy, Scenario, ServeConfig, ServeEngine, ServeReport, TelemetryConfig,
};
use rt3::transformer::{TransformerConfig, TransformerLm};

/// Parses `RT3_TELEMETRY=jsonl:<path>` into the JSONL sink path, `None`
/// when the variable is unset.
fn telemetry_sink() -> Option<std::path::PathBuf> {
    match std::env::var("RT3_TELEMETRY") {
        Ok(raw) => match raw.strip_prefix("jsonl:") {
            Some(path) if !path.is_empty() => Some(path.into()),
            _ => panic!("RT3_TELEMETRY={raw:?} (expected jsonl:<path>)"),
        },
        Err(_) => None,
    }
}

/// Compact per-window level timeline, e.g. `l6 ×34 → l4 ×21 → l3 ×35`.
fn timeline(report: &ServeReport, config: &Rt3Config) -> String {
    let mut spans: Vec<(String, u32)> = Vec::new();
    for w in &report.windows {
        let label = match w.level_pos {
            Some(p) => format!("l{}", config.governor.levels()[p].index),
            None => "DEAD".to_string(),
        };
        match spans.last_mut() {
            Some((last, n)) if *last == label => *n += 1,
            _ => spans.push((label, 1)),
        }
    }
    spans
        .into_iter()
        .map(|(l, n)| format!("{l} ×{n}"))
        .collect::<Vec<_>>()
        .join(" → ")
}

/// The canned scenario selected by `RT3_SCENARIO`.
fn scenario_of(name: &str) -> Scenario {
    match name {
        "bursty" => Scenario::default_bursty(),
        "constant" => Scenario::ConstantDrain {
            duration_s: 60,
            rps: 4.0,
            background_w: 0.2,
        },
        "cliff" => Scenario::CliffDischarge {
            duration_s: 60,
            rps: 4.0,
            background_w: 0.2,
            cliff_at_s: 25,
            cliff_drop: 0.6,
        },
        "charge" => Scenario::ChargeWhileServing {
            duration_s: 60,
            rps: 4.0,
            background_w: 0.2,
            charge_from_s: 30,
            charge_w: 2.0,
        },
        "thermal" => Scenario::ThermalCap {
            duration_s: 60,
            rps: 4.0,
            background_w: 0.2,
            cap_from_s: 10,
            cap_until_s: 45,
            cap_level_pos: 0,
        },
        other => panic!("RT3_SCENARIO={other:?} (expected bursty|constant|cliff|charge|thermal)"),
    }
}

fn main() {
    let seed = rt3::env::parsed("RT3_SEED", ServeConfig::default().seed);
    let scenario_name: String = rt3::env::parsed("RT3_SCENARIO", "bursty".to_string());
    let battery_j = rt3::env::parsed("RT3_BATTERY_J", 29.0);
    let sink = telemetry_sink();
    let default_run =
        seed == ServeConfig::default().seed && scenario_name == "bursty" && battery_j == 29.0;

    // ---- offline: the two-level RT3 search ------------------------------
    let mut config = Rt3Config::wikitext_default();
    config.timing_constraint_ms = 115.0;
    config.episodes = 20;
    let model = TransformerLm::new(TransformerConfig::paper_transformer(512), 7);
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    println!("offline search: Level 1 (block pruning) + Level 2 (pattern sets per V/F level)...");
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
    let best = outcome
        .best
        .clone()
        .expect("search found a feasible solution");
    println!(
        "  backbone sparsity {:.0}%, best solution: sparsities {:?} latencies {:?} ms",
        100.0 * backbone.sparsity,
        best.sparsities
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        best.latencies_ms
            .iter()
            .map(|l| l.round())
            .collect::<Vec<_>>(),
    );

    // ---- online: the selected trace (>= 60 s bursty by default) ----------
    let scenario = scenario_of(&scenario_name);
    println!(
        "\nscenario: {} ({} s, timing constraint {} ms, deadline budget 400 ms, seed {seed:#x})",
        scenario.name(),
        scenario.duration_s(),
        config.timing_constraint_ms
    );

    let serve = |policy: RuntimePolicy| -> ServeReport {
        let serve_config = ServeConfig {
            battery_capacity_j: battery_j,
            deadline_budget_ms: 400.0,
            policy,
            seed,
            // with a JSONL sink the runs also record the trace + audit; the
            // serving behaviour itself is identical either way
            telemetry: if sink.is_some() {
                TelemetryConfig::full()
            } else {
                TelemetryConfig::default()
            },
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(
            &model,
            backbone.masks.clone(),
            &space,
            &outcome,
            config.clone(),
            serve_config,
        );
        engine.run(&scenario)
    };

    let adaptive = serve(RuntimePolicy::Adaptive);
    let top = config.governor.levels().len() - 1;
    let fixed_top = serve(RuntimePolicy::FixedLevel(top));
    let fixed_low = serve(RuntimePolicy::FixedLevel(0));

    println!(
        "\nper-window level choices (adaptive): {}",
        timeline(&adaptive, &config)
    );
    println!(
        "per-window level choices (fixed-l6): {}",
        timeline(&fixed_top, &config)
    );

    println!(
        "\npolicy      served  miss-rate  p50      p95      vs T     switches  energy  outcome"
    );
    for report in [&adaptive, &fixed_top, &fixed_low] {
        println!(
            "{:<11} {:>5}   {:>6.2}%   {:>6.1}  {:>6.1}  {:>6}  {:>8}  {:>5.1} J  {}",
            report.policy,
            report.completed,
            100.0 * report.miss_rate(),
            report.p50_ms(),
            report.p95_ms(),
            if report.p95_ms() <= config.timing_constraint_ms {
                "OK"
            } else {
                "MISS"
            },
            report.switches,
            report.total_energy_j(),
            match report.died_at_s {
                Some(t) => format!("battery died at {t} s"),
                None => format!(
                    "survived at {:.0}% charge",
                    100.0 * report.final_state_of_charge
                ),
            }
        );
    }

    println!(
        "\nadaptive deadline-miss rate: {:.2}% (target < 5%)",
        100.0 * adaptive.miss_rate()
    );
    println!(
        "fixed-l{} baseline miss rate: {:.2}% ({:+.2} points worse than adaptive)",
        config.governor.levels()[top].index,
        100.0 * fixed_top.miss_rate(),
        100.0 * (fixed_top.miss_rate() - adaptive.miss_rate())
    );
    println!(
        "real sparse inference: {} micro-batches executed on the worker pool (checksum {:.3})",
        adaptive.real_batches, adaptive.inference_checksum
    );
    if let Some(path) = &sink {
        let snapshot = adaptive
            .telemetry
            .as_ref()
            .expect("Full telemetry attaches a snapshot to the report");
        let jsonl = snapshot.to_jsonl(&[("run", "adaptive"), ("scenario", scenario.name())]);
        std::fs::write(path, &jsonl).expect("write telemetry JSONL");
        println!(
            "telemetry: {} JSONL lines written to {}",
            jsonl.lines().count(),
            path.display()
        );
    }
    if !default_run {
        println!("(overrides active — skipping the acceptance assertions)");
        return;
    }
    assert!(
        adaptive.miss_rate() < 0.05,
        "adaptive reconfiguration must keep the deadline-miss rate under 5%"
    );
    assert!(
        fixed_top.miss_rate() > adaptive.miss_rate(),
        "the fixed-level baseline must be worse than adaptive reconfiguration"
    );
}
