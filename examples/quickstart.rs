//! Quickstart: prune a Transformer with RT3's two levels and deploy it with
//! run-time reconfiguration — the whole pipeline on a laptop-sized model.
//!
//! Run with `cargo run --example quickstart`.

use rt3::core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SurrogateEvaluator, TaskProfile,
};
use rt3::hardware::{DvfsMode, MemoryModel};
use rt3::transformer::{Model, TransformerConfig, TransformerLm};

fn main() {
    // 1. A Transformer language model with the paper's 2-encoder/1-decoder
    //    layout (reduced width so it runs anywhere).
    let model = TransformerLm::new(TransformerConfig::paper_transformer(512), 42);
    println!(
        "model: {} parameters, {} prunable weight matrices",
        model.num_parameters(),
        model.prunable_parameter_names().len()
    );

    // 2. Configure RT3: timing constraint, energy budget, V/F levels.
    let mut config = Rt3Config::wikitext_default();
    config.episodes = 25;
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());

    // 3. Level 1 — block-structured pruning produces the fixed backbone.
    let backbone = run_level1(&model, &config, &mut evaluator);
    println!(
        "level 1 backbone: sparsity {:.1}%, accuracy {:.2}% (unpruned {:.2}%)",
        100.0 * backbone.sparsity,
        100.0 * backbone.accuracy,
        100.0 * backbone.unpruned_accuracy
    );

    // 4. Level 2 — generate the pattern search space and run the RL search.
    let space = build_search_space(&model, &backbone, &config);
    let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
    let best = outcome.best.expect("a feasible solution exists");
    println!(
        "level 2 search: {} episodes explored, best reward {:.3}",
        outcome.history.len(),
        best.reward
    );
    for (i, ((sparsity, latency), accuracy)) in best
        .sparsities
        .iter()
        .zip(&best.latencies_ms)
        .zip(&best.accuracies)
        .enumerate()
    {
        println!(
            "  M{}: sparsity {:.1}%, latency {:.1} ms, accuracy {:.2}%",
            i + 1,
            100.0 * sparsity,
            latency,
            100.0 * accuracy
        );
    }

    // 5. Run time: the governor maps battery level to a DVFS mode; switching
    //    the pattern set costs milliseconds.
    let memory = MemoryModel::odroid_xu3();
    let switch = memory.pattern_switch_cost(&space.candidates()[0].set, 5_000);
    for soc in [0.9, 0.4, 0.1] {
        let mode = config.governor.mode_for_battery(soc);
        let level = config.governor.level_for_mode(mode);
        println!(
            "battery {:>3.0}% -> {} at l{} ({} MHz); pattern-set switch costs {:.2} ms",
            soc * 100.0,
            mode,
            level.index,
            level.frequency_mhz,
            switch.time_ms
        );
    }
    let _ = DvfsMode::Fast;
}
