//! Offline stand-in for the subset of `proptest` the RT3 workspace uses:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], `Just`, `prop_oneof!`, `proptest!`,
//! `prop_assert!`/`prop_assert_eq!` and [`test_runner::ProptestConfig`].
//!
//! Unlike the real crate there is **no shrinking**: a failing case reports
//! its case index and seed so it can be replayed, which is enough for the
//! deterministic generators used here (see `vendor/README.md`).

pub use rand;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an associated type from a seeded RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            (**self).gen_value(rng)
        }
    }

    /// Boxes a strategy for use in heterogeneous collections (`prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn gen_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn gen_value(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    /// Weighted choice among strategies of one value type (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Builds the union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut StdRng) -> T {
            let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            let mut pick = rng.gen_range(0..total as u64) as u32;
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.gen_value(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u8, u16, u32, u64, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Element counts accepted by [`vec`]: a fixed size or a range.
    pub trait IntoSize {
        /// Draws one concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSize for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSize for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing vectors of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSize> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: IntoSize>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Test-runner configuration.

    /// Mirrors `proptest::test_runner::Config` (the fields used here).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// with a formatted message instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({}:{}): left = {:?}, right = {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({}:{}): left = {:?}, right = {:?}: {}",
                stringify!($left), stringify!($right), file!(), line!(), l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// Weighted choice among strategies, mirroring `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strategy)),)+
        ])
    };
}

/// Declares property tests, mirroring `proptest!`.
///
/// Each property runs `cases` times with a deterministic per-case seed; a
/// failing case panics with its case index and seed for replay.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::rand::SeedableRng as _;
                use $crate::strategy::Strategy as _;
                let config = $cfg;
                // stable per-property seed: hash of the property name
                let mut property_seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).as_bytes() {
                    property_seed ^= *b as u64;
                    property_seed = property_seed.wrapping_mul(0x1_0000_01b3);
                }
                $(let $arg = $strat;)+
                for case in 0..config.cases {
                    let seed = property_seed ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    let mut rng = $crate::rand::rngs::StdRng::seed_from_u64(seed);
                    $(let $arg = $arg.gen_value(&mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), case, config.cases, seed, message
                        );
                    }
                }
            }
        )*
    };
}
