//! Offline stand-in for `serde`: exposes the `Serialize`/`Deserialize` trait
//! names and derive macros so the RT3 crates keep their derives, without
//! pulling the real crate from a registry (see `vendor/README.md`).
//!
//! The derives expand to nothing, so derived types intentionally do **not**
//! implement these traits; nothing in the workspace relies on them at run
//! time.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
