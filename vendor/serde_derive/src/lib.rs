//! No-op derive macros standing in for `serde_derive` in this offline
//! workspace. The RT3 crates derive `Serialize`/`Deserialize` so their public
//! types stay serde-ready, but nothing in the workspace serialises at run
//! time, so an empty expansion is sufficient (see `vendor/README.md`).

use proc_macro::TokenStream;

/// Accepts the input and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
