//! Offline stand-in for the subset of `criterion` the RT3 benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! No statistical analysis is performed: each benchmark is warmed up once,
//! then timed over a fixed batch of iterations and reported as a mean
//! nanoseconds-per-iteration line plus a machine-readable JSON line
//! (`{"bench": ..., "mean_ns": ...}`), which is what the perf-trajectory
//! tooling of this repository consumes (see `vendor/README.md`).

use std::hint;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // one warm-up call keeps cold-start effects out of the measurement
        hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iterations as f64;
    }
}

fn run_one(id: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations: sample_size.max(1),
        mean_ns: 0.0,
    };
    f(&mut bencher);
    let mean = bencher.mean_ns;
    let human = if mean >= 1e9 {
        format!("{:.3} s", mean / 1e9)
    } else if mean >= 1e6 {
        format!("{:.3} ms", mean / 1e6)
    } else if mean >= 1e3 {
        format!("{:.3} us", mean / 1e3)
    } else {
        format!("{:.1} ns", mean)
    };
    println!(
        "bench: {id:<60} {human}/iter over {} iters",
        bencher.iterations
    );
    println!(
        "{{\"bench\": \"{id}\", \"mean_ns\": {mean:.1}, \"iters\": {}}}",
        bencher.iterations
    );
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark within the group (ids may be owned
    /// strings, mirroring the real crate's `IntoBenchmarkId` flexibility).
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
