//! Offline stand-in for the subset of `rand` 0.8 the RT3 workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng`],
//! [`rngs::StdRng`], [`rngs::mock::StepRng`] and [`seq::SliceRandom`].
//!
//! The generator behind [`rngs::StdRng`] is splitmix64, not ChaCha12, so
//! streams differ from the real crate — every consumer in this workspace
//! seeds explicitly and asserts distributional properties only, never exact
//! draws (see `vendor/README.md`).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly over their full domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts, generic over the element type so
/// literal ranges infer their type from the call site exactly as in the real
/// crate (`rng.gen_range(-1.0..1.0)` can be `f32` or `f64`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value over the type's full domain (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                // one warm-up mix so nearby seeds diverge immediately
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// Arithmetic-progression generator mirroring
        /// `rand::rngs::mock::StepRng`.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Starts at `initial`, advancing by `increment` per draw.
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling and choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&i));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seeding_is_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements should not shuffle to identity");
    }
}
