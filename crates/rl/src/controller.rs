//! RNN-based reinforcement-learning controller (component ② of RT3).
//!
//! The controller predicts one action per step — in RT3, one candidate
//! pattern set per V/F level — from a softmax head on top of a small
//! recurrent cell, and is trained with REINFORCE (policy gradient with a
//! moving-average baseline), following the NAS-style controller of Zoph &
//! Le that the paper cites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt3_tensor::{softmax_rows_matrix, Adam, Graph, Matrix, Optimizer, Var};
use serde::{Deserialize, Serialize};

/// Configuration of the RNN controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Number of decision steps per episode (one per V/F level).
    pub steps: usize,
    /// Number of discrete actions available at every step (candidate pattern
    /// sets).
    pub actions_per_step: usize,
    /// Hidden size of the recurrent cell.
    pub hidden_dim: usize,
    /// Learning rate of the policy-gradient update.
    pub learning_rate: f32,
    /// Exponential moving-average factor of the reward baseline.
    pub baseline_decay: f64,
    /// RNG seed for parameter initialisation and action sampling.
    pub seed: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            steps: 3,
            actions_per_step: 5,
            hidden_dim: 16,
            learning_rate: 5e-2,
            baseline_decay: 0.8,
            seed: 0x71,
        }
    }
}

impl ControllerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.steps == 0 || self.actions_per_step == 0 || self.hidden_dim == 0 {
            return Err("steps, actions_per_step and hidden_dim must be positive".into());
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err("learning rate must be positive".into());
        }
        if !(0.0..1.0).contains(&self.baseline_decay) {
            return Err("baseline_decay must be in [0, 1)".into());
        }
        Ok(())
    }
}

/// One sampled episode: the chosen action per step and the policy
/// probabilities they were drawn from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Episode {
    /// Chosen action index per step.
    pub actions: Vec<usize>,
    /// Probability the policy assigned to each chosen action.
    pub probabilities: Vec<f64>,
}

impl Episode {
    /// Joint log-probability of the sampled actions.
    pub fn log_probability(&self) -> f64 {
        self.probabilities.iter().map(|p| p.max(1e-12).ln()).sum()
    }
}

/// The RNN policy controller.
///
/// # Examples
///
/// ```
/// use rt3_rl::{Controller, ControllerConfig};
///
/// let mut controller = Controller::new(ControllerConfig::default());
/// let episode = controller.sample_episode();
/// assert_eq!(episode.actions.len(), 3);
/// controller.update(&episode, 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct Controller {
    config: ControllerConfig,
    /// Input embedding of the previous action (one row per action + one
    /// initial "start" row).
    action_embedding: Matrix,
    /// Recurrent input weight.
    w_in: Matrix,
    /// Recurrent hidden weight.
    w_hidden: Matrix,
    /// Recurrent bias.
    b_hidden: Matrix,
    /// Softmax output head.
    w_out: Matrix,
    b_out: Matrix,
    baseline: f64,
    baseline_initialised: bool,
    optimizer: Adam,
    rng: StdRng,
}

impl Controller {
    /// Creates a controller with randomly initialised policy parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ControllerConfig) -> Self {
        config.validate().expect("invalid controller configuration");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let h = config.hidden_dim;
        let a = config.actions_per_step;
        Self {
            action_embedding: Matrix::xavier(a + 1, h, &mut rng),
            w_in: Matrix::xavier(h, h, &mut rng),
            w_hidden: Matrix::xavier(h, h, &mut rng),
            b_hidden: Matrix::zeros(1, h),
            w_out: Matrix::xavier(h, a, &mut rng),
            b_out: Matrix::zeros(1, a),
            baseline: 0.0,
            baseline_initialised: false,
            optimizer: Adam::new(config.learning_rate),
            rng,
            config,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Current reward baseline (exponential moving average of rewards).
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Action probabilities at every step given a fixed action history
    /// (teacher-forced); used both for sampling and for the update.
    fn rollout_logits(&self, g: &mut Graph, actions: &[Option<usize>]) -> (Vec<Var>, Vec<Var>) {
        let embed = g.leaf(self.action_embedding.clone());
        let w_in = g.leaf(self.w_in.clone());
        let w_hidden = g.leaf(self.w_hidden.clone());
        let b_hidden = g.leaf(self.b_hidden.clone());
        let w_out = g.leaf(self.w_out.clone());
        let b_out = g.leaf(self.b_out.clone());
        let params = vec![embed, w_in, w_hidden, b_hidden, w_out, b_out];
        let mut hidden = g.constant(Matrix::zeros(1, self.config.hidden_dim));
        let mut logits_per_step = Vec::with_capacity(self.config.steps);
        let mut previous_action: Option<usize> = None;
        for step in 0..self.config.steps {
            let input_row = match previous_action {
                Some(a) => a + 1,
                None => 0,
            };
            let input = g.gather_rows(embed, &[input_row]);
            let from_input = g.matmul(input, w_in);
            let from_hidden = g.matmul(hidden, w_hidden);
            let pre = g.add(from_input, from_hidden);
            let pre = g.add_row_broadcast(pre, b_hidden);
            hidden = g.tanh(pre);
            let logits = g.matmul(hidden, w_out);
            let logits = g.add_row_broadcast(logits, b_out);
            logits_per_step.push(logits);
            previous_action = actions.get(step).copied().flatten();
        }
        (logits_per_step, params)
    }

    /// Samples one episode from the current policy.
    pub fn sample_episode(&mut self) -> Episode {
        let mut actions: Vec<Option<usize>> = vec![None; self.config.steps];
        let mut chosen = Vec::with_capacity(self.config.steps);
        let mut probabilities = Vec::with_capacity(self.config.steps);
        // sample step by step so each step conditions on the previous choice
        for step in 0..self.config.steps {
            let mut g = Graph::new();
            let (logits, _) = self.rollout_logits(&mut g, &actions);
            let probs = softmax_rows_matrix(g.value(logits[step]));
            let r: f64 = self.rng.gen();
            let mut acc = 0.0;
            let mut action = self.config.actions_per_step - 1;
            for a in 0..self.config.actions_per_step {
                acc += probs.get(0, a) as f64;
                if r <= acc {
                    action = a;
                    break;
                }
            }
            probabilities.push(probs.get(0, action) as f64);
            chosen.push(action);
            actions[step] = Some(action);
        }
        Episode {
            actions: chosen,
            probabilities,
        }
    }

    /// Greedy (argmax) episode from the current policy, used to read out the
    /// best architecture after the search finishes.
    pub fn best_episode(&self) -> Episode {
        let mut actions: Vec<Option<usize>> = vec![None; self.config.steps];
        let mut chosen = Vec::with_capacity(self.config.steps);
        let mut probabilities = Vec::with_capacity(self.config.steps);
        for step in 0..self.config.steps {
            let mut g = Graph::new();
            let (logits, _) = self.rollout_logits(&mut g, &actions);
            let probs = softmax_rows_matrix(g.value(logits[step]));
            let action = probs.row_argmax(0);
            probabilities.push(probs.get(0, action) as f64);
            chosen.push(action);
            actions[step] = Some(action);
        }
        Episode {
            actions: chosen,
            probabilities,
        }
    }

    /// REINFORCE update: increases the probability of the episode's actions
    /// in proportion to the advantage `reward - baseline`, then updates the
    /// baseline.
    pub fn update(&mut self, episode: &Episode, reward: f64) {
        assert_eq!(
            episode.actions.len(),
            self.config.steps,
            "episode length mismatch"
        );
        let advantage = if self.baseline_initialised {
            reward - self.baseline
        } else {
            0.0
        };
        // baseline update happens regardless of whether we step the policy
        if self.baseline_initialised {
            self.baseline = self.config.baseline_decay * self.baseline
                + (1.0 - self.config.baseline_decay) * reward;
        } else {
            self.baseline = reward;
            self.baseline_initialised = true;
        }
        if advantage == 0.0 {
            return;
        }
        let actions: Vec<Option<usize>> = episode.actions.iter().map(|&a| Some(a)).collect();
        let mut g = Graph::new();
        let (logits, params) = self.rollout_logits(&mut g, &actions);
        // loss = -advantage * sum_t log pi(a_t); cross_entropy gives -log pi
        let mut nll_total: Option<Var> = None;
        for (step, logit) in logits.iter().enumerate() {
            let nll = g.cross_entropy_logits(*logit, &[episode.actions[step]]);
            nll_total = Some(match nll_total {
                Some(acc) => g.add(acc, nll),
                None => nll,
            });
        }
        let loss = g.scale(nll_total.expect("at least one step"), advantage as f32);
        g.backward(loss);
        let grads: Vec<Matrix> = params.iter().map(|&p| g.grad(p).clone()).collect();
        let mut targets: Vec<&mut Matrix> = vec![
            &mut self.action_embedding,
            &mut self.w_in,
            &mut self.w_hidden,
            &mut self.b_hidden,
            &mut self.w_out,
            &mut self.b_out,
        ];
        for (slot, (target, grad)) in targets.iter_mut().zip(grads.iter()).enumerate() {
            self.optimizer.step(slot, target, grad);
        }
    }

    /// Probability distribution over actions at the first step (useful for
    /// inspecting what the policy has learnt).
    pub fn first_step_distribution(&self) -> Vec<f64> {
        let mut g = Graph::new();
        let (logits, _) = self.rollout_logits(&mut g, &vec![None; self.config.steps]);
        let probs = softmax_rows_matrix(g.value(logits[0]));
        (0..self.config.actions_per_step)
            .map(|a| probs.get(0, a) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_episodes_have_valid_actions_and_probabilities() {
        let mut c = Controller::new(ControllerConfig::default());
        for _ in 0..5 {
            let e = c.sample_episode();
            assert_eq!(e.actions.len(), 3);
            assert!(e.actions.iter().all(|&a| a < 5));
            assert!(e.probabilities.iter().all(|&p| (0.0..=1.0).contains(&p)));
            assert!(e.log_probability() <= 0.0);
        }
    }

    #[test]
    fn first_step_distribution_sums_to_one() {
        let c = Controller::new(ControllerConfig::default());
        let dist = c.first_step_distribution();
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn policy_learns_to_prefer_the_rewarded_action() {
        // bandit-style check: action 2 at every step yields reward 1, all
        // other actions reward 0; the policy must shift mass towards 2.
        let config = ControllerConfig {
            steps: 2,
            actions_per_step: 4,
            hidden_dim: 8,
            learning_rate: 0.08,
            baseline_decay: 0.7,
            seed: 5,
        };
        let mut c = Controller::new(config);
        let before = c.first_step_distribution()[2];
        for _ in 0..120 {
            let e = c.sample_episode();
            let reward = if e.actions.iter().all(|&a| a == 2) {
                1.0
            } else {
                0.0
            };
            c.update(&e, reward);
        }
        let after = c.first_step_distribution()[2];
        assert!(
            after > before && after > 0.5,
            "probability of the rewarded action should grow: {:.3} -> {:.3}",
            before,
            after
        );
        let best = c.best_episode();
        assert!(best.actions.iter().all(|&a| a == 2));
    }

    #[test]
    fn baseline_tracks_recent_rewards() {
        let mut c = Controller::new(ControllerConfig::default());
        let e = c.sample_episode();
        c.update(&e, 1.0);
        assert!((c.baseline() - 1.0).abs() < 1e-9);
        let e2 = c.sample_episode();
        c.update(&e2, 0.0);
        assert!(c.baseline() < 1.0 && c.baseline() > 0.0);
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(ControllerConfig {
            steps: 0,
            ..ControllerConfig::default()
        }
        .validate()
        .is_err());
        assert!(ControllerConfig {
            baseline_decay: 1.0,
            ..ControllerConfig::default()
        }
        .validate()
        .is_err());
    }
}
