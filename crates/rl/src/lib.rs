//! # rt3-rl
//!
//! The reinforcement-learning substrate of RT3: an RNN policy controller
//! trained with REINFORCE, used by the Level-2 search to pick one candidate
//! pattern set per V/F level (component ② of the framework). The Level-2
//! search consumes it through `rt3_search::Reinforce`, the trait adapter
//! that makes this controller one pluggable optimizer among several
//! (evolutionary, bandit, random, exhaustive) — this crate stays a leaf
//! and knows nothing about that boundary.
//!
//! # Examples
//!
//! ```
//! use rt3_rl::{Controller, ControllerConfig};
//!
//! let mut controller = Controller::new(ControllerConfig {
//!     steps: 3,
//!     actions_per_step: 6,
//!     ..ControllerConfig::default()
//! });
//! let episode = controller.sample_episode();
//! controller.update(&episode, 0.42);
//! assert!(controller.baseline() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;

pub use controller::{Controller, ControllerConfig, Episode};
