//! Performance predictor: estimated inference latency of a (pruned)
//! Transformer at a given V/F level.
//!
//! The paper uses the PatDNN-style mobile compiler [31] to predict execution
//! cycles for pattern-pruned weights. This module plays the same role
//! (component ④'s latency input) with an analytical model: compute cycles
//! from the surviving multiply-accumulates, discounted by a per-format
//! execution-efficiency factor (regular formats vectorise well, irregular
//! COO does not), plus a memory-traffic term for streaming the weights.

use crate::dvfs::VfLevel;
use rt3_sparse::SparseFormat;
use rt3_transformer::{MaskSet, Model, TransformerConfig};
use serde::{Deserialize, Serialize};

/// Workload of one weight matrix in the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWorkload {
    /// Parameter name (for reporting).
    pub name: String,
    /// Rows of the weight matrix.
    pub rows: usize,
    /// Columns of the weight matrix.
    pub cols: usize,
    /// Fraction of weights pruned away, in `[0, 1]`.
    pub sparsity: f64,
    /// Storage/kernel format used for this weight.
    pub format: SparseFormat,
}

impl LayerWorkload {
    /// Returns `true` for embedding tables, which are gathered (one row per
    /// token) rather than multiplied, so they contribute neither MACs nor
    /// meaningful weight streaming to an inference.
    pub fn is_embedding(&self) -> bool {
        self.name.contains("embedding")
    }

    /// Multiply-accumulate operations for one token passing through this
    /// weight (surviving weights only). Embedding tables are lookups and
    /// contribute zero MACs.
    pub fn macs_per_token(&self) -> f64 {
        if self.is_embedding() {
            return 0.0;
        }
        (self.rows * self.cols) as f64 * (1.0 - self.sparsity)
    }

    /// Bytes of weight data streamed from memory (values + format index
    /// overhead, 4-byte values). Embedding tables stream only the rows a
    /// sequence touches, which is negligible next to the projection weights,
    /// so they are counted as zero here.
    pub fn weight_bytes(&self) -> f64 {
        if self.is_embedding() {
            return 0.0;
        }
        let nnz = (self.rows * self.cols) as f64 * (1.0 - self.sparsity);
        let index_overhead = match self.format {
            SparseFormat::Dense => 0.0,
            SparseFormat::Coo => 8.0 * nnz,
            SparseFormat::Csr => 4.0 * nnz + 4.0 * self.rows as f64,
            SparseFormat::BlockPruned => 0.1 * nnz,
        };
        let value_bytes = match self.format {
            SparseFormat::Dense => (self.rows * self.cols) as f64 * 4.0,
            _ => nnz * 4.0,
        };
        value_bytes + index_overhead
    }
}

/// Full-model workload: per-layer weights plus the sequence length the model
/// is run at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWorkload {
    /// Per-weight workloads.
    pub layers: Vec<LayerWorkload>,
    /// Sequence length of one inference.
    pub seq_len: usize,
}

impl ModelWorkload {
    /// Builds the workload from a live model and an optional mask set: every
    /// prunable parameter uses the mask's sparsity, everything else is dense.
    pub fn from_model<M: Model>(
        model: &M,
        masks: Option<&MaskSet>,
        seq_len: usize,
        format: SparseFormat,
    ) -> Self {
        let prunable = model.prunable_parameter_names();
        let layers = model
            .parameters()
            .into_iter()
            .map(|(name, m)| {
                let masked = masks.and_then(|ms| ms.get(&name));
                let sparsity = masked.map_or(0.0, |mask| mask.sparsity());
                let fmt = if prunable.contains(&name) && sparsity > 0.0 {
                    format
                } else {
                    SparseFormat::Dense
                };
                LayerWorkload {
                    name,
                    rows: m.rows(),
                    cols: m.cols(),
                    sparsity,
                    format: fmt,
                }
            })
            .collect();
        Self { layers, seq_len }
    }

    /// Builds the workload analytically from a configuration, applying a
    /// uniform `sparsity` to every prunable projection. Used for full-size
    /// shapes (e.g. DistilBERT, H = 768) that are never instantiated as live
    /// models in this reproduction.
    pub fn from_config(
        config: &TransformerConfig,
        sparsity: f64,
        seq_len: usize,
        format: SparseFormat,
    ) -> Self {
        let h = config.hidden_dim;
        let f = config.ffn_dim;
        let v = config.vocab_size;
        let mut layers = Vec::new();
        let mut push = |name: String, rows: usize, cols: usize, s: f64, fmt: SparseFormat| {
            layers.push(LayerWorkload {
                name,
                rows,
                cols,
                sparsity: s,
                format: fmt,
            });
        };
        push("token_embedding".into(), v, h, 0.0, SparseFormat::Dense);
        for i in 0..config.num_encoder_layers {
            for w in ["wq", "wk", "wv", "wo"] {
                push(format!("encoder.{i}.attn.{w}"), h, h, sparsity, format);
            }
            push(format!("encoder.{i}.ffn.w1"), h, f, sparsity, format);
            push(format!("encoder.{i}.ffn.w2"), f, h, sparsity, format);
        }
        for i in 0..config.num_decoder_layers {
            for w in ["wq", "wk", "wv", "wo"] {
                push(format!("decoder.{i}.self_attn.{w}"), h, h, sparsity, format);
                push(
                    format!("decoder.{i}.cross_attn.{w}"),
                    h,
                    h,
                    sparsity,
                    format,
                );
            }
            push(format!("decoder.{i}.ffn.w1"), h, f, sparsity, format);
            push(format!("decoder.{i}.ffn.w2"), f, h, sparsity, format);
        }
        push("lm_head.w".into(), h, v, sparsity, format);
        Self { layers, seq_len }
    }

    /// Total multiply-accumulates per inference (weights applied to every
    /// token, plus the quadratic attention score/value products).
    pub fn total_macs(&self) -> f64 {
        let weight_macs: f64 = self
            .layers
            .iter()
            .map(|l| l.macs_per_token() * self.seq_len as f64)
            .sum();
        // attention score + context products: 2 * seq^2 * hidden per
        // attention block; approximate hidden by the most common square
        // weight size
        let attn_blocks = self
            .layers
            .iter()
            .filter(|l| l.name.contains("attn.wq"))
            .count() as f64;
        let hidden = self
            .layers
            .iter()
            .find(|l| l.name.contains("attn.wq"))
            .map(|l| l.cols as f64)
            .unwrap_or(0.0);
        let attn_macs = attn_blocks * 2.0 * (self.seq_len as f64).powi(2) * hidden;
        weight_macs + attn_macs
    }

    /// Total weight bytes streamed per inference.
    pub fn total_weight_bytes(&self) -> f64 {
        self.layers.iter().map(LayerWorkload::weight_bytes).sum()
    }

    /// Mean sparsity over the prunable (non-dense-format) layers, weighted by
    /// element count.
    pub fn mean_sparsity(&self) -> f64 {
        let mut pruned = 0.0;
        let mut total = 0.0;
        for l in &self.layers {
            if l.format != SparseFormat::Dense || l.sparsity > 0.0 {
                let n = (l.rows * l.cols) as f64;
                pruned += n * l.sparsity;
                total += n;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            pruned / total
        }
    }
}

/// Analytical latency model for a mobile in-order core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerformancePredictor {
    /// Multiply-accumulates retired per cycle with a perfectly regular
    /// (dense) kernel.
    pub macs_per_cycle: f64,
    /// Weight bytes streamed from DRAM per cycle.
    pub bytes_per_cycle: f64,
}

impl PerformancePredictor {
    /// Calibrated for a single Cortex-A7 core: dual-issue NEON gives roughly
    /// 4 single-precision MACs per cycle; LPDDR3 sustains about 2 bytes per
    /// core cycle.
    pub fn cortex_a7() -> Self {
        Self {
            macs_per_cycle: 4.0,
            bytes_per_cycle: 2.0,
        }
    }

    /// Calibrated for the whole quad-core A7 cluster running a multi-threaded
    /// inference runtime (the DistilBERT experiments in the paper use the
    /// full cluster): about 16 MACs and 6 bytes per cluster cycle.
    pub fn cortex_a7_cluster() -> Self {
        Self {
            macs_per_cycle: 16.0,
            bytes_per_cycle: 6.0,
        }
    }

    /// Fraction of peak MAC throughput a kernel reaches for a given storage
    /// format (regular formats vectorise, irregular formats stall on index
    /// decode — the paper's Challenge 1).
    pub fn format_efficiency(format: SparseFormat) -> f64 {
        match format {
            SparseFormat::Dense => 1.0,
            SparseFormat::BlockPruned => 0.92,
            SparseFormat::Csr => 0.55,
            SparseFormat::Coo => 0.35,
        }
    }

    /// Estimated execution cycles for one inference of `workload`.
    pub fn cycles(&self, workload: &ModelWorkload) -> f64 {
        let compute: f64 = workload
            .layers
            .iter()
            .map(|l| {
                l.macs_per_token() * workload.seq_len as f64
                    / (self.macs_per_cycle * Self::format_efficiency(l.format))
            })
            .sum();
        // quadratic attention terms run as dense kernels
        let attn_macs = workload.total_macs()
            - workload
                .layers
                .iter()
                .map(|l| l.macs_per_token() * workload.seq_len as f64)
                .sum::<f64>();
        let attn_cycles = attn_macs / self.macs_per_cycle;
        let memory = workload.total_weight_bytes() / self.bytes_per_cycle;
        // compute and memory overlap imperfectly on an in-order core: take
        // the max plus a fraction of the smaller term
        let (hi, lo) = if compute + attn_cycles > memory {
            (compute + attn_cycles, memory)
        } else {
            (memory, compute + attn_cycles)
        };
        hi + 0.3 * lo
    }

    /// Estimated latency in milliseconds at a V/F level.
    pub fn latency_ms(&self, workload: &ModelWorkload, level: &VfLevel) -> f64 {
        self.cycles(workload) / level.frequency_hz() * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt3_pruning::{block_prune_model, BlockPruningConfig, PruneCriterion};
    use rt3_transformer::{TransformerConfig, TransformerLm};

    #[test]
    fn higher_sparsity_means_lower_latency() {
        let config = TransformerConfig::distilbert_full(30522);
        let predictor = PerformancePredictor::cortex_a7();
        let l6 = VfLevel::odroid_level(6);
        let latencies: Vec<f64> = [0.0, 0.5, 0.8]
            .iter()
            .map(|&s| {
                let w = ModelWorkload::from_config(&config, s, 32, SparseFormat::BlockPruned);
                predictor.latency_ms(&w, &l6)
            })
            .collect();
        assert!(latencies[0] > latencies[1] && latencies[1] > latencies[2]);
    }

    #[test]
    fn lower_frequency_means_higher_latency() {
        let config = TransformerConfig::paper_transformer(1000);
        let predictor = PerformancePredictor::cortex_a7();
        let w = ModelWorkload::from_config(&config, 0.5, 24, SparseFormat::BlockPruned);
        let l3 = predictor.latency_ms(&w, &VfLevel::odroid_level(3));
        let l6 = predictor.latency_ms(&w, &VfLevel::odroid_level(6));
        assert!(l3 > l6);
        let ratio = l3 / l6;
        assert!((ratio - 1400.0 / 800.0).abs() < 1e-6);
    }

    #[test]
    fn irregular_formats_are_slower_at_equal_sparsity() {
        let config = TransformerConfig::distilbert_full(30522);
        let predictor = PerformancePredictor::cortex_a7();
        let l6 = VfLevel::odroid_level(6);
        let block = ModelWorkload::from_config(&config, 0.7, 32, SparseFormat::BlockPruned);
        let coo = ModelWorkload::from_config(&config, 0.7, 32, SparseFormat::Coo);
        assert!(
            predictor.latency_ms(&coo, &l6) > predictor.latency_ms(&block, &l6),
            "COO must be slower than block-pruned at the same sparsity"
        );
    }

    #[test]
    fn full_distilbert_latency_is_in_hundreds_of_milliseconds() {
        // sanity-check against the paper's Table III, where DistilBERT
        // latencies at mobile V/F levels are 100-330 ms
        let config = TransformerConfig::distilbert_full(30522);
        let predictor = PerformancePredictor::cortex_a7();
        let w = ModelWorkload::from_config(&config, 0.5, 64, SparseFormat::BlockPruned);
        let lat = predictor.latency_ms(&w, &VfLevel::odroid_level(4));
        assert!(
            (30.0..2000.0).contains(&lat),
            "latency {:.1} ms should be in a mobile-plausible range",
            lat
        );
    }

    #[test]
    fn workload_from_live_model_uses_mask_sparsity() {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 1);
        let masks = block_prune_model(
            &model,
            &BlockPruningConfig {
                num_blocks: 2,
                criterion: PruneCriterion::Fraction(0.5),
            },
        );
        let dense = ModelWorkload::from_model(&model, None, 8, SparseFormat::BlockPruned);
        let pruned = ModelWorkload::from_model(&model, Some(&masks), 8, SparseFormat::BlockPruned);
        assert!(pruned.mean_sparsity() > 0.3);
        assert!(dense.mean_sparsity() < 1e-9);
        assert!(pruned.total_macs() < dense.total_macs());
    }

    #[test]
    fn weight_bytes_account_for_format_overhead() {
        let layer = |format| LayerWorkload {
            name: "w".into(),
            rows: 100,
            cols: 100,
            sparsity: 0.5,
            format,
        };
        let coo = layer(SparseFormat::Coo).weight_bytes();
        let block = layer(SparseFormat::BlockPruned).weight_bytes();
        let dense = layer(SparseFormat::Dense).weight_bytes();
        assert!(
            coo > dense,
            "COO at 50% sparsity costs more bytes than dense"
        );
        assert!(
            block < dense,
            "block-pruned storage should be smaller than dense"
        );
    }
}
