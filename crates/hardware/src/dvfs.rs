//! DVFS model: the voltage/frequency levels of the target mobile SoC.
//!
//! Table I of the paper lists six V/F levels of the ARM Cortex-A7 cluster of
//! the Odroid-XU3 board. [`VfLevel::odroid_xu3_a7`] reproduces that table;
//! the rest of this module maps battery state to the operating mode and
//! level, mirroring the F-Mode / N-Mode / E-Mode setup of the motivation
//! experiment (Table II).

use serde::{Deserialize, Serialize};

/// One voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfLevel {
    /// Level index `l1..l6` (1-based, as in the paper).
    pub index: usize,
    /// Core clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Supply voltage in millivolts.
    pub voltage_mv: f64,
}

impl VfLevel {
    /// The six levels of Table I (Odroid-XU3, Cortex-A7 cluster).
    pub fn odroid_xu3_a7() -> Vec<VfLevel> {
        let freq = [400.0, 600.0, 800.0, 1000.0, 1200.0, 1400.0];
        let volt = [916.25, 917.5, 992.5, 1066.25, 1141.25, 1240.0];
        freq.iter()
            .zip(volt.iter())
            .enumerate()
            .map(|(i, (&frequency_mhz, &voltage_mv))| VfLevel {
                index: i + 1,
                frequency_mhz,
                voltage_mv,
            })
            .collect()
    }

    /// Looks up level `l<index>` (1-based) in the Odroid table.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in `1..=6`.
    pub fn odroid_level(index: usize) -> VfLevel {
        assert!((1..=6).contains(&index), "Odroid-XU3 levels are l1..l6");
        VfLevel::odroid_xu3_a7()[index - 1]
    }

    /// Voltage in volts.
    pub fn voltage_v(&self) -> f64 {
        self.voltage_mv / 1000.0
    }

    /// Frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_mhz * 1e6
    }
}

/// The three execution modes used in the motivation experiment (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DvfsMode {
    /// Fast execution (highest selected level).
    Fast,
    /// Normal-speed execution.
    Normal,
    /// Energy-saving execution (lowest selected level).
    EnergySaving,
}

impl std::fmt::Display for DvfsMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DvfsMode::Fast => "F-Mode",
            DvfsMode::Normal => "N-Mode",
            DvfsMode::EnergySaving => "E-Mode",
        };
        f.write_str(name)
    }
}

/// A DVFS governor: the set of V/F levels the device may use at run time and
/// the battery thresholds at which it steps down.
///
/// The paper's evaluation selects levels `{l3, l4, l6}`; that is the default.
///
/// # Examples
///
/// ```
/// use rt3_hardware::{DvfsGovernor, DvfsMode};
///
/// let gov = DvfsGovernor::paper_default();
/// assert_eq!(gov.levels().len(), 3);
/// assert_eq!(gov.mode_for_battery(0.9), DvfsMode::Fast);
/// assert_eq!(gov.mode_for_battery(0.1), DvfsMode::EnergySaving);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsGovernor {
    levels: Vec<VfLevel>,
    /// Battery fraction below which the governor leaves Fast mode.
    normal_threshold: f64,
    /// Battery fraction below which the governor enters EnergySaving mode.
    saving_threshold: f64,
}

impl DvfsGovernor {
    /// Creates a governor over `levels` (ordered from lowest to highest
    /// frequency) with battery thresholds for stepping down.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or the thresholds are not in `(0, 1)` with
    /// `saving_threshold < normal_threshold`.
    pub fn new(mut levels: Vec<VfLevel>, normal_threshold: f64, saving_threshold: f64) -> Self {
        assert!(!levels.is_empty(), "at least one V/F level is required");
        assert!(
            0.0 < saving_threshold && saving_threshold < normal_threshold && normal_threshold < 1.0,
            "thresholds must satisfy 0 < saving < normal < 1"
        );
        levels.sort_by(|a, b| {
            a.frequency_mhz
                .partial_cmp(&b.frequency_mhz)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Self {
            levels,
            normal_threshold,
            saving_threshold,
        }
    }

    /// The paper's configuration: levels `{l3, l4, l6}` with step-downs at
    /// 50% and 20% battery (the iPhone-style energy-saving threshold the
    /// paper mentions).
    pub fn paper_default() -> Self {
        Self::new(
            vec![
                VfLevel::odroid_level(3),
                VfLevel::odroid_level(4),
                VfLevel::odroid_level(6),
            ],
            0.5,
            0.2,
        )
    }

    /// Selected levels, ordered from lowest to highest frequency.
    pub fn levels(&self) -> &[VfLevel] {
        &self.levels
    }

    /// Mode chosen for a battery state of charge in `[0, 1]`.
    pub fn mode_for_battery(&self, state_of_charge: f64) -> DvfsMode {
        if state_of_charge <= self.saving_threshold {
            DvfsMode::EnergySaving
        } else if state_of_charge <= self.normal_threshold {
            DvfsMode::Normal
        } else {
            DvfsMode::Fast
        }
    }

    /// V/F level used in a given mode: Fast = highest frequency, EnergySaving
    /// = lowest, Normal = middle (rounded down).
    pub fn level_for_mode(&self, mode: DvfsMode) -> VfLevel {
        match mode {
            DvfsMode::Fast => *self.levels.last().expect("non-empty"),
            DvfsMode::EnergySaving => self.levels[0],
            DvfsMode::Normal => self.levels[self.levels.len() / 2],
        }
    }

    /// Convenience: the level used at a given battery state of charge.
    pub fn level_for_battery(&self, state_of_charge: f64) -> VfLevel {
        self.level_for_mode(self.mode_for_battery(state_of_charge))
    }

    /// Index (into [`DvfsGovernor::levels`]) of the level used in `mode`.
    pub fn level_position(&self, mode: DvfsMode) -> usize {
        match mode {
            DvfsMode::Fast => self.levels.len() - 1,
            DvfsMode::EnergySaving => 0,
            DvfsMode::Normal => self.levels.len() / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_values_match_the_paper() {
        let levels = VfLevel::odroid_xu3_a7();
        assert_eq!(levels.len(), 6);
        assert_eq!(levels[0].frequency_mhz, 400.0);
        assert_eq!(levels[0].voltage_mv, 916.25);
        assert_eq!(levels[5].frequency_mhz, 1400.0);
        assert_eq!(levels[5].voltage_mv, 1240.0);
        assert_eq!(levels[2].voltage_mv, 992.5);
    }

    #[test]
    fn voltage_and_frequency_unit_conversions() {
        let l6 = VfLevel::odroid_level(6);
        assert!((l6.voltage_v() - 1.24).abs() < 1e-9);
        assert!((l6.frequency_hz() - 1.4e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "l1..l6")]
    fn out_of_range_level_is_rejected() {
        let _ = VfLevel::odroid_level(7);
    }

    #[test]
    fn governor_steps_down_with_battery() {
        let gov = DvfsGovernor::paper_default();
        assert_eq!(gov.mode_for_battery(1.0), DvfsMode::Fast);
        assert_eq!(gov.mode_for_battery(0.5), DvfsMode::Normal);
        assert_eq!(gov.mode_for_battery(0.21), DvfsMode::Normal);
        assert_eq!(gov.mode_for_battery(0.2), DvfsMode::EnergySaving);
        assert_eq!(gov.mode_for_battery(0.0), DvfsMode::EnergySaving);
    }

    #[test]
    fn governor_maps_modes_to_expected_levels() {
        let gov = DvfsGovernor::paper_default();
        assert_eq!(gov.level_for_mode(DvfsMode::Fast).index, 6);
        assert_eq!(gov.level_for_mode(DvfsMode::Normal).index, 4);
        assert_eq!(gov.level_for_mode(DvfsMode::EnergySaving).index, 3);
        assert_eq!(gov.level_position(DvfsMode::EnergySaving), 0);
    }

    #[test]
    fn governor_sorts_levels_by_frequency() {
        let gov = DvfsGovernor::new(
            vec![VfLevel::odroid_level(6), VfLevel::odroid_level(3)],
            0.6,
            0.3,
        );
        assert_eq!(gov.levels()[0].index, 3);
        assert_eq!(gov.levels()[1].index, 6);
    }

    #[test]
    fn mode_display_names_match_table_two() {
        assert_eq!(DvfsMode::Fast.to_string(), "F-Mode");
        assert_eq!(DvfsMode::Normal.to_string(), "N-Mode");
        assert_eq!(DvfsMode::EnergySaving.to_string(), "E-Mode");
    }
}
