//! # rt3-hardware
//!
//! Mobile-hardware substrate for the RT3 reproduction: DVFS, power, battery,
//! latency prediction and run-time reconfiguration costs.
//!
//! The paper's hardware-efficiency metric is the *number of runs* — how many
//! inferences fit in a battery charge while meeting a latency constraint —
//! measured on an Odroid-XU3 board. That board is replaced here by
//! calibrated analytical models (see DESIGN.md):
//!
//! * [`VfLevel`] / [`DvfsGovernor`] — Table I's V/F levels and the
//!   battery-driven governor (F/N/E modes).
//! * [`PowerModel`] / [`Battery`] / [`number_of_runs`] — CMOS power and
//!   energy accounting, plus the [`DrainRateTracker`] EWMA drain observer
//!   behind the runtime's predictive (time-to-death) battery reasoning.
//! * [`PerformancePredictor`] / [`ModelWorkload`] — the latency predictor
//!   (component ④'s hardware feedback).
//! * [`MemoryModel`] / [`simulate_battery_lifetime`] — pattern-set switch
//!   cost vs full model reload, and the Table II battery simulation.
//!
//! # Examples
//!
//! ```
//! use rt3_hardware::{ModelWorkload, PerformancePredictor, VfLevel};
//! use rt3_sparse::SparseFormat;
//! use rt3_transformer::TransformerConfig;
//!
//! let config = TransformerConfig::distilbert_full(30522);
//! let workload = ModelWorkload::from_config(&config, 0.6, 64, SparseFormat::BlockPruned);
//! let predictor = PerformancePredictor::cortex_a7();
//! let latency = predictor.latency_ms(&workload, &VfLevel::odroid_level(6));
//! assert!(latency > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dvfs;
mod latency;
mod power;
mod reconfig;

pub use dvfs::{DvfsGovernor, DvfsMode, VfLevel};
pub use latency::{LayerWorkload, ModelWorkload, PerformancePredictor};
pub use power::{number_of_runs, Battery, DrainRateTracker, PowerModel};
pub use reconfig::{
    simulate_battery_lifetime, simulate_fixed_level, ExecutionProfile, MemoryModel,
    SimulationReport, SwitchCost,
};
