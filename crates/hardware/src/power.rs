//! CMOS power model, energy accounting and the battery abstraction.
//!
//! The paper measures "number of runs" — how many inferences fit in a fixed
//! battery energy budget — as its hardware-efficiency metric. This module
//! derives that number from a standard dynamic-power model
//! `P = C_eff · V² · f + P_static` evaluated at the DVFS level in use.

use crate::dvfs::VfLevel;
use serde::{Deserialize, Serialize};

/// Dynamic + static power model of the target core.
///
/// # Examples
///
/// ```
/// use rt3_hardware::{PowerModel, VfLevel};
///
/// let power = PowerModel::cortex_a7();
/// let low = power.power_w(&VfLevel::odroid_level(1));
/// let high = power.power_w(&VfLevel::odroid_level(6));
/// assert!(high > 2.0 * low, "high V/F level must cost much more power");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Effective switched capacitance in farads.
    pub switched_capacitance_f: f64,
    /// Frequency-independent (leakage + uncore) power in watts.
    pub static_power_w: f64,
}

impl PowerModel {
    /// Calibrated so the Cortex-A7 cluster draws roughly 0.75 W at l6
    /// (1.4 GHz, 1.24 V) and about 0.25 W at l1, consistent with published
    /// Odroid-XU3 measurements.
    pub fn cortex_a7() -> Self {
        Self {
            switched_capacitance_f: 3.3e-10,
            static_power_w: 0.04,
        }
    }

    /// Power draw in watts at a V/F level.
    pub fn power_w(&self, level: &VfLevel) -> f64 {
        let v = level.voltage_v();
        self.switched_capacitance_f * v * v * level.frequency_hz() + self.static_power_w
    }

    /// Energy in joules of one inference that takes `latency_ms` at `level`.
    pub fn energy_per_inference_j(&self, level: &VfLevel, latency_ms: f64) -> f64 {
        self.power_w(level) * latency_ms / 1000.0
    }
}

/// Number of inferences that fit in `budget_j` joules when each inference
/// costs `energy_per_inference_j` joules.
///
/// Returns 0.0 when the per-inference energy is not positive.
pub fn number_of_runs(budget_j: f64, energy_per_inference_j: f64) -> f64 {
    if energy_per_inference_j <= 0.0 {
        return 0.0;
    }
    (budget_j / energy_per_inference_j).floor()
}

/// A battery with a fixed energy capacity that is drained by inferences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    remaining_j: f64,
}

impl Battery {
    /// Creates a fully charged battery.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j` is not positive and finite.
    pub fn new(capacity_j: f64) -> Self {
        assert!(
            capacity_j.is_finite() && capacity_j > 0.0,
            "battery capacity must be positive"
        );
        Self {
            capacity_j,
            remaining_j: capacity_j,
        }
    }

    /// Total capacity in joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Remaining energy in joules.
    pub fn remaining_j(&self) -> f64 {
        self.remaining_j
    }

    /// State of charge in `[0, 1]`.
    pub fn state_of_charge(&self) -> f64 {
        self.remaining_j / self.capacity_j
    }

    /// Returns `true` if no usable energy remains.
    pub fn is_empty(&self) -> bool {
        self.remaining_j <= 0.0
    }

    /// Attempts to draw `energy_j`; returns `false` (leaving the battery
    /// unchanged) if not enough energy remains.
    pub fn drain(&mut self, energy_j: f64) -> bool {
        if energy_j > self.remaining_j {
            return false;
        }
        self.remaining_j -= energy_j;
        true
    }

    /// Adds `energy_j` of charge, saturating at the battery's capacity.
    /// Used by the runtime's charge-while-serving scenario.
    ///
    /// # Panics
    ///
    /// Panics if `energy_j` is negative or not finite.
    pub fn charge(&mut self, energy_j: f64) {
        assert!(
            energy_j.is_finite() && energy_j >= 0.0,
            "charge energy must be non-negative"
        );
        self.remaining_j = (self.remaining_j + energy_j).min(self.capacity_j);
    }
}

/// Exponentially weighted drain-rate estimator over periodic battery
/// observations — the runtime's hook for *predictive* battery reasoning.
///
/// The fleet router's original headroom score ranked devices by raw state of
/// charge, which confuses "large battery" with "long life": a full battery
/// draining at 2 W dies before a half battery on a charger. Feeding the
/// tracker one `(elapsed, remaining)` observation per window turns the raw
/// trajectory into a smoothed drain rate (watts), and
/// [`DrainRateTracker::time_to_death_ms`] converts that into the quantity a
/// router actually cares about: how long until this battery is gone.
///
/// Charging shows up as a negative drain rate, which maps to an infinite
/// time to death — exactly the "lean on the device with the charger"
/// behaviour predictive routing wants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrainRateTracker {
    /// EWMA weight of the newest observation, in `(0, 1]`.
    smoothing: f64,
    /// Remaining energy at the previous observation, `None` before the
    /// first.
    last_remaining_j: Option<f64>,
    /// Smoothed drain rate in watts (negative while charging), `None` until
    /// two observations have been made.
    rate_w: Option<f64>,
}

impl Default for DrainRateTracker {
    /// Smoothing of 0.25: roughly the last four windows dominate the
    /// estimate, fast enough to track a burst, slow enough not to flap on
    /// one idle window.
    fn default() -> Self {
        Self::new(0.25)
    }
}

impl DrainRateTracker {
    /// Creates a tracker with the given EWMA `smoothing` weight.
    ///
    /// # Panics
    ///
    /// Panics unless `smoothing` is in `(0, 1]`.
    pub fn new(smoothing: f64) -> Self {
        assert!(
            smoothing > 0.0 && smoothing <= 1.0,
            "EWMA smoothing must be in (0, 1]"
        );
        Self {
            smoothing,
            last_remaining_j: None,
            rate_w: None,
        }
    }

    /// Records that `elapsed_s` seconds after the previous observation the
    /// battery holds `remaining_j` joules. The first observation only seeds
    /// the baseline; every later one updates the smoothed rate.
    ///
    /// # Panics
    ///
    /// Panics unless `elapsed_s` is positive and finite.
    pub fn observe(&mut self, elapsed_s: f64, remaining_j: f64) {
        assert!(
            elapsed_s.is_finite() && elapsed_s > 0.0,
            "observation interval must be positive"
        );
        if let Some(prev) = self.last_remaining_j {
            let instantaneous_w = (prev - remaining_j) / elapsed_s;
            self.rate_w = Some(match self.rate_w {
                Some(rate) => rate + self.smoothing * (instantaneous_w - rate),
                None => instantaneous_w,
            });
        }
        self.last_remaining_j = Some(remaining_j);
    }

    /// Smoothed drain rate in watts; negative while charging, 0 until two
    /// observations have been made.
    pub fn drain_rate_w(&self) -> f64 {
        self.rate_w.unwrap_or(0.0)
    }

    /// Predicted milliseconds until a battery holding `remaining_j` joules
    /// dies at the current smoothed drain rate. Returns 0 for an empty
    /// battery and `f64::INFINITY` while the battery is charging, holding
    /// steady, or the rate is still unobserved — a monotone *decreasing*
    /// function of the drain rate for any fixed positive `remaining_j`.
    pub fn time_to_death_ms(&self, remaining_j: f64) -> f64 {
        if remaining_j <= 0.0 {
            return 0.0;
        }
        match self.rate_w {
            Some(rate) if rate > 0.0 => remaining_j / rate * 1_000.0,
            _ => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_grows_superlinearly_with_level() {
        let model = PowerModel::cortex_a7();
        let levels = VfLevel::odroid_xu3_a7();
        let powers: Vec<f64> = levels.iter().map(|l| model.power_w(l)).collect();
        for w in powers.windows(2) {
            assert!(w[1] > w[0], "power must increase with the V/F level");
        }
        // l6 vs l1: frequency grows 3.5x but power grows faster because the
        // voltage also rises (the whole point of DVFS energy saving)
        let energy_ratio_same_work =
            (powers[5] / levels[5].frequency_mhz) / (powers[0] / levels[0].frequency_mhz);
        assert!(
            energy_ratio_same_work > 1.2,
            "per-cycle energy at l6 should exceed l1, got ratio {:.2}",
            energy_ratio_same_work
        );
    }

    #[test]
    fn cortex_calibration_is_in_a_plausible_range() {
        let model = PowerModel::cortex_a7();
        let p6 = model.power_w(&VfLevel::odroid_level(6));
        let p1 = model.power_w(&VfLevel::odroid_level(1));
        assert!((0.5..1.2).contains(&p6), "l6 power {:.3} W", p6);
        assert!((0.1..0.4).contains(&p1), "l1 power {:.3} W", p1);
    }

    #[test]
    fn energy_and_runs_accounting() {
        let model = PowerModel::cortex_a7();
        let l6 = VfLevel::odroid_level(6);
        let e = model.energy_per_inference_j(&l6, 100.0);
        assert!(e > 0.0);
        let runs = number_of_runs(1000.0, e);
        assert!((runs - (1000.0 / e).floor()).abs() < 1e-9);
        assert_eq!(number_of_runs(100.0, 0.0), 0.0);
    }

    #[test]
    fn battery_drains_and_refuses_overdraw() {
        let mut b = Battery::new(10.0);
        assert!(b.drain(4.0));
        assert!((b.state_of_charge() - 0.6).abs() < 1e-9);
        assert!(!b.drain(7.0));
        assert!((b.remaining_j() - 6.0).abs() < 1e-9);
        assert!(b.drain(6.0));
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn battery_rejects_non_positive_capacity() {
        let _ = Battery::new(0.0);
    }

    #[test]
    fn battery_charges_and_saturates_at_capacity() {
        let mut b = Battery::new(10.0);
        assert!(b.drain(8.0));
        b.charge(5.0);
        assert!((b.remaining_j() - 7.0).abs() < 1e-9);
        b.charge(100.0);
        assert!((b.remaining_j() - 10.0).abs() < 1e-9);
        assert!((b.state_of_charge() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn drain_tracker_smooths_towards_the_observed_rate() {
        let mut tracker = DrainRateTracker::new(0.5);
        assert_eq!(tracker.drain_rate_w(), 0.0);
        assert_eq!(tracker.time_to_death_ms(10.0), f64::INFINITY);
        tracker.observe(1.0, 10.0); // baseline only
        assert_eq!(tracker.drain_rate_w(), 0.0);
        tracker.observe(1.0, 9.0); // 1 W observed: first rate is taken as-is
        assert!((tracker.drain_rate_w() - 1.0).abs() < 1e-12);
        tracker.observe(1.0, 6.0); // 3 W observed: EWMA 0.5 → 2 W
        assert!((tracker.drain_rate_w() - 2.0).abs() < 1e-12);
        assert!((tracker.time_to_death_ms(6.0) - 3_000.0).abs() < 1e-9);
    }

    #[test]
    fn charging_yields_infinite_time_to_death() {
        let mut tracker = DrainRateTracker::default();
        tracker.observe(1.0, 5.0);
        tracker.observe(1.0, 6.0); // net charge
        assert!(tracker.drain_rate_w() < 0.0);
        assert_eq!(tracker.time_to_death_ms(6.0), f64::INFINITY);
        assert_eq!(tracker.time_to_death_ms(0.0), 0.0, "empty is dead now");
    }

    #[test]
    #[should_panic(expected = "smoothing must be in (0, 1]")]
    fn tracker_rejects_zero_smoothing() {
        let _ = DrainRateTracker::new(0.0);
    }
}
