//! Run-time reconfiguration: pattern-set switching costs and the battery
//! lifetime simulation behind the paper's motivation experiment (Table II)
//! and the "number of runs" columns of Tables III/IV.

use crate::dvfs::{DvfsGovernor, DvfsMode, VfLevel};
use crate::power::Battery;
use rt3_sparse::PatternSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cost of one software reconfiguration event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchCost {
    /// Bytes moved between off-chip memory and the working set.
    pub bytes_moved: usize,
    /// Wall-clock time of the switch in milliseconds.
    pub time_ms: f64,
}

/// Memory-system model used to convert switch traffic into time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Sustained off-chip DRAM bandwidth in bytes per millisecond (pattern
    /// sets are swapped between DRAM and the working set).
    pub bandwidth_bytes_per_ms: f64,
    /// Sustained flash/eMMC bandwidth in bytes per millisecond (full model
    /// checkpoints live in storage, not DRAM).
    pub storage_bandwidth_bytes_per_ms: f64,
    /// Fixed software overhead per pattern-set switch (driver call,
    /// remapping) in milliseconds.
    pub fixed_overhead_ms: f64,
    /// Framework overhead of loading and re-initialising a full model
    /// checkpoint, in milliseconds.
    pub model_load_overhead_ms: f64,
}

impl MemoryModel {
    /// LPDDR3-class memory of the Odroid-XU3 (~2.1 GB/s sustained for the
    /// little cluster), eMMC storage around 80 MB/s, 2 ms switch overhead
    /// and roughly one second of framework model-initialisation time.
    pub fn odroid_xu3() -> Self {
        Self {
            bandwidth_bytes_per_ms: 2.1e6,
            storage_bandwidth_bytes_per_ms: 8.0e4,
            fixed_overhead_ms: 2.0,
            model_load_overhead_ms: 1_000.0,
        }
    }

    /// Cost of swapping one pattern set in from off-chip memory (and the old
    /// one out): pattern bitmaps plus one assignment id per block for every
    /// pattern-pruned weight.
    ///
    /// `total_blocks` is the number of `psize x psize` blocks across all
    /// pattern-pruned weights.
    pub fn pattern_switch_cost(&self, set: &PatternSet, total_blocks: usize) -> SwitchCost {
        let bytes = 2 * (set.storage_bytes() + total_blocks * std::mem::size_of::<u16>());
        SwitchCost {
            bytes_moved: bytes,
            time_ms: self.fixed_overhead_ms + bytes as f64 / self.bandwidth_bytes_per_ms,
        }
    }

    /// Cost of reloading an entire model of `model_bytes` bytes (the
    /// upper-bound baseline, which keeps one separately trained model per
    /// V/F level and must read the full checkpoint back from storage and
    /// re-initialise it).
    pub fn full_model_reload_cost(&self, model_bytes: usize) -> SwitchCost {
        SwitchCost {
            bytes_moved: model_bytes,
            time_ms: self.model_load_overhead_ms
                + model_bytes as f64 / self.storage_bandwidth_bytes_per_ms,
        }
    }
}

/// Execution profile of the model variant used at one governor level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionProfile {
    /// Inference latency in milliseconds at that level.
    pub latency_ms: f64,
    /// Core power draw in watts at that level.
    pub power_w: f64,
}

/// Outcome of simulating a full battery discharge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Total inferences completed before the battery emptied.
    pub runs: u64,
    /// Inferences whose latency exceeded the timing constraint.
    pub deadline_violations: u64,
    /// Number of V/F (and pattern-set) switches performed.
    pub switches: u64,
    /// Runs per DVFS mode.
    pub runs_per_mode: BTreeMap<String, u64>,
    /// Whether every inference met the timing constraint.
    pub constraint_satisfied: bool,
}

impl SimulationReport {
    /// Improvement factor of this run count over a baseline run count.
    pub fn improvement_over(&self, baseline_runs: u64) -> f64 {
        if baseline_runs == 0 {
            return 0.0;
        }
        self.runs as f64 / baseline_runs as f64
    }
}

/// Simulates repeatedly running inference until the battery is empty.
///
/// `profiles` holds one [`ExecutionProfile`] per governor level (ordered as
/// [`DvfsGovernor::levels`], i.e. lowest frequency first); the governor picks
/// the level from the battery's state of charge before every inference, which
/// is exactly the paper's coupling of hardware reconfiguration (DVFS) with
/// software reconfiguration (the per-level model variant).
///
/// # Panics
///
/// Panics if `profiles.len() != governor.levels().len()` or any profile has a
/// non-positive latency or power.
pub fn simulate_battery_lifetime(
    governor: &DvfsGovernor,
    battery_capacity_j: f64,
    profiles: &[ExecutionProfile],
    timing_constraint_ms: f64,
) -> SimulationReport {
    assert_eq!(
        profiles.len(),
        governor.levels().len(),
        "one execution profile per governor level is required"
    );
    for p in profiles {
        assert!(
            p.latency_ms > 0.0 && p.power_w > 0.0,
            "profiles must have positive latency and power"
        );
    }
    let mut battery = Battery::new(battery_capacity_j);
    let mut runs = 0u64;
    let mut violations = 0u64;
    let mut switches = 0u64;
    let mut runs_per_mode: BTreeMap<String, u64> = BTreeMap::new();
    let mut previous_mode: Option<DvfsMode> = None;
    loop {
        let mode = governor.mode_for_battery(battery.state_of_charge());
        let position = governor.level_position(mode);
        let profile = profiles[position];
        let energy = profile.power_w * profile.latency_ms / 1000.0;
        if !battery.drain(energy) {
            break;
        }
        if previous_mode.is_some() && previous_mode != Some(mode) {
            switches += 1;
        }
        previous_mode = Some(mode);
        runs += 1;
        if profile.latency_ms > timing_constraint_ms {
            violations += 1;
        }
        *runs_per_mode.entry(mode.to_string()).or_insert(0) += 1;
    }
    SimulationReport {
        runs,
        deadline_violations: violations,
        switches,
        runs_per_mode,
        constraint_satisfied: violations == 0,
    }
}

/// Simulates the no-reconfiguration baseline (approach E1 of Table II): the
/// device always runs at `level` with the single profile given.
pub fn simulate_fixed_level(
    level: &VfLevel,
    battery_capacity_j: f64,
    profile: ExecutionProfile,
    timing_constraint_ms: f64,
) -> SimulationReport {
    let governor = DvfsGovernor::new(vec![*level], 0.66, 0.33);
    simulate_battery_lifetime(
        &governor,
        battery_capacity_j,
        &[profile],
        timing_constraint_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerModel;
    use rt3_sparse::PatternMask;

    fn profiles_scaled_by_frequency(
        gov: &DvfsGovernor,
        base_latency_ms: f64,
    ) -> Vec<ExecutionProfile> {
        // same model at every level: latency scales inversely with frequency
        let power = PowerModel::cortex_a7();
        let top = gov.levels().last().unwrap().frequency_mhz;
        gov.levels()
            .iter()
            .map(|l| ExecutionProfile {
                latency_ms: base_latency_ms * top / l.frequency_mhz,
                power_w: power.power_w(l),
            })
            .collect()
    }

    #[test]
    fn dvfs_extends_battery_but_violates_deadlines_without_sw_reconfig() {
        // Reproduces the qualitative Table II result: E2 (DVFS only) gets
        // more runs than E1 but misses the deadline at low frequency.
        let gov = DvfsGovernor::paper_default();
        let power = PowerModel::cortex_a7();
        let budget = 500.0;
        let constraint = 115.0;
        let base_latency = 114.0; // just meets the constraint at l6
        let e1 = simulate_fixed_level(
            &VfLevel::odroid_level(6),
            budget,
            ExecutionProfile {
                latency_ms: base_latency,
                power_w: power.power_w(&VfLevel::odroid_level(6)),
            },
            constraint,
        );
        let e2 = simulate_battery_lifetime(
            &gov,
            budget,
            &profiles_scaled_by_frequency(&gov, base_latency),
            constraint,
        );
        assert!(e2.runs > e1.runs, "DVFS must extend the number of runs");
        assert!(e1.constraint_satisfied);
        assert!(
            !e2.constraint_satisfied,
            "same model at low V/F must violate the deadline"
        );
    }

    #[test]
    fn software_reconfiguration_restores_deadlines_and_extends_runs_further() {
        // E3: per-level (sparser) model variants keep every latency under the
        // constraint, so more runs than E1 with no violations.
        let gov = DvfsGovernor::paper_default();
        let power = PowerModel::cortex_a7();
        let budget = 500.0;
        let constraint = 115.0;
        let e1 = simulate_fixed_level(
            &VfLevel::odroid_level(6),
            budget,
            ExecutionProfile {
                latency_ms: 114.0,
                power_w: power.power_w(&VfLevel::odroid_level(6)),
            },
            constraint,
        );
        // sparser models at lower levels: latency stays under the constraint
        let profiles: Vec<ExecutionProfile> = gov
            .levels()
            .iter()
            .map(|l| ExecutionProfile {
                latency_ms: 90.0 + 20.0 * (l.index as f64 / 6.0),
                power_w: power.power_w(l),
            })
            .collect();
        let e3 = simulate_battery_lifetime(&gov, budget, &profiles, constraint);
        assert!(e3.constraint_satisfied);
        assert!(e3.runs > e1.runs);
        assert!(e3.improvement_over(e1.runs) > 1.3);
        assert!(e3.switches >= 2, "mode should change as the battery drains");
        assert_eq!(e3.runs_per_mode.len(), 3);
    }

    #[test]
    fn pattern_switch_is_orders_of_magnitude_cheaper_than_model_reload() {
        let memory = MemoryModel::odroid_xu3();
        let set = rt3_sparse::PatternSet::new(vec![
            PatternMask::dense(100),
            PatternMask::dense(100),
            PatternMask::dense(100),
            PatternMask::dense(100),
        ])
        .unwrap();
        // DistilBERT-scale: ~66M parameters, 4 bytes each; ~5700 blocks of
        // 100x100 across the prunable projections
        let switch = memory.pattern_switch_cost(&set, 5_700);
        let reload = memory.full_model_reload_cost(66_000_000 * 4);
        assert!(
            switch.time_ms < 60.0,
            "pattern switch {:.1} ms",
            switch.time_ms
        );
        assert!(
            reload.time_ms / switch.time_ms > 1000.0,
            "reload {:.0} ms should be >1000x the pattern switch {:.2} ms",
            reload.time_ms,
            switch.time_ms
        );
    }

    #[test]
    fn simulation_respects_energy_budget_exactly() {
        let gov = DvfsGovernor::paper_default();
        let profiles = vec![
            ExecutionProfile {
                latency_ms: 100.0,
                power_w: 1.0
            };
            3
        ];
        // 1 J budget, 0.1 J per run -> exactly 10 runs
        let report = simulate_battery_lifetime(&gov, 1.0, &profiles, 200.0);
        assert_eq!(report.runs, 10);
        assert!(report.constraint_satisfied);
    }

    #[test]
    #[should_panic(expected = "one execution profile per governor level")]
    fn profile_count_must_match_levels() {
        let gov = DvfsGovernor::paper_default();
        let _ = simulate_battery_lifetime(
            &gov,
            10.0,
            &[ExecutionProfile {
                latency_ms: 1.0,
                power_w: 1.0,
            }],
            100.0,
        );
    }
}
