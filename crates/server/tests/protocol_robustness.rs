//! Protocol robustness: hostile or broken bytes on the wire must never
//! panic the server or lose *other* connections' responses. Every case
//! throws malformed traffic at a live server and then proves, over a
//! separate well-formed connection, that the server still serves.

use proptest::prelude::*;
use rt3_server::protocol::{
    write_frame, OP_INFER, OP_METRICS, OP_TERMINAL, TERMINAL_PROTOCOL_ERROR,
};
use rt3_server::{InferOutcome, ServeClient, Server, ServerConfig, ServerSpec};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn spawn_server() -> Server {
    Server::spawn(
        "127.0.0.1:0",
        ServerSpec::paper_default(10_000.0),
        ServerConfig {
            window_ms: 100.0,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// The liveness probe: a fresh well-formed connection must still get a
/// valid resolution (completion or explicit reject) out of the server.
fn assert_still_serving(addr: SocketAddr) {
    let mut client = ServeClient::connect_retry(addr, Duration::from_secs(5))
        .expect("server still accepts well-formed connections");
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    match client.infer(id, 1_000.0, b"probe") {
        Ok(InferOutcome::Resolved(response)) => {
            assert_eq!(response.id, id, "response routed to the right request");
        }
        other => panic!("well-formed request must resolve, got {other:?}"),
    }
}

fn raw_connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream
}

/// Reads whatever the server sends until EOF; returns the bytes. A blocked
/// read past the timeout fails the test — the server must never leave a
/// poisoned connection hanging silently forever without closing it.
fn read_to_close(stream: &mut TcpStream) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionReset
                    || e.kind() == std::io::ErrorKind::ConnectionAborted
                    || e.kind() == std::io::ErrorKind::BrokenPipe =>
            {
                break
            }
            Err(e) => panic!("server left a poisoned connection hanging: {e}"),
        }
    }
    bytes
}

/// The terminal-protocol-error frame, as raw bytes, for matching replies.
fn terminal_protocol_error_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &[OP_TERMINAL, TERMINAL_PROTOCOL_ERROR]).unwrap();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary garbage framed as a request: the server answers with a
    /// terminal protocol-error frame (or closes outright) and keeps
    /// serving everyone else.
    #[test]
    fn garbage_frames_poison_only_their_own_connection(
        body in proptest::collection::vec(0u8..=255u8, 0..256),
    ) {
        // well-formed frames must not sneak in as "garbage": skew the
        // opcode byte away from the valid ones
        let mut body = body;
        if body.first() == Some(&OP_INFER) || body.first() == Some(&OP_METRICS) {
            body[0] = 0xEE;
        }
        let server = spawn_server();
        let addr = server.local_addr();
        let mut stream = raw_connect(addr);
        write_frame(&mut stream, &body).unwrap();
        let reply = read_to_close(&mut stream);
        // empty body is Malformed too; either way the reply is the
        // terminal frame followed by a close
        prop_assert_eq!(reply, terminal_protocol_error_bytes());
        assert_still_serving(addr);
    }

    /// Oversized length prefixes (up to u32::MAX) must be refused before
    /// any allocation, not honoured or crashed on.
    #[test]
    fn oversized_length_prefix_is_refused(
        len in (1u32 << 20) + 1..=u32::MAX,
    ) {
        let server = spawn_server();
        let addr = server.local_addr();
        let mut stream = raw_connect(addr);
        stream.write_all(&len.to_le_bytes()).unwrap();
        // a few bytes of body so the server has something to read if it
        // (wrongly) tried to honour the length; the server may already
        // have closed on us, so a failed write is fine
        let _ = stream.write_all(&[0u8; 16]);
        let reply = read_to_close(&mut stream);
        // the refusal is explicit (terminal frame) unless the close's RST
        // beat it to us — either way nothing was allocated or honoured
        prop_assert!(
            reply.is_empty() || reply == terminal_protocol_error_bytes(),
            "unexpected reply to an oversized prefix: {:?}",
            reply
        );
        assert_still_serving(addr);
    }

    /// A partial frame followed by a disconnect (the classic torn client):
    /// no response owed, no panic, everyone else served.
    #[test]
    fn partial_frame_then_disconnect_is_harmless(
        declared in 8u32..1024,
        delivered_fraction in 0.0f64..1.0,
    ) {
        let server = spawn_server();
        let addr = server.local_addr();
        let delivered = ((declared as f64) * delivered_fraction) as usize;
        {
            let mut stream = raw_connect(addr);
            stream.write_all(&declared.to_le_bytes()).unwrap();
            stream.write_all(&vec![0u8; delivered]).unwrap();
            // drop: mid-frame disconnect
        }
        assert_still_serving(addr);
    }

    /// Torn writes: a valid infer frame dribbled out in arbitrary chunks
    /// with pauses must still parse and resolve — framing cannot depend on
    /// TCP segment boundaries.
    #[test]
    fn torn_writes_still_parse(
        chunk_len in 1usize..7,
    ) {
        let server = spawn_server();
        let addr = server.local_addr();
        let mut stream = raw_connect(addr);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let body = rt3_server::protocol::ClientFrame::encode_infer(id, 1_000.0, b"torn");
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        for chunk in framed.chunks(chunk_len) {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        // the dribbled frame still resolves to a valid response frame
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix).unwrap();
        let len = u32::from_le_bytes(prefix) as usize;
        let mut reply = vec![0u8; len];
        stream.read_exact(&mut reply).unwrap();
        let frame = rt3_server::protocol::ServerFrame::decode(&reply).unwrap();
        let rt3_server::protocol::ServerFrame::Infer(response) = frame else {
            panic!("expected an infer response, got {frame:?}");
        };
        prop_assert_eq!(response.id, id);
        assert_still_serving(addr);
    }
}

/// A client that disconnects after sending a request but before reading
/// the response: the server's write fails, is counted, and other
/// connections' traffic is untouched.
#[test]
fn mid_request_disconnect_never_loses_other_responses() {
    let server = spawn_server();
    let addr = server.local_addr();
    for _ in 0..8 {
        let mut stream = raw_connect(addr);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let body = rt3_server::protocol::ClientFrame::encode_infer(id, 1_000.0, b"bye");
        write_frame(&mut stream, &body).unwrap();
        drop(stream); // gone before the response is due
        assert_still_serving(addr);
    }
    // the abandoned responses are accounted, not lost: each of the 8
    // requests was admitted and then either failed its write or (rarely,
    // if the socket buffer swallowed it) completed cleanly
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.pending_requests() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.pending_requests(), 0, "no orphaned pending entries");
    let snapshot = server.metrics_snapshot();
    let counter = |name: &str| snapshot.metrics.counter(name).unwrap_or(0);
    assert!(counter("requests_admitted") >= 16, "all requests admitted");
    assert_eq!(
        counter("requests_completed"),
        counter("requests_admitted"),
        "every admitted request reached a completion attempt"
    );
}
