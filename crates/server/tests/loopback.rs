//! Loopback integration tests: a real server on an ephemeral port, real
//! sockets, and the closed-loop load generator. The headline check is
//! *reconciliation* — every request the clients sent must be accounted on
//! both sides of the wire, with the server-side telemetry counters
//! agreeing with the client-side tallies.

use rt3_server::protocol::TERMINAL_BATTERY_DEAD;
use rt3_server::{
    check_load_invariants, loadgen, InferOutcome, LoadgenConfig, ServeClient, Server, ServerConfig,
    ServerSpec, Status,
};
use std::time::{Duration, Instant};

/// A server spec with plenty of battery: nothing dies during the run.
fn healthy_spec() -> ServerSpec {
    ServerSpec::paper_default(10_000.0)
}

/// Fast governor cadence so short tests cross several window boundaries.
fn fast_config() -> ServerConfig {
    ServerConfig {
        window_ms: 50.0,
        ..ServerConfig::default()
    }
}

/// Spin until the server has no admitted-but-unresolved requests left.
fn wait_for_quiesce(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.pending_requests() > 0 {
        assert!(
            Instant::now() < deadline,
            "server still has {} pending requests after 5s",
            server.pending_requests()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn loadgen_reconciles_with_server_counters() {
    let server = Server::spawn("127.0.0.1:0", healthy_spec(), fast_config()).unwrap();
    let report = loadgen::run(
        server.local_addr(),
        &LoadgenConfig {
            connections: 16,
            duration: Duration::from_millis(800),
            deadline_budget_ms: 500.0,
            ..LoadgenConfig::default()
        },
    );
    wait_for_quiesce(&server);
    let snapshot = server.metrics_snapshot();
    let counter = |name: &str| snapshot.metrics.counter(name).unwrap_or(0);

    assert_eq!(report.connect_failures, 0, "all connections establish");
    assert_eq!(report.io_errors, 0, "no connection died mid-conversation");
    assert_eq!(report.terminal, 0, "no terminal frames on a healthy server");
    assert_eq!(report.lost(), 0, "every request accounted client-side");
    assert!(report.served() > 0, "the run served traffic");
    assert!(
        report.wall_latency_ms.count() > 0,
        "wall-clock histogram is non-empty"
    );

    // the full cross-layer invariant harness over the same data
    if let Err(violations) = check_load_invariants(&report, &snapshot) {
        panic!("load invariants violated:\n  {}", violations.join("\n  "));
    }

    // server-side counters reconcile with the client-side tallies
    assert_eq!(
        counter("requests_completed"),
        report.served(),
        "completions match across the wire"
    );
    assert_eq!(
        counter("deadline_missed"),
        report.completed_late,
        "late completions match"
    );
    assert_eq!(
        counter("requests_rejected_queue_full"),
        report.rejected_queue_full,
        "queue-full rejects match"
    );
    assert_eq!(
        counter("requests_rejected_certain_miss"),
        report.rejected_certain_miss,
        "certain-miss rejects match"
    );
    assert_eq!(
        counter("requests_admitted"),
        report.served() + report.dropped_dead + report.dropped_shutdown,
        "every admitted request resolved"
    );
    assert_eq!(counter("requests_dropped_dead"), 0);
    assert_eq!(counter("responses_failed"), 0);
    assert_eq!(counter("protocol_errors"), 0);
    assert_eq!(counter("connections_opened"), 16);
}

#[test]
fn wall_latency_tracks_cost_model_pacing() {
    // one request at a time on an idle server: the wall latency the client
    // measures should be close to the cost model's single-request service
    // time (plus tick granularity + real scheduling jitter).
    let spec = healthy_spec();
    let base_ms: f64 = spec.level_base_ms.iter().copied().fold(0.0, f64::max);
    let server = Server::spawn("127.0.0.1:0", spec, fast_config()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let mut worst_ms = 0.0f64;
    for id in 0..10u64 {
        let started = Instant::now();
        let outcome = client.infer(id, 1_000.0, b"payload").unwrap();
        let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
        let InferOutcome::Resolved(response) = outcome else {
            panic!("healthy server answered with a terminal frame");
        };
        assert!(response.status.served(), "idle server serves on time");
        assert!(
            response.infer_ms > 0.0,
            "service time is reported on the wire"
        );
        worst_ms = worst_ms.max(wall_ms);
    }
    // generous bound: base service + several ticks + switch + jitter. The
    // point is that responses are paced (not instant echo) yet bounded.
    assert!(
        worst_ms < base_ms + 500.0,
        "wall latency {worst_ms:.1}ms is unreasonably far above the \
         cost-model service time {base_ms:.1}ms"
    );
}

#[test]
fn metrics_command_serves_live_jsonl() {
    let server = Server::spawn("127.0.0.1:0", healthy_spec(), fast_config()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    for id in 0..3u64 {
        client.infer(id, 1_000.0, b"x").unwrap();
    }
    let jsonl = client.metrics().unwrap();
    assert!(
        jsonl.contains("\"requests_admitted\""),
        "snapshot carries the admission counter: {jsonl}"
    );
    assert!(
        jsonl.contains("rt3-serve"),
        "snapshot is labelled with its source: {jsonl}"
    );
    // the wire snapshot matches the in-process one
    let snapshot = server.metrics_snapshot();
    assert!(snapshot.metrics.counter("requests_admitted").unwrap_or(0) >= 3);
}

#[test]
fn battery_death_drains_gracefully() {
    // a battery sized to die after a few 50ms windows of background drain
    let spec = ServerSpec {
        battery_capacity_j: 1.0,
        ..healthy_spec()
    };
    let config = ServerConfig {
        window_ms: 50.0,
        background_w: 8.0, // 0.4 J per window: dead within ~3 windows
        ..ServerConfig::default()
    };
    let server = Server::spawn("127.0.0.1:0", spec, config).unwrap();
    // connect while alive
    let mut survivor = ServeClient::connect(server.local_addr()).unwrap();

    // keep offering load until the server reports the drain
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut saw_draining = false;
    let mut id = 0u64;
    while Instant::now() < deadline {
        match survivor.infer(id, 1_000.0, b"x") {
            Ok(InferOutcome::Resolved(response)) if response.status == Status::Draining => {
                saw_draining = true;
                break;
            }
            Ok(InferOutcome::Resolved(_)) => {}
            Ok(InferOutcome::Terminal(_)) | Err(_) => {
                panic!("existing connections stay open through the drain")
            }
        }
        id += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_draining, "requests after battery death report Draining");
    assert!(server.is_draining(), "the server handle reports the drain");
    assert_eq!(
        server.pending_requests(),
        0,
        "drain flushed every admitted request"
    );

    // new connections are refused with an explicit terminal code
    let mut refused = ServeClient::connect(server.local_addr()).unwrap();
    match refused.infer(999, 1_000.0, b"x") {
        Ok(InferOutcome::Terminal(code)) => assert_eq!(code, TERMINAL_BATTERY_DEAD),
        // the refusal may race the write: a reset is also an explicit end
        Err(rt3_server::ProtocolError::Io(_)) => {}
        other => panic!("dead server must refuse new connections, got {other:?}"),
    }

    // metrics stay available on surviving connections during the drain
    let jsonl = survivor.metrics().unwrap();
    assert!(jsonl.contains("\"requests_draining_refused\""));
    let snapshot = server.metrics_snapshot();
    assert!(
        snapshot
            .metrics
            .counter("requests_draining_refused")
            .unwrap_or(0)
            >= 1
    );
}

#[test]
fn shutdown_resolves_every_outstanding_request() {
    let mut server = Server::spawn("127.0.0.1:0", healthy_spec(), fast_config()).unwrap();
    let addr = server.local_addr();
    let load = std::thread::spawn(move || {
        loadgen::run(
            addr,
            &LoadgenConfig {
                connections: 8,
                duration: Duration::from_secs(10),
                deadline_budget_ms: 500.0,
                ..LoadgenConfig::default()
            },
        )
    });
    std::thread::sleep(Duration::from_millis(400));
    server.shutdown();
    let report = load.join().unwrap();
    assert_eq!(report.lost(), 0, "shutdown resolves every request");
    assert!(report.served() > 0, "traffic flowed before the shutdown");
    assert!(
        report.terminal + report.dropped_shutdown + report.io_errors > 0,
        "the shutdown was observed by the clients"
    );
    assert_eq!(server.pending_requests(), 0);
    // the harness degrades to one-sided bounds when clients lost their
    // sockets mid-conversation, so it must hold even across a shutdown
    if let Err(violations) = check_load_invariants(&report, &server.metrics_snapshot()) {
        panic!("load invariants violated:\n  {}", violations.join("\n  "));
    }
}

#[test]
fn subscribe_streams_obs_chunks_per_window() {
    let server = Server::spawn("127.0.0.1:0", healthy_spec(), fast_config()).unwrap();

    // some traffic so the series have non-trivial values
    let mut worker = ServeClient::connect(server.local_addr()).unwrap();
    for id in 0..3u64 {
        worker.infer(id, 1_000.0, b"x").unwrap();
    }

    let mut sub = ServeClient::connect(server.local_addr()).unwrap();
    sub.set_timeouts(Some(Duration::from_secs(5)), Some(Duration::from_secs(5)))
        .unwrap();
    let catch_up = sub.subscribe().unwrap();
    assert!(
        catch_up.contains("\"type\":\"obs\""),
        "catch-up chunk carries the accounting line: {catch_up}"
    );
    assert!(
        catch_up.contains("rt3-serve"),
        "chunks are labelled with their source: {catch_up}"
    );

    // every subsequent chunk is one governor window's delta; at 50ms
    // windows the dispatch tick produces them continuously
    let mut windows = Vec::new();
    for _ in 0..3 {
        let chunk = sub.next_obs().unwrap();
        assert!(chunk.ends_with('\n'), "chunks are newline-terminated");
        for line in chunk.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "chunk lines are JSON objects: {line}"
            );
        }
        // the window index is strictly increasing across chunks
        if let Some(pos) = chunk.find("\"t_s\":") {
            let rest = &chunk[pos + 6..];
            let end = rest.find([',', '}']).unwrap();
            windows.push(rest[..end].parse::<u64>().unwrap());
        }
    }
    assert!(
        windows.windows(2).all(|w| w[0] < w[1]),
        "window indices advance monotonically: {windows:?}"
    );

    // the infer path keeps working while a subscriber is attached
    worker.infer(99, 1_000.0, b"x").unwrap();
}
