//! Loopback retry-storm reconciliation: a deliberately tiny server (one
//! worker, a 2-slot queue, a battery that dies mid-run) under closed-loop
//! clients that retry with backoff. The headline checks are the two
//! conservation laws the chaos harness also enforces in simulation —
//! every wire attempt resolves (zero silent loss) and every job ends
//! exactly once (succeeded, abandoned or aborted) — plus server-side
//! counters agreeing with the client-side tallies across the storm.

use rt3_runtime::SchedulerConfig;
use rt3_server::{loadgen, LoadgenConfig, RetryPolicy, Server, ServerConfig, ServerSpec};
use std::time::{Duration, Instant};

#[test]
fn retry_storm_reconciles_with_zero_silent_loss() {
    // a 2-slot queue on one worker forces queue-full/certain-miss rejects
    // under 16 closed-loop connections; the battery dies mid-run
    // (~0.08 J per 50 ms window against 1 J) so the storm also crosses
    // the drain transition.
    let spec = ServerSpec {
        battery_capacity_j: 1.0,
        ..ServerSpec::paper_default(1.0)
    };
    let config = ServerConfig {
        window_ms: 50.0,
        background_w: 1.6,
        scheduler: SchedulerConfig {
            queue_capacity: 2,
            workers: 1,
            ..SchedulerConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::spawn("127.0.0.1:0", spec, config).unwrap();
    let report = loadgen::run(
        server.local_addr(),
        &LoadgenConfig {
            connections: 16,
            duration: Duration::from_millis(1_500),
            deadline_budget_ms: 500.0,
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_base: Duration::from_millis(5),
                backoff_factor: 2.0,
                jitter: Duration::from_millis(3),
                request_timeout: Some(Duration::from_secs(10)),
            },
            seed: 7,
            ..LoadgenConfig::default()
        },
    );

    // the storm actually happened: rejects forced retries, and the
    // battery death was observed as explicit drain statuses
    assert_eq!(report.connect_failures, 0, "every connection established");
    assert!(
        report.rejected_queue_full + report.rejected_certain_miss > 0,
        "the tiny queue rejected some of the storm"
    );
    assert!(report.retries > 0, "rejects were retried with backoff");
    assert!(
        report.draining + report.dropped_dead + report.terminal > 0,
        "the battery death was observed by the clients"
    );
    assert!(server.is_draining(), "the server drained mid-run");

    // conservation law 1: every wire attempt resolved explicitly
    assert_eq!(report.lost(), 0, "zero silent loss across the storm");
    // conservation law 2: every job ended exactly once
    assert_eq!(
        report.jobs,
        report.jobs_succeeded + report.jobs_abandoned + report.jobs_aborted,
        "jobs partition into succeeded + abandoned + aborted"
    );
    // attempts split into first tries and retries (no timeouts here, so
    // no attempt was re-issued on a fresh connection)
    assert_eq!(report.timeouts, 0, "a 10 s response budget never fires");
    assert_eq!(
        report.sent,
        report.jobs + report.retries,
        "attempts reconcile with jobs and retries"
    );
    assert_eq!(
        report.jobs_succeeded,
        report.served(),
        "a job succeeds exactly when an attempt was served"
    );

    // server-side counters reconcile with the client-side tallies once
    // the drain has flushed everything it admitted
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.pending_requests() > 0 {
        assert!(
            Instant::now() < deadline,
            "drain left {} requests pending",
            server.pending_requests()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let snapshot = server.metrics_snapshot();
    let counter = |name: &str| snapshot.metrics.counter(name).unwrap_or(0);
    assert_eq!(
        counter("requests_completed"),
        report.served(),
        "completions match across the wire"
    );
    assert_eq!(
        counter("requests_rejected_queue_full"),
        report.rejected_queue_full,
        "queue-full rejects match"
    );
    assert_eq!(
        counter("requests_rejected_certain_miss"),
        report.rejected_certain_miss,
        "certain-miss rejects match"
    );
}
