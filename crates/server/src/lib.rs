//! # rt3-server (rt3-serve)
//!
//! The real-socket serving front-end of the RT3 reproduction: a
//! dependency-free `std::net::TcpListener` server speaking a small
//! length-prefixed binary protocol, feeding the runtime's
//! [`rt3_runtime::DeadlineScheduler`] through the same admission path the
//! simulated device uses. Backpressure is mapped to explicit
//! [`protocol::Status`] response codes (clients see queue-full /
//! certain-miss rejects, never a silent TCP stall), battery death drains
//! gracefully (in-flight responses flushed, queued requests dropped with a
//! code, new connections refused with a terminal frame), and a live
//! metrics command serializes the [`rt3_telemetry::TelemetrySnapshot`]
//! JSONL on demand.
//!
//! * [`protocol`] — the wire format: frames, opcodes, status codes.
//! * [`Server`] — the thread-per-connection server around one
//!   mutex-guarded core (scheduler + governor + battery).
//! * [`ServeClient`] — a blocking client for the protocol.
//! * [`loadgen`] — the closed-loop multi-connection load generator:
//!   wall-clock latency histograms plus a timeout-retry-abandon
//!   [`RetryPolicy`] per connection.
//! * [`fault`] — seeded adversarial clients (torn writes, mid-request
//!   disconnects, hung peers) for probing the server boundary.
//!
//! See DESIGN.md §10 for the frame layout and drain semantics.
//!
//! # Example
//!
//! ```
//! use rt3_server::{loadgen, LoadgenConfig, Server, ServerConfig, ServerSpec};
//! use std::time::Duration;
//!
//! let server = Server::spawn(
//!     "127.0.0.1:0",
//!     ServerSpec::paper_default(60.0),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//! let report = loadgen::run(
//!     server.local_addr(),
//!     &LoadgenConfig {
//!         connections: 4,
//!         duration: Duration::from_millis(300),
//!         ..LoadgenConfig::default()
//!     },
//! );
//! assert_eq!(report.lost(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod fault;
pub mod loadgen;
pub mod protocol;
mod rng;
mod server;

pub use client::{InferOutcome, ServeClient};
pub use fault::{Fault, FaultPlan, FaultReport};
pub use loadgen::{check_load_invariants, LoadReport, LoadgenConfig, RetryPolicy};
pub use protocol::{InferResponse, ProtocolError, Status};
pub use server::{Server, ServerConfig, ServerSpec};
