//! The serving front-end: a thread-per-connection TCP acceptor feeding the
//! runtime's [`DeadlineScheduler`] through the same admission path the
//! simulated device uses, with wall-clock time as the scheduler's time
//! axis.
//!
//! Three kinds of thread cooperate around one mutex-guarded [`Core`]:
//!
//! * **connection threads** (one per accepted socket) parse frames,
//!   run admission under the lock, and write rejects synchronously;
//! * the **dispatch thread** ticks every few milliseconds: at window
//!   boundaries it runs the battery governor (level switches, battery
//!   drain, death detection), then dispatches due micro-batches and
//!   flushes each completion's response once the wall clock reaches its
//!   simulated finish time — so the latency a client measures on the wire
//!   *is* the cost model's queue + service prediction, plus real network
//!   and scheduling jitter;
//! * the **acceptor** hands sockets to connection threads, or refuses
//!   them with a terminal frame once the battery has died.
//!
//! Every admitted request resolves to exactly one response frame:
//! completion, explicit reject, or an explicit drop code when the battery
//! dies or the server shuts down. Backpressure is never a silent stall.

use crate::protocol::{
    read_frame, write_frame, ClientFrame, InferResponse, ProtocolError, ServerFrame, Status,
    TERMINAL_BATTERY_DEAD, TERMINAL_IDLE_TIMEOUT, TERMINAL_PROTOCOL_ERROR, TERMINAL_SHUTDOWN,
};
use rt3_hardware::{Battery, DvfsGovernor, PowerModel};
use rt3_runtime::{
    Analytic, CostConfig, CostModel, DeadlineScheduler, HysteresisConfig, LatencyModel,
    RejectReason, Request, RuntimeController, SchedulerConfig, Telemetry,
};
use rt3_telemetry::{
    CounterId, GaugeId, HistogramId, MetricRegistry, MetricShard, ObsPlane, ResidualStats,
    TelemetryLevel, TelemetrySnapshot,
};
use std::cmp::Reverse;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the server serves: the cost model, the governor and the battery —
/// the same physical story the simulated engine plays, minus the model
/// bank (the server paces responses by the cost model; it does not run
/// tensor math on the request path).
pub struct ServerSpec {
    /// Prediction surface for admission and service times.
    pub cost: Arc<dyn CostModel>,
    /// Battery governor (levels + thresholds).
    pub governor: DvfsGovernor,
    /// Controller hysteresis.
    pub hysteresis: HysteresisConfig,
    /// Cached single-request latency per governor level position (what the
    /// engine caches as `active_base_latency_ms` after each switch).
    pub level_base_ms: Vec<f64>,
    /// Wall-time cost of a pattern-set switch, charged to the workers.
    pub switch_time_ms: f64,
    /// Battery capacity at startup, joules.
    pub battery_capacity_j: f64,
    /// Cluster power model for energy accounting.
    pub power: PowerModel,
}

impl ServerSpec {
    /// The paper-shaped default: Cortex-A7 predictor on the paper's
    /// Transformer workload, fixed 70% sparsity across the governor's
    /// levels, analytic batch amortisation.
    pub fn paper_default(battery_capacity_j: f64) -> Self {
        let governor = DvfsGovernor::paper_default();
        let cost: Arc<dyn CostModel> = Arc::new(Analytic::new(
            LatencyModel {
                predictor: rt3_hardware::PerformancePredictor::cortex_a7(),
                workload_config: rt3_transformer::TransformerConfig::paper_transformer(512),
                seq_len: 24,
            },
            CostConfig::default(),
        ));
        let level_base_ms = governor
            .levels()
            .iter()
            .map(|level| cost.base_latency_ms(0.7, level))
            .collect();
        Self {
            cost,
            governor,
            hysteresis: HysteresisConfig::default(),
            level_base_ms,
            switch_time_ms: 8.0,
            battery_capacity_j,
            power: PowerModel::cortex_a7(),
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.level_base_ms.len() != self.governor.levels().len() {
            return Err("one base latency per governor level is required".into());
        }
        if self
            .level_base_ms
            .iter()
            .any(|ms| !ms.is_finite() || *ms <= 0.0)
        {
            return Err("level base latencies must be positive and finite".into());
        }
        if !(self.switch_time_ms >= 0.0 && self.switch_time_ms.is_finite()) {
            return Err("switch_time_ms must be non-negative and finite".into());
        }
        if !(self.battery_capacity_j > 0.0 && self.battery_capacity_j.is_finite()) {
            return Err("battery_capacity_j must be positive and finite".into());
        }
        self.hysteresis.validate()
    }
}

/// Serving parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Scheduler shape (queue bound, micro-batch cap, worker count).
    pub scheduler: SchedulerConfig,
    /// Governor cadence: one controller decision per window.
    pub window_ms: f64,
    /// Dispatch-thread tick, the response-pacing granularity.
    pub tick_ms: u64,
    /// Always-on background drain charged per window.
    pub background_w: f64,
    /// Largest accepted frame (bounds per-connection memory).
    pub max_frame_len: u32,
    /// Per-connection read timeout (`SO_RCVTIMEO`, set once at accept). A
    /// peer that connects and then hangs — idle or mid-frame — is reaped
    /// with a [`TERMINAL_IDLE_TIMEOUT`] frame when it expires, instead of
    /// pinning its connection thread forever. `None` waits indefinitely.
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout (`SO_SNDTIMEO`, set once at accept):
    /// bounds how long a response write may block on a peer that stopped
    /// reading. A timed-out write counts as a failed response. `None`
    /// blocks indefinitely.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            scheduler: SchedulerConfig::default(),
            window_ms: 1_000.0,
            tick_ms: 2,
            background_w: 0.1,
            max_frame_len: 1 << 20,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<(), String> {
        self.scheduler.validate()?;
        if !(self.window_ms > 0.0 && self.window_ms.is_finite()) {
            return Err("window_ms must be positive and finite".into());
        }
        if self.tick_ms == 0 {
            return Err("tick_ms must be positive".into());
        }
        if !(self.background_w >= 0.0 && self.background_w.is_finite()) {
            return Err("background_w must be non-negative and finite".into());
        }
        if self.max_frame_len < 64 {
            return Err("max_frame_len must hold at least a header frame".into());
        }
        for timeout in [self.read_timeout, self.write_timeout]
            .into_iter()
            .flatten()
        {
            if timeout.is_zero() {
                return Err("socket timeouts must be positive (use None to wait forever)".into());
            }
        }
        Ok(())
    }
}

/// A connection's write half, shared between its reader thread (rejects,
/// metrics) and the dispatch thread (completions). Every frame goes out in
/// one `write_all` under the mutex, so concurrent writers never tear
/// frames.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Writes one frame; returns whether the write succeeded. Failures are
    /// counted by the caller, never propagated as panics — a client that
    /// disconnected before its response must not take the server down.
    fn send(&self, body: &[u8]) -> bool {
        let mut stream = self.stream.lock().expect("writer lock");
        write_frame(&mut *stream, body)
            .and_then(|()| stream.flush())
            .is_ok()
    }

    fn shutdown(&self) {
        let stream = self.stream.lock().expect("writer lock");
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// An admitted request waiting for dispatch or completion.
struct PendingEntry {
    client_id: u64,
    conn: Arc<ConnWriter>,
}

/// A dispatched request whose response is due at `finish_ms`.
struct InFlight {
    finish_ms: f64,
    internal_id: u64,
    response: InferResponse,
    latency_ms: f64,
    queue_ms: f64,
    infer_ms: f64,
    met_deadline: bool,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.finish_ms == other.finish_ms && self.internal_id == other.internal_id
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.finish_ms
            .total_cmp(&other.finish_ms)
            .then(self.internal_id.cmp(&other.internal_id))
    }
}

/// Metric handles, registered once at startup. Names follow the runtime's
/// device-telemetry schema (DESIGN.md §9) so dashboards can consume both.
struct MetricIds {
    admitted: CounterId,
    rejected_queue_full: CounterId,
    rejected_certain_miss: CounterId,
    completed: CounterId,
    deadline_missed: CounterId,
    dropped_dead: CounterId,
    draining_refused: CounterId,
    dropped_shutdown: CounterId,
    protocol_errors: CounterId,
    connections_opened: CounterId,
    connections_closed: CounterId,
    connections_refused_dead: CounterId,
    connections_timed_out: CounterId,
    responses_failed: CounterId,
    switches: CounterId,
    latency_ms: HistogramId,
    queue_wait_ms: HistogramId,
    infer_ms: HistogramId,
    batch_size: HistogramId,
    switch_time_ms: HistogramId,
    active_level: GaugeId,
    state_of_charge: GaugeId,
    queue_depth: GaugeId,
}

impl MetricIds {
    fn register(registry: &mut MetricRegistry) -> Self {
        Self {
            admitted: registry.counter("requests_admitted"),
            rejected_queue_full: registry.counter("requests_rejected_queue_full"),
            rejected_certain_miss: registry.counter("requests_rejected_certain_miss"),
            completed: registry.counter("requests_completed"),
            deadline_missed: registry.counter("deadline_missed"),
            dropped_dead: registry.counter("requests_dropped_dead"),
            draining_refused: registry.counter("requests_draining_refused"),
            dropped_shutdown: registry.counter("requests_dropped_shutdown"),
            protocol_errors: registry.counter("protocol_errors"),
            connections_opened: registry.counter("connections_opened"),
            connections_closed: registry.counter("connections_closed"),
            connections_refused_dead: registry.counter("connections_refused_dead"),
            connections_timed_out: registry.counter("connections_timed_out"),
            responses_failed: registry.counter("responses_failed"),
            switches: registry.counter("switches"),
            latency_ms: registry.histogram("latency_ms"),
            queue_wait_ms: registry.histogram("queue_wait_ms"),
            infer_ms: registry.histogram("infer_ms"),
            batch_size: registry.histogram("batch_size"),
            switch_time_ms: registry.histogram("switch_time_ms"),
            active_level: registry.gauge("active_level"),
            state_of_charge: registry.gauge("state_of_charge"),
            queue_depth: registry.gauge("queue_depth"),
        }
    }
}

/// Everything the threads share under one lock.
struct Core {
    scheduler: DeadlineScheduler,
    controller: RuntimeController,
    battery: Battery,
    active_level: usize,
    active_base_ms: f64,
    next_window_ms: f64,
    next_internal_id: u64,
    pending: HashMap<u64, PendingEntry>,
    inflight: std::collections::BinaryHeap<Reverse<InFlight>>,
    registry: MetricRegistry,
    shard: MetricShard,
    ids: MetricIds,
    connections: Vec<Weak<ConnWriter>>,
    /// Live series + alert rules, scraped once per governor window by the
    /// dispatch tick (or by whichever admission catches the boundary
    /// first).
    obs: ObsPlane,
    /// Index of the next scrape window (the `t_s` axis of the series).
    window_index: u32,
    /// Connections that sent `REQ_SUBSCRIBE`; each gets one obs chunk per
    /// window. A subscriber whose send fails is dropped from the list —
    /// the slow-consumer backpressure rule (DESIGN.md §12).
    subscribers: Vec<Weak<ConnWriter>>,
}

struct Shared {
    core: Mutex<Core>,
    running: AtomicBool,
    dead: AtomicBool,
    start: Instant,
    config: ServerConfig,
    spec: ServerSpec,
}

impl Shared {
    fn now_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1_000.0
    }

    /// The admission/service closure for the active level — the same
    /// cost-model path `DeviceSim::try_admit` and the engine's dispatch
    /// drive.
    fn service_closure(&self, core: &Core) -> impl Fn(usize) -> f64 {
        let cost = Arc::clone(&self.spec.cost);
        let level_pos = core.active_level;
        let base = core.active_base_ms;
        move |batch| cost.service_from_base_ms(level_pos, base, batch)
    }

    /// Runs governor windows up to `now_ms`: level decisions, switch costs,
    /// background drain, battery-death detection — then scrapes each
    /// boundary into the obs plane and pushes the window's series/alert
    /// chunk to every subscriber.
    fn advance_windows(&self, core: &mut Core, now_ms: f64) {
        while core.next_window_ms <= now_ms {
            let boundary = core.next_window_ms;
            core.next_window_ms += self.config.window_ms;
            if !self.dead.load(Ordering::Acquire) {
                self.window_step(core, boundary);
            }
            // dead windows still scrape: subscribers keep seeing the
            // post-mortem gauges instead of a silently frozen stream
            self.scrape_window(core, boundary);
        }
    }

    /// The governor work of one live window boundary.
    fn window_step(&self, core: &mut Core, boundary: f64) {
        let window_s = self.config.window_ms / 1_000.0;
        let background_j = self.config.background_w * window_s;
        if !core.battery.drain(background_j) {
            let remaining = core.battery.remaining_j();
            core.battery.drain(remaining);
        }
        if core.battery.is_empty() {
            self.enter_drain(core);
            return;
        }
        let decision = core.controller.decide(Telemetry {
            now_ms: boundary,
            state_of_charge: core.battery.state_of_charge(),
            thermal_cap: None,
        });
        if decision.level_pos != core.active_level {
            core.active_level = decision.level_pos;
            core.active_base_ms = self.spec.level_base_ms[decision.level_pos];
            let switch_ms = self.spec.switch_time_ms;
            core.scheduler.block_workers_until(boundary + switch_ms);
            let level = self.spec.governor.levels()[decision.level_pos];
            let energy = self.spec.power.power_w(&level) * switch_ms / 1_000.0;
            if !core.battery.drain(energy) {
                let remaining = core.battery.remaining_j();
                core.battery.drain(remaining);
            }
            let ids = &core.ids;
            core.shard.add(ids.switches, 1);
            core.shard.record(ids.switch_time_ms, switch_ms);
        }
        let ids = &core.ids;
        core.shard.set(ids.active_level, core.active_level as f64);
        core.shard
            .set(ids.state_of_charge, core.battery.state_of_charge());
    }

    /// Scrapes one window boundary into the obs plane, evaluates the alert
    /// rules, and pushes the window's JSONL delta to every subscriber.
    /// A subscriber whose socket is gone — or whose send fails or times
    /// out (the per-connection write timeout bounds how long a slow
    /// consumer can hold the lock) — is dropped from the push list.
    fn scrape_window(&self, core: &mut Core, boundary: f64) {
        let t_s = core.window_index;
        core.window_index += 1;
        let snapshot = core.registry.snapshot(&core.shard);
        let transitions = core.obs.observe_window(t_s, boundary, snapshot);
        if core.subscribers.is_empty() {
            return;
        }
        let chunk = core
            .obs
            .window_jsonl(t_s, &transitions, &[("source", "rt3-serve")]);
        let body = ServerFrame::encode_obs(&chunk);
        core.subscribers.retain(|weak| match weak.upgrade() {
            Some(conn) => conn.send(&body),
            None => false,
        });
    }

    /// Battery death: drop queued requests with an explicit code, flush
    /// every in-flight response immediately, and flip the acceptor into
    /// refuse mode. Connections stay open for draining responses and
    /// metrics queries.
    fn enter_drain(&self, core: &mut Core) {
        self.dead.store(true, Ordering::Release);
        let dropped = core.scheduler.drain_queue();
        let level_pos = core.active_level as u32;
        let counter = core.ids.dropped_dead;
        for request in dropped {
            self.resolve(
                core,
                request.id,
                InferResponse {
                    id: 0, // patched from the pending entry
                    status: Status::DroppedDead,
                    level_pos,
                    queue_ms: 0.0,
                    infer_ms: 0.0,
                },
                counter,
            );
        }
        let due: Vec<Reverse<InFlight>> = core.inflight.drain().collect();
        for Reverse(flight) in due {
            self.flush_completion(core, flight);
        }
        let ids = &core.ids;
        core.shard.set(ids.queue_depth, 0.0);
        core.shard.set(ids.state_of_charge, 0.0);
    }

    /// Writes a non-completion resolution (reject/drop) for a pending
    /// request and counts it.
    fn resolve(
        &self,
        core: &mut Core,
        internal_id: u64,
        mut response: InferResponse,
        counter: CounterId,
    ) {
        if let Some(entry) = core.pending.remove(&internal_id) {
            response.id = entry.client_id;
            core.shard.add(counter, 1);
            if !entry.conn.send(&response.encode()) {
                let ids = &core.ids;
                core.shard.add(ids.responses_failed, 1);
            }
        }
    }

    /// Writes a completion response and records its telemetry.
    fn flush_completion(&self, core: &mut Core, flight: InFlight) {
        let Some(entry) = core.pending.remove(&flight.internal_id) else {
            return;
        };
        let mut response = flight.response;
        response.id = entry.client_id;
        let ids = &core.ids;
        core.shard.add(ids.completed, 1);
        if !flight.met_deadline {
            core.shard.add(ids.deadline_missed, 1);
        }
        core.shard.record(ids.latency_ms, flight.latency_ms);
        core.shard.record(ids.queue_wait_ms, flight.queue_ms);
        core.shard.record(ids.infer_ms, flight.infer_ms);
        if !entry.conn.send(&response.encode()) {
            core.shard.add(ids.responses_failed, 1);
        }
    }

    /// One dispatch tick: advance windows, dispatch due batches, flush
    /// responses whose simulated finish time has passed.
    fn tick(&self, now_ms: f64) {
        let mut core = self.core.lock().expect("core lock");
        let core = &mut *core;
        self.advance_windows(core, now_ms);
        if !self.dead.load(Ordering::Acquire) {
            let service = self.service_closure(core);
            let level_pos = core.active_level;
            let completions = core.scheduler.dispatch(now_ms, level_pos, &service);
            if !completions.is_empty() {
                let level = self.spec.governor.levels()[level_pos];
                let core_power_w =
                    self.spec.power.power_w(&level) / self.config.scheduler.workers as f64;
                let mut i = 0;
                while i < completions.len() {
                    let batch = completions[i].batch;
                    core.shard.record(core.ids.batch_size, batch as f64);
                    i += batch;
                }
                for completion in completions {
                    let service_share =
                        (completion.finish_ms - completion.start_ms) / completion.batch as f64;
                    let energy = core_power_w * service_share / 1_000.0;
                    if !core.battery.drain(energy) {
                        let remaining = core.battery.remaining_j();
                        core.battery.drain(remaining);
                    }
                    core.inflight.push(Reverse(InFlight {
                        finish_ms: completion.finish_ms,
                        internal_id: completion.id,
                        response: InferResponse {
                            id: 0, // patched at flush from the pending entry
                            status: if completion.met_deadline {
                                Status::Completed
                            } else {
                                Status::CompletedLate
                            },
                            level_pos: completion.level_pos as u32,
                            queue_ms: completion.start_ms - completion.arrival_ms,
                            infer_ms: completion.finish_ms - completion.start_ms,
                        },
                        latency_ms: completion.latency_ms(),
                        queue_ms: completion.start_ms - completion.arrival_ms,
                        infer_ms: completion.finish_ms - completion.start_ms,
                        met_deadline: completion.met_deadline,
                    }));
                }
                core.shard
                    .set(core.ids.queue_depth, core.scheduler.queue_len() as f64);
            }
        }
        while let Some(Reverse(head)) = core.inflight.peek() {
            if head.finish_ms > now_ms {
                break;
            }
            let Reverse(flight) = core.inflight.pop().expect("peeked");
            self.flush_completion(core, flight);
        }
    }

    /// A detached snapshot of the live counters, in the same shape the
    /// simulated runs attach to their reports.
    fn snapshot(&self) -> TelemetrySnapshot {
        let core = self.core.lock().expect("core lock");
        TelemetrySnapshot {
            level: TelemetryLevel::Counters,
            metrics: core.registry.snapshot(&core.shard),
            trace: Vec::new(),
            trace_overwritten: 0,
            decisions: Vec::new(),
            decisions_overwritten: 0,
            residuals: ResidualStats::default(),
            obs: Some(core.obs.snapshot()),
        }
    }
}

/// A running serving front-end. Dropping the handle shuts it down and
/// joins its threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and dispatch threads.
    ///
    /// # Errors
    ///
    /// Returns the bind/configuration error as a string.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        spec: ServerSpec,
        config: ServerConfig,
    ) -> Result<Self, String> {
        spec.validate()?;
        config.validate()?;
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind failed: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr failed: {e}"))?;

        let mut registry = MetricRegistry::new();
        let ids = MetricIds::register(&mut registry);
        let shard = registry.shard();
        let mut controller = RuntimeController::new(spec.governor.clone(), spec.hysteresis);
        let battery = Battery::new(spec.battery_capacity_j);
        // the boot decision activates the initial level (a load, not a
        // counted switch — same convention as the engine)
        let boot = controller.decide(Telemetry {
            now_ms: 0.0,
            state_of_charge: battery.state_of_charge(),
            thermal_cap: None,
        });
        let core = Core {
            scheduler: DeadlineScheduler::new(config.scheduler),
            controller,
            battery,
            active_level: boot.level_pos,
            active_base_ms: spec.level_base_ms[boot.level_pos],
            next_window_ms: config.window_ms,
            next_internal_id: 0,
            pending: HashMap::new(),
            inflight: std::collections::BinaryHeap::new(),
            registry,
            shard,
            ids,
            connections: Vec::new(),
            obs: ObsPlane::standard(config.window_ms, 1_024),
            window_index: 0,
            subscribers: Vec::new(),
        };
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            running: AtomicBool::new(true),
            dead: AtomicBool::new(false),
            start: Instant::now(),
            config,
            spec,
        });

        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rt3-serve-dispatch".into())
                .spawn(move || {
                    while shared.running.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(shared.config.tick_ms));
                        shared.tick(shared.now_ms());
                    }
                })
                .expect("spawn dispatch thread")
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rt3-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor thread")
        };

        Ok(Self {
            addr: local,
            shared,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the battery has died and the server is draining.
    pub fn is_draining(&self) -> bool {
        self.shared.dead.load(Ordering::Acquire)
    }

    /// A detached snapshot of the server's live counters — the same data
    /// the metrics command serves over the wire.
    pub fn metrics_snapshot(&self) -> TelemetrySnapshot {
        self.shared.snapshot()
    }

    /// Number of admitted requests whose responses have not been written
    /// yet (queued or in flight).
    pub fn pending_requests(&self) -> usize {
        self.shared.core.lock().expect("core lock").pending.len()
    }

    /// Graceful shutdown: queued and in-flight requests resolve with
    /// explicit codes, every connection is closed, threads are joined.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if !self.shared.running.swap(false, Ordering::AcqRel) {
            return;
        }
        {
            let mut core = self.shared.core.lock().expect("core lock");
            let core = &mut *core;
            let dropped = core.scheduler.drain_queue();
            let level_pos = core.active_level as u32;
            let counter = core.ids.dropped_shutdown;
            for request in dropped {
                self.shared.resolve(
                    core,
                    request.id,
                    InferResponse {
                        id: 0,
                        status: Status::DroppedShutdown,
                        level_pos,
                        queue_ms: 0.0,
                        infer_ms: 0.0,
                    },
                    counter,
                );
            }
            let due: Vec<Reverse<InFlight>> = core.inflight.drain().collect();
            for Reverse(flight) in due {
                self.shared.flush_completion(core, flight);
            }
            for conn in core.connections.drain(..) {
                if let Some(conn) = conn.upgrade() {
                    conn.send(&ServerFrame::encode_terminal(TERMINAL_SHUTDOWN));
                    conn.shutdown();
                }
            }
        }
        // unblock the acceptor's blocking accept()
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let accepted = listener.accept();
        if !shared.running.load(Ordering::Acquire) {
            return;
        }
        let Ok((stream, _peer)) = accepted else {
            continue;
        };
        if shared.dead.load(Ordering::Acquire) {
            // battery died: refuse with a terminal code instead of a
            // silent reset, then close
            let mut stream = stream;
            let _ = write_frame(
                &mut stream,
                &ServerFrame::encode_terminal(TERMINAL_BATTERY_DEAD),
            );
            let mut core = shared.core.lock().expect("core lock");
            let id = core.ids.connections_refused_dead;
            core.shard.add(id, 1);
            continue;
        }
        let shared = Arc::clone(shared);
        // small stacks keep thousands of connection threads affordable
        let spawned = std::thread::Builder::new()
            .name("rt3-serve-conn".into())
            .stack_size(128 * 1024)
            .spawn(move || serve_connection(stream, &shared));
        if spawned.is_err() {
            // thread exhaustion: the kernel closes the socket; clients see
            // a reset rather than a hang
            continue;
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // socket deadlines are set once here and shared by the try_clone'd
    // read half — SO_RCVTIMEO/SO_SNDTIMEO are per-socket, not per-handle
    if stream.set_read_timeout(shared.config.read_timeout).is_err()
        || stream
            .set_write_timeout(shared.config.write_timeout)
            .is_err()
    {
        return;
    }
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(stream),
    });
    {
        let mut core = shared.core.lock().expect("core lock");
        let id = core.ids.connections_opened;
        core.shard.add(id, 1);
        core.connections.push(Arc::downgrade(&writer));
    }
    let mut reader = std::io::BufReader::new(reader);
    loop {
        let frame = match read_frame(&mut reader, shared.config.max_frame_len) {
            Ok(Some(body)) => body,
            Ok(None) => break,
            Err(error) if error.is_timeout() => {
                // a hung peer: reap the connection with an explicit
                // terminal status so the timeout is never a silent reset
                {
                    let mut core = shared.core.lock().expect("core lock");
                    let id = core.ids.connections_timed_out;
                    core.shard.add(id, 1);
                }
                writer.send(&ServerFrame::encode_terminal(TERMINAL_IDLE_TIMEOUT));
                writer.shutdown();
                break;
            }
            Err(error) => {
                protocol_error(shared, &writer, &error);
                break;
            }
        };
        match ClientFrame::decode(&frame) {
            Ok(ClientFrame::Infer {
                id,
                deadline_budget_ms,
                payload_len: _,
            }) => handle_infer(shared, &writer, id, deadline_budget_ms),
            Ok(ClientFrame::Metrics) => {
                let jsonl = shared.snapshot().to_jsonl(&[("source", "rt3-serve")]);
                if !writer.send(&ServerFrame::encode_metrics(&jsonl)) {
                    break;
                }
            }
            Ok(ClientFrame::Subscribe) => {
                // a subscriber becomes a dedicated push channel: it sends
                // nothing further, so the idle-reaper read timeout must not
                // apply (SO_RCVTIMEO is per-socket and shared with our
                // cloned read half)
                {
                    let stream = writer.stream.lock().expect("writer lock");
                    let _ = stream.set_read_timeout(None);
                }
                // register + catch-up atomically under the core lock, so no
                // window chunk can be pushed before the catch-up (same
                // core-then-stream lock order as the window push itself)
                let sent = {
                    let mut core = shared.core.lock().expect("core lock");
                    core.subscribers.push(Arc::downgrade(&writer));
                    let mut catch_up = core
                        .obs
                        .snapshot()
                        .to_jsonl_lines(&[("source", "rt3-serve")])
                        .join("\n");
                    catch_up.push('\n');
                    writer.send(&ServerFrame::encode_obs(&catch_up))
                };
                if !sent {
                    break;
                }
            }
            Err(error) => {
                protocol_error(shared, &writer, &error);
                break;
            }
        }
    }
    let mut core = shared.core.lock().expect("core lock");
    let id = core.ids.connections_closed;
    core.shard.add(id, 1);
}

/// A malformed or oversized frame poisons only its own connection: count
/// it, tell the peer, close. Pending responses for *other* connections are
/// untouched; pending responses for this connection will fail their write
/// and be counted as `responses_failed`.
fn protocol_error(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, error: &ProtocolError) {
    let counted = !matches!(error, ProtocolError::Io(_));
    if counted {
        let mut core = shared.core.lock().expect("core lock");
        let id = core.ids.protocol_errors;
        core.shard.add(id, 1);
        writer.send(&ServerFrame::encode_terminal(TERMINAL_PROTOCOL_ERROR));
    }
    writer.shutdown();
}

fn handle_infer(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, client_id: u64, budget_ms: f64) {
    let now_ms = shared.now_ms();
    let mut core = shared.core.lock().expect("core lock");
    let core = &mut *core;
    // catch up on window boundaries the dispatch thread hasn't ticked yet,
    // so admission always sees the current level and battery state
    shared.advance_windows(core, now_ms);
    if shared.dead.load(Ordering::Acquire) {
        let response = InferResponse {
            id: client_id,
            status: Status::Draining,
            level_pos: core.active_level as u32,
            queue_ms: 0.0,
            infer_ms: 0.0,
        };
        core.shard.add(core.ids.draining_refused, 1);
        if !writer.send(&response.encode()) {
            core.shard.add(core.ids.responses_failed, 1);
        }
        return;
    }
    let internal_id = core.next_internal_id;
    core.next_internal_id += 1;
    let request = Request {
        id: internal_id,
        arrival_ms: now_ms,
        deadline_ms: now_ms + budget_ms,
    };
    let service = shared.service_closure(core);
    let result = core.scheduler.submit(request, service);
    match result {
        Ok(_) => {
            core.pending.insert(
                internal_id,
                PendingEntry {
                    client_id,
                    conn: Arc::clone(writer),
                },
            );
            let ids = &core.ids;
            core.shard.add(ids.admitted, 1);
            core.shard
                .set(ids.queue_depth, core.scheduler.queue_len() as f64);
        }
        Err(reason) => {
            let (status, counter) = match reason {
                RejectReason::QueueFull => {
                    (Status::RejectedQueueFull, core.ids.rejected_queue_full)
                }
                RejectReason::CertainMiss => {
                    (Status::RejectedCertainMiss, core.ids.rejected_certain_miss)
                }
            };
            core.shard.add(counter, 1);
            let response = InferResponse {
                id: client_id,
                status,
                level_pos: core.active_level as u32,
                queue_ms: 0.0,
                infer_ms: 0.0,
            };
            if !writer.send(&response.encode()) {
                core.shard.add(core.ids.responses_failed, 1);
            }
        }
    }
}
