//! A small blocking client for the rt3-serve protocol, used by the load
//! generator, the integration tests and anything else that wants to talk
//! to the server without hand-rolling frames.

use crate::protocol::{
    read_frame, write_frame, ClientFrame, InferResponse, ProtocolError, ServerFrame,
};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// What one blocking infer call resolved to.
#[derive(Debug, Clone, PartialEq)]
pub enum InferOutcome {
    /// The request resolved with a status (completion, reject or drop).
    Resolved(InferResponse),
    /// The server closed the conversation with a terminal code (battery
    /// dead, shutdown, protocol error) instead of answering.
    Terminal(u8),
}

/// A blocking connection to an rt3-serve server.
pub struct ServeClient {
    stream: TcpStream,
    max_frame_len: u32,
}

impl ServeClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            max_frame_len: 1 << 20,
        })
    }

    /// Sets the socket's read and write deadlines (`None` waits forever).
    /// A blocking [`ServeClient::infer`] whose response does not arrive in
    /// time then fails with a timeout error
    /// ([`ProtocolError::is_timeout`]) instead of hanging — what the load
    /// generator's retry policy keys on.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> io::Result<()> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)
    }

    /// Connects to `addr`, retrying until `timeout` elapses — servers
    /// started in another process need a moment to bind.
    ///
    /// # Errors
    ///
    /// The last connect error once the timeout is exhausted.
    pub fn connect_retry(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Sends one inference request and blocks for its resolution. With one
    /// outstanding request per connection (the closed-loop discipline) the
    /// next frame on the stream is always this request's response.
    ///
    /// # Errors
    ///
    /// Protocol or socket errors, including the server disconnecting
    /// without a response.
    pub fn infer(
        &mut self,
        id: u64,
        deadline_budget_ms: f64,
        payload: &[u8],
    ) -> Result<InferOutcome, ProtocolError> {
        let body = ClientFrame::encode_infer(id, deadline_budget_ms, payload);
        write_frame(&mut self.stream, &body)?;
        match self.read_server_frame()? {
            ServerFrame::Infer(response) => Ok(InferOutcome::Resolved(response)),
            ServerFrame::Terminal(code) => Ok(InferOutcome::Terminal(code)),
            ServerFrame::Metrics(_) | ServerFrame::Obs(_) => Err(ProtocolError::Malformed(
                "non-infer response to an infer request",
            )),
        }
    }

    /// Requests the live telemetry snapshot and blocks for the JSONL text.
    ///
    /// # Errors
    ///
    /// Protocol or socket errors; a terminal frame is reported as a
    /// malformed conversation.
    pub fn metrics(&mut self) -> Result<String, ProtocolError> {
        write_frame(&mut self.stream, &ClientFrame::encode_metrics())?;
        match self.read_server_frame()? {
            ServerFrame::Metrics(jsonl) => Ok(jsonl),
            ServerFrame::Infer(_) | ServerFrame::Terminal(_) | ServerFrame::Obs(_) => Err(
                ProtocolError::Malformed("unexpected response to a metrics request"),
            ),
        }
    }

    /// Turns this connection into a streaming subscriber: sends
    /// `REQ_SUBSCRIBE` and blocks for the catch-up chunk (the server's full
    /// retained obs snapshot as JSONL). Subsequent chunks — one per governor
    /// window — arrive via [`ServeClient::next_obs`]. A subscribed
    /// connection is a dedicated push channel; do not interleave infer or
    /// metrics calls on it.
    ///
    /// # Errors
    ///
    /// Protocol or socket errors; a terminal frame is reported as a
    /// malformed conversation.
    pub fn subscribe(&mut self) -> Result<String, ProtocolError> {
        write_frame(&mut self.stream, &ClientFrame::encode_subscribe())?;
        self.next_obs()
    }

    /// Blocks for the next pushed obs chunk on a subscribed connection.
    /// Honors the read timeout set via [`ServeClient::set_timeouts`].
    ///
    /// # Errors
    ///
    /// Protocol or socket errors; a terminal or non-obs frame is reported
    /// as a malformed conversation.
    pub fn next_obs(&mut self) -> Result<String, ProtocolError> {
        match self.read_server_frame()? {
            ServerFrame::Obs(chunk) => Ok(chunk),
            ServerFrame::Infer(_) | ServerFrame::Terminal(_) | ServerFrame::Metrics(_) => Err(
                ProtocolError::Malformed("unexpected frame on a subscribed connection"),
            ),
        }
    }

    fn read_server_frame(&mut self) -> Result<ServerFrame, ProtocolError> {
        let body = read_frame(&mut self.stream, self.max_frame_len)?.ok_or_else(|| {
            ProtocolError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without a response",
            ))
        })?;
        ServerFrame::decode(&body)
    }
}
