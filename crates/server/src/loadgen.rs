//! A closed-loop, multi-connection load generator: N connections, each
//! with exactly one outstanding request, measuring *wall-clock* end-to-end
//! latency into the shared [`StreamingHistogram`]. This is what turns the
//! simulated `ServeReport` numbers into measured ones.
//!
//! Clients are *closed-loop with retry*: each connection works through a
//! sequence of **jobs**, and a job may take several wire **attempts**. A
//! reject, an admitted-then-dropped request or a request timeout is
//! retried after exponential backoff with seeded jitter, up to
//! [`RetryPolicy::max_attempts`]; exhausting the budget abandons the job.
//! Terminal frames, drains and socket errors abort the connection. Every
//! attempt resolves under exactly one [`LoadReport`] field
//! ([`LoadReport::lost`] is the no-silent-loss check) and every job ends
//! exactly one of succeeded / abandoned / aborted.

use crate::client::{InferOutcome, ServeClient};
use crate::protocol::Status;
use crate::rng;
use rt3_telemetry::{StreamingHistogram, TelemetrySnapshot};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a connection retries a job whose attempt did not get served:
/// exponential backoff (`backoff_base * backoff_factor^(attempt-1)`) plus
/// a uniform seeded jitter draw in `[0, jitter)`, for at most
/// `max_attempts` wire attempts per job.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Wire attempts per job before it is abandoned (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub backoff_base: Duration,
    /// Multiplier applied to the backoff per further retry.
    pub backoff_factor: f64,
    /// Upper bound of the uniform jitter added to every backoff.
    pub jitter: Duration,
    /// Per-request response deadline. A response that does not arrive in
    /// time counts as a timeout and the connection is re-established (a
    /// late response on the old socket would desynchronise the closed
    /// loop). `None` waits forever.
    pub request_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base: Duration::from_millis(20),
            backoff_factor: 2.0,
            jitter: Duration::from_millis(10),
            request_timeout: Some(Duration::from_secs(10)),
        }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt + 1`, given that `attempt`
    /// (1-based) just failed. Deterministic in the rng state.
    fn delay(&self, attempt: u32, rng_state: &mut u64) -> Duration {
        let exp = self.backoff_factor.powi(attempt.saturating_sub(1) as i32);
        let base = self.backoff_base.as_secs_f64() * exp;
        let jitter = self.jitter.as_secs_f64() * rng::uniform(rng_state);
        Duration::from_secs_f64(base + jitter)
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent connections, each a closed loop with one outstanding
    /// request.
    pub connections: usize,
    /// How long new jobs are issued (a job already being retried is
    /// allowed to finish its attempt budget past this deadline).
    pub duration: Duration,
    /// Relative deadline sent with every request.
    pub deadline_budget_ms: f64,
    /// Opaque payload bytes per request.
    pub payload_len: usize,
    /// Timeout-retry-abandon behaviour of every connection.
    pub retry: RetryPolicy,
    /// Seed for the backoff jitter; connection `i` draws from substream
    /// `i`, so a run is reproducible modulo real scheduling.
    pub seed: u64,
    /// How long to keep retrying the initial connect.
    pub connect_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            connections: 64,
            duration: Duration::from_secs(5),
            deadline_budget_ms: 400.0,
            payload_len: 256,
            retry: RetryPolicy::default(),
            seed: 42,
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// Everything the run observed, aggregated across connections. Every sent
/// attempt is accounted under exactly one field; [`LoadReport::lost`]
/// going to zero is the protocol's no-silent-loss guarantee. Jobs
/// reconcile separately: `jobs == jobs_succeeded + jobs_abandoned +
/// jobs_aborted`.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Wire attempts sent.
    pub sent: u64,
    /// Served within their deadline.
    pub completed: u64,
    /// Served after their deadline.
    pub completed_late: u64,
    /// Rejected: queue full.
    pub rejected_queue_full: u64,
    /// Rejected: certain deadline miss.
    pub rejected_certain_miss: u64,
    /// Dropped: battery died after admission.
    pub dropped_dead: u64,
    /// Refused: server draining after battery death.
    pub draining: u64,
    /// Dropped: server shut down after admission.
    pub dropped_shutdown: u64,
    /// Conversations ended by a terminal frame instead of a response.
    pub terminal: u64,
    /// Attempts whose response did not arrive within the request timeout.
    pub timeouts: u64,
    /// Attempts whose connection failed before a resolution arrived.
    pub io_errors: u64,
    /// Connections (initial or re-established) that never came up.
    pub connect_failures: u64,
    /// Jobs the clients tried to get served.
    pub jobs: u64,
    /// Jobs that ended in a completion (on-time or late).
    pub jobs_succeeded: u64,
    /// Jobs given up after exhausting the retry budget.
    pub jobs_abandoned: u64,
    /// Jobs cut short by a terminal frame, drain, shutdown or socket
    /// error ending the connection.
    pub jobs_aborted: u64,
    /// Retry attempts (wire attempts beyond each job's first).
    pub retries: u64,
    /// Wall-clock latency of served requests (both on-time and late), ms.
    pub wall_latency_ms: StreamingHistogram,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Attempts that vanished without any resolution — no response, no
    /// terminal frame, no timeout, no socket error. Must be zero: anything
    /// else means the server lost track of an admitted request.
    pub fn lost(&self) -> u64 {
        self.sent
            - self.completed
            - self.completed_late
            - self.rejected_queue_full
            - self.rejected_certain_miss
            - self.dropped_dead
            - self.draining
            - self.dropped_shutdown
            - self.terminal
            - self.timeouts
            - self.io_errors
    }

    /// Served requests (on-time + late).
    pub fn served(&self) -> u64 {
        self.completed + self.completed_late
    }

    fn merge(&mut self, other: &LoadReport) {
        self.sent += other.sent;
        self.completed += other.completed;
        self.completed_late += other.completed_late;
        self.rejected_queue_full += other.rejected_queue_full;
        self.rejected_certain_miss += other.rejected_certain_miss;
        self.dropped_dead += other.dropped_dead;
        self.draining += other.draining;
        self.dropped_shutdown += other.dropped_shutdown;
        self.terminal += other.terminal;
        self.timeouts += other.timeouts;
        self.io_errors += other.io_errors;
        self.connect_failures += other.connect_failures;
        self.jobs += other.jobs;
        self.jobs_succeeded += other.jobs_succeeded;
        self.jobs_abandoned += other.jobs_abandoned;
        self.jobs_aborted += other.jobs_aborted;
        self.retries += other.retries;
        self.wall_latency_ms.merge(&other.wall_latency_ms);
    }

    /// One machine-readable JSON line (the `BENCH_serve.json` row).
    pub fn to_json(&self, label: &str, connections: usize) -> String {
        let h = &self.wall_latency_ms;
        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        let secs = self.elapsed.as_secs_f64().max(1e-9);
        format!(
            concat!(
                "{{\"bench\": \"serve/{label}\", \"connections\": {conns}, ",
                "\"duration_s\": {secs:.2}, \"sent\": {sent}, \"served\": {served}, ",
                "\"completed\": {completed}, \"completed_late\": {late}, ",
                "\"rejected_queue_full\": {rqf}, \"rejected_certain_miss\": {rcm}, ",
                "\"dropped_dead\": {dd}, \"draining\": {dr}, \"dropped_shutdown\": {ds}, ",
                "\"terminal\": {term}, \"timeouts\": {to}, \"io_errors\": {ioe}, ",
                "\"lost\": {lost}, \"jobs\": {jobs}, \"jobs_succeeded\": {jsu}, ",
                "\"jobs_abandoned\": {jab}, \"jobs_aborted\": {jao}, \"retries\": {ret}, ",
                "\"throughput_rps\": {rps:.1}, ",
                "\"wall_p50_ms\": {p50:.3}, \"wall_p95_ms\": {p95:.3}, \"wall_p99_ms\": {p99:.3}, ",
                "\"wall_mean_ms\": {mean:.3}, \"wall_max_ms\": {max:.3}}}"
            ),
            label = label,
            conns = connections,
            secs = secs,
            sent = self.sent,
            served = self.served(),
            completed = self.completed,
            late = self.completed_late,
            rqf = self.rejected_queue_full,
            rcm = self.rejected_certain_miss,
            dd = self.dropped_dead,
            dr = self.draining,
            ds = self.dropped_shutdown,
            term = self.terminal,
            to = self.timeouts,
            ioe = self.io_errors,
            lost = self.lost(),
            jobs = self.jobs,
            jsu = self.jobs_succeeded,
            jab = self.jobs_abandoned,
            jao = self.jobs_aborted,
            ret = self.retries,
            rps = self.served() as f64 / secs,
            p50 = p50,
            p95 = p95,
            p99 = p99,
            mean = if h.count() > 0 { h.mean() } else { 0.0 },
            max = if h.count() > 0 { h.max() } else { 0.0 },
        )
    }
}

/// Reconciles a client-side [`LoadReport`] against the server's own
/// telemetry snapshot, collecting every violated invariant instead of
/// stopping at the first (the same style as the chaos harness).
///
/// Client-only invariants hold unconditionally: no attempt is silently
/// lost and every job ends in exactly one of succeeded / abandoned /
/// aborted. The attempt ledger (`sent == jobs + retries`) additionally
/// requires `connect_failures == 0`, because a job whose re-connect fails
/// is aborted without a wire attempt.
///
/// Cross-layer equalities against the server counters are only exact when
/// the client observed every resolution (`timeouts == 0 && io_errors ==
/// 0`) and the snapshot was taken after the run quiesced; otherwise the
/// server may have served responses nobody read and the harness falls
/// back to the one-sided bound `requests_completed >= served()`.
///
/// # Errors
///
/// The list of violated invariants, one human-readable line each.
pub fn check_load_invariants(
    report: &LoadReport,
    server: &TelemetrySnapshot,
) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            violations.push(msg);
        }
    };
    let counter = |name: &str| server.metrics.counter(name).unwrap_or(0);

    check(
        report.lost() == 0,
        format!("{} attempts resolved under no field", report.lost()),
    );
    let job_ends = report.jobs_succeeded + report.jobs_abandoned + report.jobs_aborted;
    check(
        report.jobs == job_ends,
        format!(
            "jobs {} != succeeded {} + abandoned {} + aborted {}",
            report.jobs, report.jobs_succeeded, report.jobs_abandoned, report.jobs_aborted
        ),
    );
    if report.connect_failures == 0 {
        check(
            report.sent == report.jobs + report.retries,
            format!(
                "sent {} != jobs {} + retries {}",
                report.sent, report.jobs, report.retries
            ),
        );
    }

    let served = report.served();
    let completed = counter("requests_completed");
    if report.timeouts == 0 && report.io_errors == 0 {
        check(
            completed == served,
            format!("server requests_completed {completed} != client served {served}"),
        );
        let missed = counter("deadline_missed");
        check(
            missed == report.completed_late,
            format!(
                "server deadline_missed {missed} != client completed_late {}",
                report.completed_late
            ),
        );
        for (name, client_side) in [
            ("requests_rejected_queue_full", report.rejected_queue_full),
            (
                "requests_rejected_certain_miss",
                report.rejected_certain_miss,
            ),
            ("requests_dropped_dead", report.dropped_dead),
            ("requests_draining_refused", report.draining),
            ("requests_dropped_shutdown", report.dropped_shutdown),
        ] {
            let server_side = counter(name);
            check(
                server_side == client_side,
                format!("server {name} {server_side} != client {client_side}"),
            );
        }
        let admitted = counter("requests_admitted");
        let resolved = served + report.dropped_dead + report.dropped_shutdown;
        check(
            admitted == resolved,
            format!(
                "server requests_admitted {admitted} != served {served} + dropped_dead {} \
                 + dropped_shutdown {}",
                report.dropped_dead, report.dropped_shutdown
            ),
        );
    } else {
        // lossy observation: the server can only have served at least as
        // much as the client managed to read
        check(
            completed >= served,
            format!("server requests_completed {completed} < client served {served}"),
        );
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Runs the closed loop against `addr` and aggregates every connection's
/// observations. Blocks until all connection threads finish.
pub fn run(addr: SocketAddr, config: &LoadgenConfig) -> LoadReport {
    let started = Instant::now();
    let next_id = Arc::new(AtomicU64::new(1));
    let mut handles = Vec::with_capacity(config.connections);
    for index in 0..config.connections {
        let config = config.clone();
        let next_id = Arc::clone(&next_id);
        let seed = rng::substream(config.seed, index as u64);
        let handle = std::thread::Builder::new()
            .name("rt3-loadgen".into())
            // small stacks make thousands of client threads affordable
            .stack_size(128 * 1024)
            .spawn(move || connection_loop(addr, &config, &next_id, seed))
            .expect("spawn loadgen connection thread");
        handles.push(handle);
    }
    let mut total = LoadReport::default();
    for handle in handles {
        if let Ok(report) = handle.join() {
            total.merge(&report);
        }
    }
    total.elapsed = started.elapsed();
    total
}

/// Connects (with retry) and arms the per-request response deadline.
fn establish(addr: SocketAddr, config: &LoadgenConfig) -> io::Result<ServeClient> {
    let mut client = ServeClient::connect_retry(addr, config.connect_timeout)?;
    client.set_timeouts(config.retry.request_timeout, config.retry.request_timeout)?;
    Ok(client)
}

fn connection_loop(
    addr: SocketAddr,
    config: &LoadgenConfig,
    next_id: &AtomicU64,
    seed: u64,
) -> LoadReport {
    let mut report = LoadReport::default();
    let mut rng_state = seed;
    let mut client = match establish(addr, config) {
        Ok(client) => Some(client),
        Err(_) => {
            report.connect_failures += 1;
            return report;
        }
    };
    let payload = vec![0u8; config.payload_len];
    let issue_deadline = Instant::now() + config.duration;
    'jobs: while Instant::now() < issue_deadline {
        report.jobs += 1;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // a timed-out attempt dropped the connection; re-establish
            if client.is_none() {
                match establish(addr, config) {
                    Ok(fresh) => client = Some(fresh),
                    Err(_) => {
                        report.connect_failures += 1;
                        report.jobs_aborted += 1;
                        break 'jobs;
                    }
                }
            }
            let conn = client.as_mut().expect("connection established above");
            let id = next_id.fetch_add(1, Ordering::Relaxed);
            let sent_at = Instant::now();
            report.sent += 1;
            match conn.infer(id, config.deadline_budget_ms, &payload) {
                Ok(InferOutcome::Resolved(response)) => {
                    debug_assert_eq!(response.id, id, "responses arrive in closed-loop order");
                    match response.status {
                        Status::Completed | Status::CompletedLate => {
                            let wall_ms = sent_at.elapsed().as_secs_f64() * 1_000.0;
                            report.wall_latency_ms.record(wall_ms);
                            if response.status == Status::Completed {
                                report.completed += 1;
                            } else {
                                report.completed_late += 1;
                            }
                            report.jobs_succeeded += 1;
                            continue 'jobs;
                        }
                        // retryable: the request was turned away or lost
                        // after admission, but the server is still up
                        Status::RejectedQueueFull => report.rejected_queue_full += 1,
                        Status::RejectedCertainMiss => report.rejected_certain_miss += 1,
                        Status::DroppedDead => report.dropped_dead += 1,
                        Status::Draining => {
                            // the server is draining: stop offering load
                            report.draining += 1;
                            report.jobs_aborted += 1;
                            break 'jobs;
                        }
                        Status::DroppedShutdown => {
                            report.dropped_shutdown += 1;
                            report.jobs_aborted += 1;
                            break 'jobs;
                        }
                    }
                }
                Ok(InferOutcome::Terminal(_code)) => {
                    report.terminal += 1;
                    report.jobs_aborted += 1;
                    break 'jobs;
                }
                Err(error) if error.is_timeout() => {
                    // drop the socket: a response still in flight would
                    // otherwise answer the *next* request on this stream
                    report.timeouts += 1;
                    client = None;
                }
                Err(_) => {
                    report.io_errors += 1;
                    report.jobs_aborted += 1;
                    break 'jobs;
                }
            }
            // the attempt failed but is retryable
            if attempt >= config.retry.max_attempts.max(1) {
                report.jobs_abandoned += 1;
                continue 'jobs;
            }
            std::thread::sleep(config.retry.delay(attempt, &mut rng_state));
            report.retries += 1;
        }
    }
    report
}
