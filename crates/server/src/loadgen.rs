//! A closed-loop, multi-connection load generator: N connections, each
//! with exactly one outstanding request, measuring *wall-clock* end-to-end
//! latency into the shared [`StreamingHistogram`]. This is what turns the
//! simulated `ServeReport` numbers into measured ones.

use crate::client::{InferOutcome, ServeClient};
use crate::protocol::Status;
use rt3_telemetry::StreamingHistogram;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent connections, each a closed loop with one outstanding
    /// request.
    pub connections: usize,
    /// How long new requests are issued.
    pub duration: Duration,
    /// Relative deadline sent with every request.
    pub deadline_budget_ms: f64,
    /// Opaque payload bytes per request.
    pub payload_len: usize,
    /// Back-off after an explicit reject, so a saturated server is probed,
    /// not hammered (closed-loop clients react to backpressure).
    pub reject_backoff: Duration,
    /// How long to keep retrying the initial connect.
    pub connect_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            connections: 64,
            duration: Duration::from_secs(5),
            deadline_budget_ms: 400.0,
            payload_len: 256,
            reject_backoff: Duration::from_millis(20),
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// Everything the run observed, aggregated across connections. Every sent
/// request is accounted under exactly one field; [`LoadReport::lost`]
/// going to zero is the protocol's no-silent-loss guarantee.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Served within their deadline.
    pub completed: u64,
    /// Served after their deadline.
    pub completed_late: u64,
    /// Rejected: queue full.
    pub rejected_queue_full: u64,
    /// Rejected: certain deadline miss.
    pub rejected_certain_miss: u64,
    /// Dropped: battery died after admission.
    pub dropped_dead: u64,
    /// Refused: server draining after battery death.
    pub draining: u64,
    /// Dropped: server shut down after admission.
    pub dropped_shutdown: u64,
    /// Conversations ended by a terminal frame instead of a response.
    pub terminal: u64,
    /// Requests whose connection failed before a resolution arrived.
    pub io_errors: u64,
    /// Connections that never established.
    pub connect_failures: u64,
    /// Wall-clock latency of served requests (both on-time and late), ms.
    pub wall_latency_ms: StreamingHistogram,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Requests that vanished without any resolution — no response, no
    /// terminal frame, no socket error. Must be zero: anything else means
    /// the server lost track of an admitted request.
    pub fn lost(&self) -> u64 {
        self.sent
            - self.completed
            - self.completed_late
            - self.rejected_queue_full
            - self.rejected_certain_miss
            - self.dropped_dead
            - self.draining
            - self.dropped_shutdown
            - self.terminal
            - self.io_errors
    }

    /// Served requests (on-time + late).
    pub fn served(&self) -> u64 {
        self.completed + self.completed_late
    }

    fn merge(&mut self, other: &LoadReport) {
        self.sent += other.sent;
        self.completed += other.completed;
        self.completed_late += other.completed_late;
        self.rejected_queue_full += other.rejected_queue_full;
        self.rejected_certain_miss += other.rejected_certain_miss;
        self.dropped_dead += other.dropped_dead;
        self.draining += other.draining;
        self.dropped_shutdown += other.dropped_shutdown;
        self.terminal += other.terminal;
        self.io_errors += other.io_errors;
        self.connect_failures += other.connect_failures;
        self.wall_latency_ms.merge(&other.wall_latency_ms);
    }

    /// One machine-readable JSON line (the `BENCH_serve.json` row).
    pub fn to_json(&self, label: &str, connections: usize) -> String {
        let h = &self.wall_latency_ms;
        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        let secs = self.elapsed.as_secs_f64().max(1e-9);
        format!(
            concat!(
                "{{\"bench\": \"serve/{label}\", \"connections\": {conns}, ",
                "\"duration_s\": {secs:.2}, \"sent\": {sent}, \"served\": {served}, ",
                "\"completed\": {completed}, \"completed_late\": {late}, ",
                "\"rejected_queue_full\": {rqf}, \"rejected_certain_miss\": {rcm}, ",
                "\"dropped_dead\": {dd}, \"draining\": {dr}, \"dropped_shutdown\": {ds}, ",
                "\"terminal\": {term}, \"io_errors\": {ioe}, \"lost\": {lost}, ",
                "\"throughput_rps\": {rps:.1}, ",
                "\"wall_p50_ms\": {p50:.3}, \"wall_p95_ms\": {p95:.3}, \"wall_p99_ms\": {p99:.3}, ",
                "\"wall_mean_ms\": {mean:.3}, \"wall_max_ms\": {max:.3}}}"
            ),
            label = label,
            conns = connections,
            secs = secs,
            sent = self.sent,
            served = self.served(),
            completed = self.completed,
            late = self.completed_late,
            rqf = self.rejected_queue_full,
            rcm = self.rejected_certain_miss,
            dd = self.dropped_dead,
            dr = self.draining,
            ds = self.dropped_shutdown,
            term = self.terminal,
            ioe = self.io_errors,
            lost = self.lost(),
            rps = self.served() as f64 / secs,
            p50 = p50,
            p95 = p95,
            p99 = p99,
            mean = if h.count() > 0 { h.mean() } else { 0.0 },
            max = if h.count() > 0 { h.max() } else { 0.0 },
        )
    }
}

/// Runs the closed loop against `addr` and aggregates every connection's
/// observations. Blocks until all connection threads finish.
pub fn run(addr: SocketAddr, config: &LoadgenConfig) -> LoadReport {
    let started = Instant::now();
    let next_id = Arc::new(AtomicU64::new(1));
    let mut handles = Vec::with_capacity(config.connections);
    for _ in 0..config.connections {
        let config = config.clone();
        let next_id = Arc::clone(&next_id);
        let handle = std::thread::Builder::new()
            .name("rt3-loadgen".into())
            // small stacks make thousands of client threads affordable
            .stack_size(128 * 1024)
            .spawn(move || connection_loop(addr, &config, &next_id))
            .expect("spawn loadgen connection thread");
        handles.push(handle);
    }
    let mut total = LoadReport::default();
    for handle in handles {
        if let Ok(report) = handle.join() {
            total.merge(&report);
        }
    }
    total.elapsed = started.elapsed();
    total
}

fn connection_loop(addr: SocketAddr, config: &LoadgenConfig, next_id: &AtomicU64) -> LoadReport {
    let mut report = LoadReport::default();
    let Ok(mut client) = ServeClient::connect_retry(addr, config.connect_timeout) else {
        report.connect_failures += 1;
        return report;
    };
    let payload = vec![0u8; config.payload_len];
    let deadline = Instant::now() + config.duration;
    while Instant::now() < deadline {
        let id = next_id.fetch_add(1, Ordering::Relaxed);
        let sent_at = Instant::now();
        report.sent += 1;
        match client.infer(id, config.deadline_budget_ms, &payload) {
            Ok(InferOutcome::Resolved(response)) => {
                debug_assert_eq!(response.id, id, "responses arrive in closed-loop order");
                match response.status {
                    Status::Completed | Status::CompletedLate => {
                        let wall_ms = sent_at.elapsed().as_secs_f64() * 1_000.0;
                        report.wall_latency_ms.record(wall_ms);
                        if response.status == Status::Completed {
                            report.completed += 1;
                        } else {
                            report.completed_late += 1;
                        }
                    }
                    Status::RejectedQueueFull => {
                        report.rejected_queue_full += 1;
                        std::thread::sleep(config.reject_backoff);
                    }
                    Status::RejectedCertainMiss => {
                        report.rejected_certain_miss += 1;
                        std::thread::sleep(config.reject_backoff);
                    }
                    Status::DroppedDead => report.dropped_dead += 1,
                    Status::Draining => {
                        // the server is draining: stop offering load
                        report.draining += 1;
                        break;
                    }
                    Status::DroppedShutdown => {
                        report.dropped_shutdown += 1;
                        break;
                    }
                }
            }
            Ok(InferOutcome::Terminal(_code)) => {
                report.terminal += 1;
                break;
            }
            Err(_) => {
                report.io_errors += 1;
                break;
            }
        }
    }
    report
}
