//! Seeded adversarial clients for the server boundary: torn writes,
//! mid-request disconnects, garbage frames and hung peers. A
//! [`FaultPlan`] is a reproducible sequence of [`Fault`]s (drawn from a
//! seed or written out by hand) that [`FaultPlan::run`] replays against a
//! live server, reporting what each misbehaving client observed.
//!
//! The point of every fault is *blast-radius containment*: a misbehaving
//! connection may poison itself, but the server must keep serving
//! well-behaved traffic, keep its counters reconciled, and never wedge a
//! connection thread on a peer that stops talking mid-frame (the read
//! timeout reaps those with an explicit [`TERMINAL_IDLE_TIMEOUT`]).

use crate::protocol::{read_frame, write_frame, ClientFrame, ServerFrame, TERMINAL_IDLE_TIMEOUT};
use crate::rng;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One adversarial client behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Send a length prefix promising a full infer frame, deliver only a
    /// strict prefix of the body, and disconnect. The server sees a
    /// disconnect mid-frame (a socket error, not a protocol error).
    TornWrite,
    /// Send one complete, valid infer request and disconnect without
    /// reading the response. The server's response write fails and is
    /// counted as `responses_failed`; the request itself is still served.
    DropBeforeResponse,
    /// Send a well-framed body with an opcode the server does not speak.
    /// Counted as `protocol_errors` and answered with a terminal frame.
    Garbage,
    /// Send a partial length prefix and then go silent, holding the
    /// connection open. The server's read timeout must reap it with
    /// [`TERMINAL_IDLE_TIMEOUT`] — this client waits (bounded by
    /// [`FaultPlan::hold`]) and records whether the reap arrived.
    HangThenClose,
}

/// A reproducible sequence of faults to replay against one server.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seeds the payload sizes, tear points and fault draws.
    pub seed: u64,
    /// The faults, executed in order on fresh connections.
    pub faults: Vec<Fault>,
    /// How long a [`Fault::HangThenClose`] client waits for the server to
    /// reap it before giving up. Must comfortably exceed the server's
    /// `read_timeout` for the reap to be observable.
    pub hold: Duration,
}

/// What the misbehaving clients observed, per fault kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Torn-write clients that connected and tore their frame.
    pub torn_writes: u64,
    /// Clients that sent a full request and vanished before the response.
    pub disconnects: u64,
    /// Garbage frames delivered.
    pub garbage: u64,
    /// Hung peers injected.
    pub hangs: u64,
    /// Hung peers that saw the server end the conversation (terminal
    /// frame or close) within the hold — i.e. reaps actually observed.
    pub reaped: u64,
    /// Faults skipped because the connection never established.
    pub connect_failures: u64,
}

impl FaultPlan {
    /// Draws `count` faults uniformly from the four kinds, seeded — the
    /// standard chaos mix.
    pub fn standard(seed: u64, count: usize) -> Self {
        let mut state = rng::substream(seed, 0xFA01);
        let kinds = [
            Fault::TornWrite,
            Fault::DropBeforeResponse,
            Fault::Garbage,
            Fault::HangThenClose,
        ];
        let faults = (0..count)
            .map(|_| kinds[(rng::splitmix64(&mut state) % kinds.len() as u64) as usize])
            .collect();
        Self {
            seed,
            faults,
            hold: Duration::from_secs(2),
        }
    }

    /// Replays the plan against `addr`, one fresh connection per fault.
    /// Infallible by design: a connect failure is reported, not raised —
    /// a chaos run should keep injecting even if the server briefly
    /// refuses connections.
    pub fn run(&self, addr: SocketAddr) -> FaultReport {
        let mut report = FaultReport::default();
        let mut state = rng::substream(self.seed, 0xFA02);
        for (index, fault) in self.faults.iter().enumerate() {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                report.connect_failures += 1;
                continue;
            };
            let _ = stream.set_nodelay(true);
            match fault {
                Fault::TornWrite => {
                    let payload_len = 16 + (rng::splitmix64(&mut state) % 240) as usize;
                    let body =
                        ClientFrame::encode_infer(index as u64, 100.0, &vec![0u8; payload_len]);
                    // promise the whole body, deliver a strict prefix
                    let cut = 1 + (rng::splitmix64(&mut state) as usize % (body.len() - 1));
                    let mut torn = Vec::with_capacity(4 + cut);
                    torn.extend_from_slice(&(body.len() as u32).to_le_bytes());
                    torn.extend_from_slice(&body[..cut]);
                    let _ = stream.write_all(&torn);
                    report.torn_writes += 1;
                }
                Fault::DropBeforeResponse => {
                    let body = ClientFrame::encode_infer(index as u64, 100.0, &[0u8; 8]);
                    let _ = write_frame(&mut stream, &body);
                    report.disconnects += 1;
                }
                Fault::Garbage => {
                    let mut body = vec![0x7Fu8; 4];
                    body[1] = (rng::splitmix64(&mut state) & 0xFF) as u8;
                    let _ = write_frame(&mut stream, &body);
                    report.garbage += 1;
                    // drain whatever terminal frame the server answers with
                    let _ = stream.set_read_timeout(Some(self.hold));
                    let _ = read_frame(&mut stream, 1 << 20);
                }
                Fault::HangThenClose => {
                    report.hangs += 1;
                    let _ = stream.write_all(&[0x01, 0x02]); // half a prefix
                    let _ = stream.set_read_timeout(Some(self.hold));
                    match read_frame(&mut stream, 1 << 20) {
                        // a terminal frame (or a clean close) within the
                        // hold means the server reaped the hung peer
                        Ok(Some(body))
                            if matches!(
                                ServerFrame::decode(&body),
                                Ok(ServerFrame::Terminal(TERMINAL_IDLE_TIMEOUT))
                            ) =>
                        {
                            report.reaped += 1;
                        }
                        Ok(None) => report.reaped += 1,
                        _ => {}
                    }
                }
            }
            // dropping the stream closes the connection
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InferOutcome, ServeClient, Server, ServerConfig, ServerSpec};

    fn spawn_server(read_timeout: Duration) -> Server {
        Server::spawn(
            "127.0.0.1:0",
            ServerSpec::paper_default(10_000.0),
            ServerConfig {
                window_ms: 50.0,
                read_timeout: Some(read_timeout),
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn standard_plans_are_seeded_and_cover_every_kind() {
        let a = FaultPlan::standard(7, 64);
        let b = FaultPlan::standard(7, 64);
        assert_eq!(a.faults, b.faults, "same seed, same plan");
        let c = FaultPlan::standard(8, 64);
        assert_ne!(a.faults, c.faults, "different seed, different plan");
        for kind in [
            Fault::TornWrite,
            Fault::DropBeforeResponse,
            Fault::Garbage,
            Fault::HangThenClose,
        ] {
            assert!(a.faults.contains(&kind), "{kind:?} appears in 64 draws");
        }
    }

    #[test]
    fn server_survives_the_standard_fault_mix() {
        let server = spawn_server(Duration::from_millis(200));
        let plan = FaultPlan {
            hold: Duration::from_secs(2),
            ..FaultPlan::standard(42, 12)
        };
        let report = plan.run(server.local_addr());
        assert_eq!(report.connect_failures, 0, "server accepted every fault");
        assert_eq!(report.reaped, report.hangs, "every hung peer was reaped");

        // the server still serves well-behaved traffic afterwards
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        let outcome = client.infer(1, 1_000.0, b"after the storm").unwrap();
        let InferOutcome::Resolved(response) = outcome else {
            panic!("healthy request answered with a terminal frame");
        };
        assert!(response.status.served(), "server serves after the faults");

        // counters: garbage frames counted as protocol errors, hung peers
        // as timeouts; torn writes are socket errors, not protocol errors.
        // Fault clients that vanish without a round trip may still be in
        // the accept path, so poll briefly instead of snapshotting once.
        let expected_opened =
            report.torn_writes + report.disconnects + report.garbage + report.hangs + 1;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snapshot = server.metrics_snapshot();
            let counter = |name: &str| snapshot.metrics.counter(name).unwrap_or(0);
            if counter("connections_opened") == expected_opened {
                assert_eq!(counter("protocol_errors"), report.garbage);
                assert_eq!(counter("connections_timed_out"), report.hangs);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server opened {} connections, expected {expected_opened}",
                counter("connections_opened")
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
