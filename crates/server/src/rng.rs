//! A tiny seeded generator (splitmix64) shared by the load generator's
//! backoff jitter and the fault injector's plans. The server crate has no
//! RNG dependency on purpose: reproducibility under `RT3_SEED` matters
//! more than statistical quality here, and splitmix64 is plenty for both.

/// Advances the state and returns the next 64 random bits.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)`.
pub(crate) fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Derives an independent stream for substream `index` of `seed` — used to
/// give every connection (or fault client) its own deterministic sequence.
pub(crate) fn substream(seed: u64, index: u64) -> u64 {
    let mut state = seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    // burn one draw so adjacent indices decorrelate immediately
    splitmix64(&mut state);
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_is_deterministic_and_nontrivial() {
        let mut a = 42;
        let mut b = 42;
        let first = splitmix64(&mut a);
        assert_eq!(first, splitmix64(&mut b));
        assert_ne!(first, splitmix64(&mut a), "the stream advances");
    }

    #[test]
    fn uniform_stays_in_the_half_open_interval() {
        let mut state = 7;
        for _ in 0..1_000 {
            let x = uniform(&mut state);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn substreams_differ_by_index() {
        let mut a = substream(9, 0);
        let mut b = substream(9, 1);
        assert_ne!(splitmix64(&mut a), splitmix64(&mut b));
    }
}
