//! The wire protocol: little-endian, length-prefixed binary frames.
//!
//! Every frame is a `u32` byte length followed by that many body bytes;
//! the first body byte is the opcode. The full layout (and the drain
//! semantics built on top of it) is documented in DESIGN.md §10.
//!
//! Client → server:
//!
//! | opcode | frame                                                        |
//! |--------|--------------------------------------------------------------|
//! | `0x01` | infer: `id: u64`, `deadline_budget_ms: f64`, `payload_len: u32`, payload bytes |
//! | `0x02` | metrics: empty                                               |
//! | `0x03` | subscribe: empty — turns the connection into a push channel  |
//!
//! Server → client:
//!
//! | opcode | frame                                                        |
//! |--------|--------------------------------------------------------------|
//! | `0x81` | infer response: `id: u64`, `status: u8`, `level_pos: u32`, `queue_ms: f64`, `infer_ms: f64` |
//! | `0x82` | metrics response: JSONL bytes (the `TelemetrySnapshot` export) |
//! | `0x83` | obs chunk: JSONL bytes — one window's series/alert delta, pushed per window to subscribers |
//! | `0x8F` | terminal: `code: u8` — the connection is being closed by the server |

use std::io::{self, Read, Write};

/// Client→server inference request.
pub const OP_INFER: u8 = 0x01;
/// Client→server metrics-snapshot request.
pub const OP_METRICS: u8 = 0x02;
/// Client→server subscription request: the connection becomes a dedicated
/// streaming channel receiving one obs chunk per server window.
pub const OP_SUBSCRIBE: u8 = 0x03;
/// Server→client inference response.
pub const OP_INFER_RESP: u8 = 0x81;
/// Server→client metrics response.
pub const OP_METRICS_RESP: u8 = 0x82;
/// Server→client observability chunk pushed to subscribers.
pub const OP_OBS: u8 = 0x83;
/// Server→client terminal frame: the server is closing this connection.
pub const OP_TERMINAL: u8 = 0x8F;

/// Terminal code: the battery died — the server drains and refuses new
/// connections.
pub const TERMINAL_BATTERY_DEAD: u8 = 1;
/// Terminal code: the server is shutting down.
pub const TERMINAL_SHUTDOWN: u8 = 2;
/// Terminal code: this connection violated the protocol and is dropped
/// (other connections are unaffected).
pub const TERMINAL_PROTOCOL_ERROR: u8 = 3;
/// Terminal code: this connection sat idle (or mid-frame) past the
/// server's read timeout and is being reaped — how hung peers are kept
/// from pinning connection threads forever.
pub const TERMINAL_IDLE_TIMEOUT: u8 = 4;

/// How a request resolved, carried in the infer-response frame. Every
/// submitted request resolves to exactly one of these — backpressure is an
/// explicit code, never a silent TCP stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Served within its deadline.
    Completed = 0,
    /// Served, but after its deadline passed.
    CompletedLate = 1,
    /// Turned away at admission: the bounded queue was full.
    RejectedQueueFull = 2,
    /// Turned away at admission: the backlog-aware estimate says the
    /// deadline cannot be met.
    RejectedCertainMiss = 3,
    /// Admitted but dropped because the battery died before service.
    DroppedDead = 4,
    /// Refused because the server is draining after battery death.
    Draining = 5,
    /// Admitted but dropped because the server shut down.
    DroppedShutdown = 6,
}

impl Status {
    /// Decodes a wire byte.
    pub fn from_u8(raw: u8) -> Option<Self> {
        match raw {
            0 => Some(Status::Completed),
            1 => Some(Status::CompletedLate),
            2 => Some(Status::RejectedQueueFull),
            3 => Some(Status::RejectedCertainMiss),
            4 => Some(Status::DroppedDead),
            5 => Some(Status::Draining),
            6 => Some(Status::DroppedShutdown),
            _ => None,
        }
    }

    /// Whether the request actually ran (as opposed to being rejected or
    /// dropped).
    pub fn served(self) -> bool {
        matches!(self, Status::Completed | Status::CompletedLate)
    }
}

/// What went wrong while reading a frame.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket failed (including a disconnect mid-frame).
    Io(io::Error),
    /// The length prefix exceeds the negotiated maximum frame size.
    FrameTooLarge {
        /// Announced body length.
        len: u32,
        /// Maximum the receiver accepts.
        max: u32,
    },
    /// The frame body does not parse as any known message.
    Malformed(&'static str),
    /// The opcode byte is not one this side understands.
    UnknownOpcode(u8),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
        }
    }
}

impl ProtocolError {
    /// Whether this is a socket timeout (the deadline set with
    /// `set_read_timeout` / `set_write_timeout` expired). Platforms
    /// disagree on the error kind — Unix reports `WouldBlock`, Windows
    /// `TimedOut` — so both count.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ProtocolError::Io(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Reads one length-prefixed frame body. Returns `Ok(None)` on a clean
/// end-of-stream at a frame boundary (the peer closed the connection);
/// a disconnect mid-frame is an [`ProtocolError::Io`] error.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] when the announced length exceeds
/// `max_len`, [`ProtocolError::Io`] on socket failure.
pub fn read_frame<R: Read>(reader: &mut R, max_len: u32) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(ProtocolError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "disconnect inside a length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > max_len {
        return Err(ProtocolError::FrameTooLarge { len, max: max_len });
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Writes one frame (length prefix + body) with a single `write_all` so a
/// frame is never torn by interleaved writers sharing the socket.
///
/// # Errors
///
/// Propagates the socket error.
pub fn write_frame<W: Write>(writer: &mut W, body: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    writer.write_all(&frame)
}

/// A parsed client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// One inference request. The payload is opaque to the server — only
    /// its size is carried through (it stands in for the request tensor).
    Infer {
        /// Client-chosen request id, echoed back on the response. Ids only
        /// need to be unique per connection.
        id: u64,
        /// Relative deadline: the request must complete within this many
        /// milliseconds of its arrival.
        deadline_budget_ms: f64,
        /// Size of the opaque payload that followed.
        payload_len: u32,
    },
    /// Request for a live telemetry snapshot (the `/metrics` analogue).
    Metrics,
    /// Turn this connection into a push channel: the server answers with a
    /// catch-up obs chunk (the full retained series/alert history) and then
    /// pushes one chunk per window. A subscribed connection sends nothing
    /// further; it just reads.
    Subscribe,
}

impl ClientFrame {
    /// Parses a frame body.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] / [`ProtocolError::UnknownOpcode`] when
    /// the body is not a valid client message.
    pub fn decode(body: &[u8]) -> Result<Self, ProtocolError> {
        let (&op, rest) = body
            .split_first()
            .ok_or(ProtocolError::Malformed("empty frame body"))?;
        match op {
            OP_INFER => {
                if rest.len() < 20 {
                    return Err(ProtocolError::Malformed("infer header truncated"));
                }
                let id = u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes"));
                let deadline_budget_ms =
                    f64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
                let payload_len = u32::from_le_bytes(rest[16..20].try_into().expect("4 bytes"));
                if rest.len() - 20 != payload_len as usize {
                    return Err(ProtocolError::Malformed("payload length mismatch"));
                }
                if !deadline_budget_ms.is_finite() || deadline_budget_ms <= 0.0 {
                    return Err(ProtocolError::Malformed(
                        "deadline budget must be positive and finite",
                    ));
                }
                Ok(ClientFrame::Infer {
                    id,
                    deadline_budget_ms,
                    payload_len,
                })
            }
            OP_METRICS => {
                if !rest.is_empty() {
                    return Err(ProtocolError::Malformed("metrics request carries a body"));
                }
                Ok(ClientFrame::Metrics)
            }
            OP_SUBSCRIBE => {
                if !rest.is_empty() {
                    return Err(ProtocolError::Malformed("subscribe request carries a body"));
                }
                Ok(ClientFrame::Subscribe)
            }
            other => Err(ProtocolError::UnknownOpcode(other)),
        }
    }

    /// Encodes an infer-request body (without the length prefix).
    pub fn encode_infer(id: u64, deadline_budget_ms: f64, payload: &[u8]) -> Vec<u8> {
        let mut body = Vec::with_capacity(21 + payload.len());
        body.push(OP_INFER);
        body.extend_from_slice(&id.to_le_bytes());
        body.extend_from_slice(&deadline_budget_ms.to_le_bytes());
        body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        body.extend_from_slice(payload);
        body
    }

    /// Encodes a metrics-request body (without the length prefix).
    pub fn encode_metrics() -> Vec<u8> {
        vec![OP_METRICS]
    }

    /// Encodes a subscribe-request body (without the length prefix).
    pub fn encode_subscribe() -> Vec<u8> {
        vec![OP_SUBSCRIBE]
    }
}

/// One resolved inference request as seen on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferResponse {
    /// The client's request id, echoed back.
    pub id: u64,
    /// How the request resolved.
    pub status: Status,
    /// Governor level position the request was served at (the admission
    /// level for rejects).
    pub level_pos: u32,
    /// Milliseconds the request waited in the queue (0 for rejects).
    pub queue_ms: f64,
    /// Milliseconds of (batched) service time charged (0 for rejects).
    pub infer_ms: f64,
}

impl InferResponse {
    /// Encodes the response body (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(30);
        body.push(OP_INFER_RESP);
        body.extend_from_slice(&self.id.to_le_bytes());
        body.push(self.status as u8);
        body.extend_from_slice(&self.level_pos.to_le_bytes());
        body.extend_from_slice(&self.queue_ms.to_le_bytes());
        body.extend_from_slice(&self.infer_ms.to_le_bytes());
        body
    }
}

/// A parsed server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// One resolved inference request.
    Infer(InferResponse),
    /// The JSONL telemetry snapshot.
    Metrics(String),
    /// One pushed observability chunk: JSONL series points and alert
    /// transitions for a window (or the catch-up history right after
    /// subscribing).
    Obs(String),
    /// The server is closing this connection; the code is one of the
    /// `TERMINAL_*` constants.
    Terminal(u8),
}

impl ServerFrame {
    /// Parses a frame body.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] / [`ProtocolError::UnknownOpcode`] when
    /// the body is not a valid server message.
    pub fn decode(body: &[u8]) -> Result<Self, ProtocolError> {
        let (&op, rest) = body
            .split_first()
            .ok_or(ProtocolError::Malformed("empty frame body"))?;
        match op {
            OP_INFER_RESP => {
                if rest.len() != 29 {
                    return Err(ProtocolError::Malformed("infer response length"));
                }
                let id = u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes"));
                let status = Status::from_u8(rest[8])
                    .ok_or(ProtocolError::Malformed("unknown status code"))?;
                let level_pos = u32::from_le_bytes(rest[9..13].try_into().expect("4 bytes"));
                let queue_ms = f64::from_le_bytes(rest[13..21].try_into().expect("8 bytes"));
                let infer_ms = f64::from_le_bytes(rest[21..29].try_into().expect("8 bytes"));
                Ok(ServerFrame::Infer(InferResponse {
                    id,
                    status,
                    level_pos,
                    queue_ms,
                    infer_ms,
                }))
            }
            OP_METRICS_RESP => {
                let text = String::from_utf8(rest.to_vec())
                    .map_err(|_| ProtocolError::Malformed("metrics response is not UTF-8"))?;
                Ok(ServerFrame::Metrics(text))
            }
            OP_OBS => {
                let text = String::from_utf8(rest.to_vec())
                    .map_err(|_| ProtocolError::Malformed("obs chunk is not UTF-8"))?;
                Ok(ServerFrame::Obs(text))
            }
            OP_TERMINAL => {
                if rest.len() != 1 {
                    return Err(ProtocolError::Malformed("terminal frame length"));
                }
                Ok(ServerFrame::Terminal(rest[0]))
            }
            other => Err(ProtocolError::UnknownOpcode(other)),
        }
    }

    /// Encodes a metrics-response body (without the length prefix).
    pub fn encode_metrics(jsonl: &str) -> Vec<u8> {
        let mut body = Vec::with_capacity(1 + jsonl.len());
        body.push(OP_METRICS_RESP);
        body.extend_from_slice(jsonl.as_bytes());
        body
    }

    /// Encodes an obs-chunk body (without the length prefix).
    pub fn encode_obs(jsonl: &str) -> Vec<u8> {
        let mut body = Vec::with_capacity(1 + jsonl.len());
        body.push(OP_OBS);
        body.extend_from_slice(jsonl.as_bytes());
        body
    }

    /// Encodes a terminal body (without the length prefix).
    pub fn encode_terminal(code: u8) -> Vec<u8> {
        vec![OP_TERMINAL, code]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_request_round_trips() {
        let body = ClientFrame::encode_infer(42, 250.0, &[1, 2, 3]);
        assert_eq!(
            ClientFrame::decode(&body).unwrap(),
            ClientFrame::Infer {
                id: 42,
                deadline_budget_ms: 250.0,
                payload_len: 3,
            }
        );
    }

    #[test]
    fn infer_response_round_trips() {
        let resp = InferResponse {
            id: 7,
            status: Status::CompletedLate,
            level_pos: 3,
            queue_ms: 12.5,
            infer_ms: 48.0,
        };
        assert_eq!(
            ServerFrame::decode(&resp.encode()).unwrap(),
            ServerFrame::Infer(resp)
        );
    }

    #[test]
    fn subscribe_and_obs_round_trip() {
        let body = ClientFrame::encode_subscribe();
        assert_eq!(ClientFrame::decode(&body).unwrap(), ClientFrame::Subscribe);
        let chunk = "{\"type\":\"series\",\"name\":\"miss_rate\",\"t_s\":3,\"value\":0.5}\n";
        assert_eq!(
            ServerFrame::decode(&ServerFrame::encode_obs(chunk)).unwrap(),
            ServerFrame::Obs(chunk.to_string())
        );
    }

    #[test]
    fn malformed_bodies_are_rejected_not_panicked() {
        assert!(ClientFrame::decode(&[]).is_err());
        assert!(ClientFrame::decode(&[OP_INFER, 1, 2]).is_err());
        assert!(ClientFrame::decode(&[0x77]).is_err());
        assert!(ClientFrame::decode(&[OP_SUBSCRIBE, 1]).is_err());
        assert!(ServerFrame::decode(&[OP_OBS, 0xFF, 0xFE]).is_err());
        // payload length disagreeing with the frame length
        let mut body = ClientFrame::encode_infer(1, 100.0, &[0; 4]);
        body.truncate(body.len() - 1);
        assert!(ClientFrame::decode(&body).is_err());
        // non-positive and non-finite deadline budgets
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let body = ClientFrame::encode_infer(1, bad, &[]);
            assert!(ClientFrame::decode(&body).is_err());
        }
        assert!(ServerFrame::decode(&[OP_INFER_RESP, 0]).is_err());
        assert!(ServerFrame::decode(&[OP_TERMINAL]).is_err());
    }

    #[test]
    fn frame_io_round_trips_and_enforces_the_size_limit() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = std::io::Cursor::new(oversized);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }
}
