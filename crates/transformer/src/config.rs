//! Model hyper-parameter configuration.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of a Transformer model.
///
/// Presets mirror the two models evaluated in the paper: a small Transformer
/// with two encoder and one decoder layer for WikiText-2, and a
/// DistilBERT-style encoder stack (6 layers, H = 768, A = 12) for GLUE.
/// Experiments in this reproduction default to reduced widths so training
/// fits a CPU-only container (see DESIGN.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Model (hidden) dimension; must be divisible by `num_heads`.
    pub hidden_dim: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Feed-forward inner dimension.
    pub ffn_dim: usize,
    /// Number of encoder layers.
    pub num_encoder_layers: usize,
    /// Number of decoder layers (with cross-attention to the encoder output).
    pub num_decoder_layers: usize,
    /// Maximum sequence length (size of the learned positional table).
    pub max_seq_len: usize,
    /// Dropout probability used during training.
    pub dropout: f32,
}

impl TransformerConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.vocab_size < 2 {
            return Err("vocab_size must be at least 2".into());
        }
        if self.hidden_dim == 0 || self.num_heads == 0 {
            return Err("hidden_dim and num_heads must be positive".into());
        }
        if !self.hidden_dim.is_multiple_of(self.num_heads) {
            return Err(format!(
                "hidden_dim {} must be divisible by num_heads {}",
                self.hidden_dim, self.num_heads
            ));
        }
        if self.num_encoder_layers == 0 && self.num_decoder_layers == 0 {
            return Err("model must have at least one layer".into());
        }
        if self.max_seq_len == 0 {
            return Err("max_seq_len must be positive".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err("dropout must be in [0, 1)".into());
        }
        Ok(())
    }

    /// Head dimension (`hidden_dim / num_heads`).
    pub fn head_dim(&self) -> usize {
        self.hidden_dim / self.num_heads
    }

    /// The paper's WikiText-2 Transformer shape (2 encoder + 1 decoder
    /// layers) at reduced width for CPU training.
    pub fn paper_transformer(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden_dim: 48,
            num_heads: 4,
            ffn_dim: 96,
            num_encoder_layers: 2,
            num_decoder_layers: 1,
            max_seq_len: 64,
            dropout: 0.0,
        }
    }

    /// DistilBERT-style encoder stack at reduced width (the paper uses 6
    /// layers, H = 768, A = 12; this preset keeps 6 layers and 12 heads but
    /// shrinks the hidden size).
    pub fn distilbert_like(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden_dim: 48,
            num_heads: 12,
            ffn_dim: 96,
            num_encoder_layers: 6,
            num_decoder_layers: 0,
            max_seq_len: 64,
            dropout: 0.0,
        }
    }

    /// Full-size DistilBERT shape (for shape/latency accounting only — do not
    /// train this on CPU).
    pub fn distilbert_full(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden_dim: 768,
            num_heads: 12,
            ffn_dim: 3072,
            num_encoder_layers: 6,
            num_decoder_layers: 0,
            max_seq_len: 512,
            dropout: 0.1,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            hidden_dim: 16,
            num_heads: 2,
            ffn_dim: 32,
            num_encoder_layers: 1,
            num_decoder_layers: 1,
            max_seq_len: 32,
            dropout: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(TransformerConfig::paper_transformer(256).validate().is_ok());
        assert!(TransformerConfig::distilbert_like(128).validate().is_ok());
        assert!(TransformerConfig::distilbert_full(30522).validate().is_ok());
        assert!(TransformerConfig::tiny(32).validate().is_ok());
    }

    #[test]
    fn paper_shapes_match_the_paper() {
        let t = TransformerConfig::paper_transformer(256);
        assert_eq!(t.num_encoder_layers, 2);
        assert_eq!(t.num_decoder_layers, 1);
        let d = TransformerConfig::distilbert_full(30522);
        assert_eq!(d.num_encoder_layers, 6);
        assert_eq!(d.hidden_dim, 768);
        assert_eq!(d.num_heads, 12);
    }

    #[test]
    fn validation_rejects_indivisible_heads() {
        let mut c = TransformerConfig::tiny(32);
        c.num_heads = 3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_layers() {
        let mut c = TransformerConfig::tiny(32);
        c.num_encoder_layers = 0;
        c.num_decoder_layers = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn head_dim_is_quotient() {
        let c = TransformerConfig::tiny(32);
        assert_eq!(c.head_dim(), 8);
    }
}
