//! # rt3-transformer
//!
//! From-scratch Transformer models — the substrate that RT3 prunes and
//! reconfigures.
//!
//! The paper evaluates two models: a small encoder–decoder Transformer
//! (WikiText-2 next-word prediction) and DistilBERT (GLUE). This crate
//! implements both shapes on top of the [`rt3_tensor`] autograd engine:
//!
//! * [`TransformerLm`] — encoder–decoder language model
//!   ([`TransformerConfig::paper_transformer`] reproduces the 2-encoder /
//!   1-decoder layout).
//! * [`SequenceClassifier`] — DistilBERT-style encoder stack with a pooled
//!   classification/regression head
//!   ([`TransformerConfig::distilbert_like`]).
//! * [`MaskSet`] — named binary weight masks; the contract between the
//!   pruning algorithms (`rt3-pruning`) and masked training here.
//! * [`train_lm`] / [`train_classifier`] — fine-tuning loops with optional
//!   masks, used by the RT3 joint-training procedure.
//!
//! # Examples
//!
//! ```
//! use rt3_transformer::{Model, TransformerConfig, TransformerLm};
//!
//! let model = TransformerLm::new(TransformerConfig::tiny(32), 0);
//! let next = model.predict(&[1, 2, 3], None);
//! assert_eq!(next.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod layers;
mod masks;
mod model;
mod trainer;

pub use config::TransformerConfig;
pub use layers::{DecoderLayer, EncoderLayer, FeedForward, LayerNormParams, MultiHeadAttention};
pub use masks::MaskSet;
pub use model::{Model, ParamBindings, SequenceClassifier, TransformerLm};
pub use trainer::{
    evaluate_classifier, evaluate_lm, train_classifier, train_lm, TrainOptions, TrainReport,
};
