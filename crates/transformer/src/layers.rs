//! Transformer building blocks: multi-head attention, feed-forward network,
//! layer normalisation, encoder and decoder layers.
//!
//! Every layer owns its weights as plain [`Matrix`] values and exposes two
//! operations:
//!
//! * `collect` / `collect_mut` — enumerate `(name, matrix)` pairs under a
//!   prefix, used to build the model-wide parameter list;
//! * `forward` — run the layer inside a [`Graph`], looking its weights up in
//!   the [`ParamBindings`] created by the owning model (so pruning masks are
//!   applied uniformly in one place).

use crate::model::ParamBindings;
use rand::Rng;
use rt3_tensor::{Graph, Matrix, Var};
use serde::{Deserialize, Serialize};

/// Multi-head attention with separate query/key/value/output projections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    /// Query projection, `hidden x hidden`.
    pub wq: Matrix,
    /// Key projection, `hidden x hidden`.
    pub wk: Matrix,
    /// Value projection, `hidden x hidden`.
    pub wv: Matrix,
    /// Output projection, `hidden x hidden`.
    pub wo: Matrix,
    /// Query bias, `1 x hidden`.
    pub bq: Matrix,
    /// Key bias, `1 x hidden`.
    pub bk: Matrix,
    /// Value bias, `1 x hidden`.
    pub bv: Matrix,
    /// Output bias, `1 x hidden`.
    pub bo: Matrix,
    num_heads: usize,
}

impl MultiHeadAttention {
    /// Creates a randomly initialised attention layer.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `num_heads`.
    pub fn new<R: Rng + ?Sized>(hidden: usize, num_heads: usize, rng: &mut R) -> Self {
        assert_eq!(
            hidden % num_heads,
            0,
            "hidden must divide evenly into heads"
        );
        Self {
            wq: Matrix::xavier(hidden, hidden, rng),
            wk: Matrix::xavier(hidden, hidden, rng),
            wv: Matrix::xavier(hidden, hidden, rng),
            wo: Matrix::xavier(hidden, hidden, rng),
            bq: Matrix::zeros(1, hidden),
            bk: Matrix::zeros(1, hidden),
            bv: Matrix::zeros(1, hidden),
            bo: Matrix::zeros(1, hidden),
            num_heads,
        }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Appends `(name, matrix)` pairs under `prefix`.
    pub fn collect<'a>(&'a self, prefix: &str, out: &mut Vec<(String, &'a Matrix)>) {
        out.push((format!("{prefix}.wq"), &self.wq));
        out.push((format!("{prefix}.wk"), &self.wk));
        out.push((format!("{prefix}.wv"), &self.wv));
        out.push((format!("{prefix}.wo"), &self.wo));
        out.push((format!("{prefix}.bq"), &self.bq));
        out.push((format!("{prefix}.bk"), &self.bk));
        out.push((format!("{prefix}.bv"), &self.bv));
        out.push((format!("{prefix}.bo"), &self.bo));
    }

    /// Appends mutable `(name, matrix)` pairs under `prefix` in the same
    /// order as [`MultiHeadAttention::collect`].
    pub fn collect_mut<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Matrix)>) {
        out.push((format!("{prefix}.wq"), &mut self.wq));
        out.push((format!("{prefix}.wk"), &mut self.wk));
        out.push((format!("{prefix}.wv"), &mut self.wv));
        out.push((format!("{prefix}.wo"), &mut self.wo));
        out.push((format!("{prefix}.bq"), &mut self.bq));
        out.push((format!("{prefix}.bk"), &mut self.bk));
        out.push((format!("{prefix}.bv"), &mut self.bv));
        out.push((format!("{prefix}.bo"), &mut self.bo));
    }

    /// Runs attention with `query` attending over `memory` (self-attention
    /// when they are the same variable). With `causal` set, position `i` may
    /// only attend to positions `<= i`.
    pub fn forward(
        &self,
        g: &mut Graph,
        bindings: &ParamBindings,
        prefix: &str,
        query: Var,
        memory: Var,
        causal: bool,
    ) -> Var {
        let hidden = g.value(query).cols();
        let head_dim = hidden / self.num_heads;
        let wq = bindings.var(&format!("{prefix}.wq"));
        let wk = bindings.var(&format!("{prefix}.wk"));
        let wv = bindings.var(&format!("{prefix}.wv"));
        let wo = bindings.var(&format!("{prefix}.wo"));
        let bq = bindings.var(&format!("{prefix}.bq"));
        let bk = bindings.var(&format!("{prefix}.bk"));
        let bv = bindings.var(&format!("{prefix}.bv"));
        let bo = bindings.var(&format!("{prefix}.bo"));

        let q_proj = g.matmul(query, wq);
        let q_proj = g.add_row_broadcast(q_proj, bq);
        let k_proj = g.matmul(memory, wk);
        let k_proj = g.add_row_broadcast(k_proj, bk);
        let v_proj = g.matmul(memory, wv);
        let v_proj = g.add_row_broadcast(v_proj, bv);

        let seq_q = g.value(q_proj).rows();
        let seq_k = g.value(k_proj).rows();
        let causal_mask = if causal {
            Some(g.constant(causal_bias(seq_q, seq_k)))
        } else {
            None
        };

        let mut head_outputs = Vec::with_capacity(self.num_heads);
        for h in 0..self.num_heads {
            let start = h * head_dim;
            let end = start + head_dim;
            let qh = g.slice_cols(q_proj, start, end);
            let kh = g.slice_cols(k_proj, start, end);
            let vh = g.slice_cols(v_proj, start, end);
            let kht = g.transpose(kh);
            let scores = g.matmul(qh, kht);
            let scaled = g.scale(scores, 1.0 / (head_dim as f32).sqrt());
            let biased = match causal_mask {
                Some(mask) => g.add(scaled, mask),
                None => scaled,
            };
            let attn = g.softmax_rows(biased);
            let out = g.matmul(attn, vh);
            head_outputs.push(out);
        }
        let concat = g.concat_cols(&head_outputs);
        let projected = g.matmul(concat, wo);
        g.add_row_broadcast(projected, bo)
    }
}

/// Additive causal bias: 0 where attention is allowed, a large negative value
/// where a query would look into the future.
fn causal_bias(seq_q: usize, seq_k: usize) -> Matrix {
    Matrix::from_fn(seq_q, seq_k, |i, j| if j > i { -1e9 } else { 0.0 })
}

/// Position-wise feed-forward network (two linear layers with GELU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedForward {
    /// First projection, `hidden x ffn_dim`.
    pub w1: Matrix,
    /// First bias, `1 x ffn_dim`.
    pub b1: Matrix,
    /// Second projection, `ffn_dim x hidden`.
    pub w2: Matrix,
    /// Second bias, `1 x hidden`.
    pub b2: Matrix,
}

impl FeedForward {
    /// Creates a randomly initialised feed-forward block.
    pub fn new<R: Rng + ?Sized>(hidden: usize, ffn_dim: usize, rng: &mut R) -> Self {
        Self {
            w1: Matrix::xavier(hidden, ffn_dim, rng),
            b1: Matrix::zeros(1, ffn_dim),
            w2: Matrix::xavier(ffn_dim, hidden, rng),
            b2: Matrix::zeros(1, hidden),
        }
    }

    /// Appends `(name, matrix)` pairs under `prefix`.
    pub fn collect<'a>(&'a self, prefix: &str, out: &mut Vec<(String, &'a Matrix)>) {
        out.push((format!("{prefix}.w1"), &self.w1));
        out.push((format!("{prefix}.b1"), &self.b1));
        out.push((format!("{prefix}.w2"), &self.w2));
        out.push((format!("{prefix}.b2"), &self.b2));
    }

    /// Appends mutable `(name, matrix)` pairs under `prefix`.
    pub fn collect_mut<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Matrix)>) {
        out.push((format!("{prefix}.w1"), &mut self.w1));
        out.push((format!("{prefix}.b1"), &mut self.b1));
        out.push((format!("{prefix}.w2"), &mut self.w2));
        out.push((format!("{prefix}.b2"), &mut self.b2));
    }

    /// Runs the feed-forward block on `x`.
    pub fn forward(&self, g: &mut Graph, bindings: &ParamBindings, prefix: &str, x: Var) -> Var {
        let w1 = bindings.var(&format!("{prefix}.w1"));
        let b1 = bindings.var(&format!("{prefix}.b1"));
        let w2 = bindings.var(&format!("{prefix}.w2"));
        let b2 = bindings.var(&format!("{prefix}.b2"));
        let h = g.matmul(x, w1);
        let h = g.add_row_broadcast(h, b1);
        let h = g.gelu(h);
        let out = g.matmul(h, w2);
        g.add_row_broadcast(out, b2)
    }
}

/// Learnable layer-normalisation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNormParams {
    /// Scale, `1 x hidden`.
    pub gamma: Matrix,
    /// Shift, `1 x hidden`.
    pub beta: Matrix,
}

impl LayerNormParams {
    /// Creates identity layer-norm parameters (`gamma = 1`, `beta = 0`).
    pub fn new(hidden: usize) -> Self {
        Self {
            gamma: Matrix::filled(1, hidden, 1.0),
            beta: Matrix::zeros(1, hidden),
        }
    }

    /// Appends `(name, matrix)` pairs under `prefix`.
    pub fn collect<'a>(&'a self, prefix: &str, out: &mut Vec<(String, &'a Matrix)>) {
        out.push((format!("{prefix}.gamma"), &self.gamma));
        out.push((format!("{prefix}.beta"), &self.beta));
    }

    /// Appends mutable `(name, matrix)` pairs under `prefix`.
    pub fn collect_mut<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Matrix)>) {
        out.push((format!("{prefix}.gamma"), &mut self.gamma));
        out.push((format!("{prefix}.beta"), &mut self.beta));
    }

    /// Applies layer normalisation to `x`.
    pub fn forward(&self, g: &mut Graph, bindings: &ParamBindings, prefix: &str, x: Var) -> Var {
        let gamma = bindings.var(&format!("{prefix}.gamma"));
        let beta = bindings.var(&format!("{prefix}.beta"));
        g.layer_norm_rows(x, gamma, beta)
    }
}

/// One Transformer encoder layer (post-norm: `LN(x + Sublayer(x))`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderLayer {
    /// Self-attention block.
    pub attn: MultiHeadAttention,
    /// Normalisation after attention.
    pub norm1: LayerNormParams,
    /// Feed-forward block.
    pub ffn: FeedForward,
    /// Normalisation after the feed-forward block.
    pub norm2: LayerNormParams,
}

impl EncoderLayer {
    /// Creates a randomly initialised encoder layer.
    pub fn new<R: Rng + ?Sized>(hidden: usize, heads: usize, ffn_dim: usize, rng: &mut R) -> Self {
        Self {
            attn: MultiHeadAttention::new(hidden, heads, rng),
            norm1: LayerNormParams::new(hidden),
            ffn: FeedForward::new(hidden, ffn_dim, rng),
            norm2: LayerNormParams::new(hidden),
        }
    }

    /// Appends `(name, matrix)` pairs under `prefix`.
    pub fn collect<'a>(&'a self, prefix: &str, out: &mut Vec<(String, &'a Matrix)>) {
        self.attn.collect(&format!("{prefix}.attn"), out);
        self.norm1.collect(&format!("{prefix}.norm1"), out);
        self.ffn.collect(&format!("{prefix}.ffn"), out);
        self.norm2.collect(&format!("{prefix}.norm2"), out);
    }

    /// Appends mutable `(name, matrix)` pairs under `prefix`.
    pub fn collect_mut<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Matrix)>) {
        self.attn.collect_mut(&format!("{prefix}.attn"), out);
        self.norm1.collect_mut(&format!("{prefix}.norm1"), out);
        self.ffn.collect_mut(&format!("{prefix}.ffn"), out);
        self.norm2.collect_mut(&format!("{prefix}.norm2"), out);
    }

    /// Runs the encoder layer on `x` (`causal` restricts self-attention to
    /// previous positions, as needed for language modelling).
    pub fn forward(
        &self,
        g: &mut Graph,
        bindings: &ParamBindings,
        prefix: &str,
        x: Var,
        causal: bool,
    ) -> Var {
        let attn_out = self
            .attn
            .forward(g, bindings, &format!("{prefix}.attn"), x, x, causal);
        let residual1 = g.add(x, attn_out);
        let x1 = self
            .norm1
            .forward(g, bindings, &format!("{prefix}.norm1"), residual1);
        let ffn_out = self.ffn.forward(g, bindings, &format!("{prefix}.ffn"), x1);
        let residual2 = g.add(x1, ffn_out);
        self.norm2
            .forward(g, bindings, &format!("{prefix}.norm2"), residual2)
    }
}

/// One Transformer decoder layer: causal self-attention, cross-attention to
/// the encoder output, then a feed-forward block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoderLayer {
    /// Causal self-attention block.
    pub self_attn: MultiHeadAttention,
    /// Normalisation after self-attention.
    pub norm1: LayerNormParams,
    /// Cross-attention block over the encoder memory.
    pub cross_attn: MultiHeadAttention,
    /// Normalisation after cross-attention.
    pub norm2: LayerNormParams,
    /// Feed-forward block.
    pub ffn: FeedForward,
    /// Normalisation after the feed-forward block.
    pub norm3: LayerNormParams,
}

impl DecoderLayer {
    /// Creates a randomly initialised decoder layer.
    pub fn new<R: Rng + ?Sized>(hidden: usize, heads: usize, ffn_dim: usize, rng: &mut R) -> Self {
        Self {
            self_attn: MultiHeadAttention::new(hidden, heads, rng),
            norm1: LayerNormParams::new(hidden),
            cross_attn: MultiHeadAttention::new(hidden, heads, rng),
            norm2: LayerNormParams::new(hidden),
            ffn: FeedForward::new(hidden, ffn_dim, rng),
            norm3: LayerNormParams::new(hidden),
        }
    }

    /// Appends `(name, matrix)` pairs under `prefix`.
    pub fn collect<'a>(&'a self, prefix: &str, out: &mut Vec<(String, &'a Matrix)>) {
        self.self_attn.collect(&format!("{prefix}.self_attn"), out);
        self.norm1.collect(&format!("{prefix}.norm1"), out);
        self.cross_attn
            .collect(&format!("{prefix}.cross_attn"), out);
        self.norm2.collect(&format!("{prefix}.norm2"), out);
        self.ffn.collect(&format!("{prefix}.ffn"), out);
        self.norm3.collect(&format!("{prefix}.norm3"), out);
    }

    /// Appends mutable `(name, matrix)` pairs under `prefix`.
    pub fn collect_mut<'a>(&'a mut self, prefix: &str, out: &mut Vec<(String, &'a mut Matrix)>) {
        self.self_attn
            .collect_mut(&format!("{prefix}.self_attn"), out);
        self.norm1.collect_mut(&format!("{prefix}.norm1"), out);
        self.cross_attn
            .collect_mut(&format!("{prefix}.cross_attn"), out);
        self.norm2.collect_mut(&format!("{prefix}.norm2"), out);
        self.ffn.collect_mut(&format!("{prefix}.ffn"), out);
        self.norm3.collect_mut(&format!("{prefix}.norm3"), out);
    }

    /// Runs the decoder layer on `x` with cross-attention over `memory`.
    pub fn forward(
        &self,
        g: &mut Graph,
        bindings: &ParamBindings,
        prefix: &str,
        x: Var,
        memory: Var,
    ) -> Var {
        let self_out =
            self.self_attn
                .forward(g, bindings, &format!("{prefix}.self_attn"), x, x, true);
        let residual1 = g.add(x, self_out);
        let x1 = self
            .norm1
            .forward(g, bindings, &format!("{prefix}.norm1"), residual1);
        let cross_out = self.cross_attn.forward(
            g,
            bindings,
            &format!("{prefix}.cross_attn"),
            x1,
            memory,
            false,
        );
        let residual2 = g.add(x1, cross_out);
        let x2 = self
            .norm2
            .forward(g, bindings, &format!("{prefix}.norm2"), residual2);
        let ffn_out = self.ffn.forward(g, bindings, &format!("{prefix}.ffn"), x2);
        let residual3 = g.add(x2, ffn_out);
        self.norm3
            .forward(g, bindings, &format!("{prefix}.norm3"), residual3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_bias_blocks_future_positions() {
        let bias = causal_bias(3, 3);
        assert_eq!(bias.get(0, 0), 0.0);
        assert_eq!(bias.get(1, 0), 0.0);
        assert!(bias.get(0, 2) < -1e8);
        assert!(bias.get(1, 2) < -1e8);
    }

    #[test]
    fn attention_collect_orders_match() {
        let mut rng = rand::rngs::mock::StepRng::new(1, 7);
        let mut attn = MultiHeadAttention::new(8, 2, &mut rng);
        let mut names_a = Vec::new();
        attn.collect("x", &mut names_a);
        let names_a: Vec<String> = names_a.into_iter().map(|(n, _)| n).collect();
        let mut names_b = Vec::new();
        attn.collect_mut("x", &mut names_b);
        let names_b: Vec<String> = names_b.into_iter().map(|(n, _)| n).collect();
        assert_eq!(names_a, names_b);
        assert_eq!(names_a.len(), 8);
    }
}
