//! The two models the paper prunes: a small encoder–decoder Transformer
//! language model (WikiText-2 experiments) and a DistilBERT-style sequence
//! classifier/regressor (GLUE experiments).

use crate::config::TransformerConfig;
use crate::layers::{DecoderLayer, EncoderLayer};
use crate::masks::MaskSet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt3_data::{Example, Label, LmBatch};
use rt3_tensor::{Graph, Matrix, Var};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Handles to the model parameters registered in a [`Graph`] for one forward
/// pass: the raw leaves (which receive gradients) and the *effective*
/// variables actually used by the layers (masked when a pruning mask exists).
#[derive(Debug)]
pub struct ParamBindings {
    order: Vec<String>,
    leaves: HashMap<String, Var>,
    effective: HashMap<String, Var>,
}

impl ParamBindings {
    /// Builds bindings for `parameters`, applying any masks in `masks`.
    pub fn bind(g: &mut Graph, parameters: &[(String, &Matrix)], masks: Option<&MaskSet>) -> Self {
        let mut order = Vec::with_capacity(parameters.len());
        let mut leaves = HashMap::with_capacity(parameters.len());
        let mut effective = HashMap::with_capacity(parameters.len());
        for (name, value) in parameters {
            let leaf = g.leaf((*value).clone());
            let eff = match masks.and_then(|m| m.get(name)) {
                Some(mask) => {
                    assert_eq!(
                        mask.shape(),
                        value.shape(),
                        "mask shape mismatch for parameter {}",
                        name
                    );
                    g.mul_const(leaf, mask)
                }
                None => leaf,
            };
            order.push(name.clone());
            leaves.insert(name.clone(), leaf);
            effective.insert(name.clone(), eff);
        }
        Self {
            order,
            leaves,
            effective,
        }
    }

    /// The effective (possibly masked) variable for `name`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter was not bound.
    pub fn var(&self, name: &str) -> Var {
        *self
            .effective
            .get(name)
            .unwrap_or_else(|| panic!("parameter {} was not bound", name))
    }

    /// The raw leaf variable (gradient target) for `name`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter was not bound.
    pub fn leaf(&self, name: &str) -> Var {
        *self
            .leaves
            .get(name)
            .unwrap_or_else(|| panic!("parameter {} was not bound", name))
    }

    /// Parameter names in binding order (identical to the model's parameter
    /// order).
    pub fn names(&self) -> &[String] {
        &self.order
    }
}

/// Common interface of the prunable models.
pub trait Model {
    /// The model's configuration.
    fn config(&self) -> &TransformerConfig;

    /// All parameters as `(name, matrix)` pairs in a stable order.
    fn parameters(&self) -> Vec<(String, &Matrix)>;

    /// All parameters mutably, in the same order as [`Model::parameters`].
    fn parameters_mut(&mut self) -> Vec<(String, &mut Matrix)>;

    /// Names of the parameters eligible for pruning: the two-dimensional
    /// projection weights (attention, feed-forward and output heads).
    /// Embeddings, biases and layer-norm parameters are never pruned, which
    /// matches the paper's setup.
    fn prunable_parameter_names(&self) -> Vec<String> {
        self.parameters()
            .iter()
            .filter(|(name, m)| {
                m.rows() > 1
                    && m.cols() > 1
                    && !name.contains("embedding")
                    && !name.contains("norm")
            })
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|(_, m)| m.len()).sum()
    }

    /// A named parameter, if it exists.
    fn parameter(&self, name: &str) -> Option<&Matrix> {
        self.parameters()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m)
    }

    /// Registers every parameter in `g`, applying `masks`.
    fn bind(&self, g: &mut Graph, masks: Option<&MaskSet>) -> ParamBindings {
        ParamBindings::bind(g, &self.parameters(), masks)
    }

    /// Overwrites each masked parameter with its masked value (permanently
    /// zeroing pruned weights). Used when a pruning decision is frozen into
    /// the backbone model.
    fn apply_masks_permanently(&mut self, masks: &MaskSet) {
        for (name, param) in self.parameters_mut() {
            if let Some(mask) = masks.get(&name) {
                assert_eq!(
                    mask.shape(),
                    param.shape(),
                    "mask shape mismatch for {}",
                    name
                );
                *param = param.zip(mask, |w, m| if m != 0.0 { w } else { 0.0 });
            }
        }
    }
}

/// Encoder–decoder Transformer language model (the paper's WikiText-2 model:
/// two encoder layers and one decoder layer in the default preset).
///
/// # Examples
///
/// ```
/// use rt3_transformer::{Model, TransformerConfig, TransformerLm};
///
/// let model = TransformerLm::new(TransformerConfig::tiny(32), 0);
/// assert!(model.num_parameters() > 0);
/// assert!(!model.prunable_parameter_names().is_empty());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerLm {
    config: TransformerConfig,
    token_embedding: Matrix,
    pos_embedding: Matrix,
    encoders: Vec<EncoderLayer>,
    decoders: Vec<DecoderLayer>,
    lm_head_w: Matrix,
    lm_head_b: Matrix,
}

impl TransformerLm {
    /// Creates a randomly initialised model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: TransformerConfig, seed: u64) -> Self {
        config
            .validate()
            .expect("invalid transformer configuration");
        let mut rng = StdRng::seed_from_u64(seed);
        let h = config.hidden_dim;
        let encoders = (0..config.num_encoder_layers)
            .map(|_| EncoderLayer::new(h, config.num_heads, config.ffn_dim, &mut rng))
            .collect();
        let decoders = (0..config.num_decoder_layers)
            .map(|_| DecoderLayer::new(h, config.num_heads, config.ffn_dim, &mut rng))
            .collect();
        Self {
            token_embedding: Matrix::xavier(config.vocab_size, h, &mut rng),
            pos_embedding: Matrix::xavier(config.max_seq_len, h, &mut rng),
            lm_head_w: Matrix::xavier(h, config.vocab_size, &mut rng),
            lm_head_b: Matrix::zeros(1, config.vocab_size),
            encoders,
            decoders,
            config,
        }
    }

    /// Computes next-token logits (`seq_len x vocab`) for one token sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty, longer than `max_seq_len`, or
    /// contains out-of-vocabulary ids.
    pub fn logits(&self, g: &mut Graph, bindings: &ParamBindings, tokens: &[usize]) -> Var {
        assert!(!tokens.is_empty(), "token sequence must not be empty");
        assert!(
            tokens.len() <= self.config.max_seq_len,
            "sequence length {} exceeds max_seq_len {}",
            tokens.len(),
            self.config.max_seq_len
        );
        let tok_table = bindings.var("token_embedding");
        let pos_table = bindings.var("pos_embedding");
        let tok = g.gather_rows(tok_table, tokens);
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let pos = g.gather_rows(pos_table, &positions);
        let mut x = g.add(tok, pos);
        for (i, enc) in self.encoders.iter().enumerate() {
            x = enc.forward(g, bindings, &format!("encoder.{i}"), x, true);
        }
        let memory = x;
        for (i, dec) in self.decoders.iter().enumerate() {
            x = dec.forward(g, bindings, &format!("decoder.{i}"), x, memory);
        }
        let head_w = bindings.var("lm_head.w");
        let head_b = bindings.var("lm_head.b");
        let logits = g.matmul(x, head_w);
        g.add_row_broadcast(logits, head_b)
    }

    /// Mean next-token cross-entropy loss over one batch.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty.
    pub fn batch_loss(&self, g: &mut Graph, bindings: &ParamBindings, batch: &LmBatch) -> Var {
        assert!(!batch.is_empty(), "batch must not be empty");
        let mut losses = Vec::with_capacity(batch.len());
        for (input, target) in batch.inputs.iter().zip(&batch.targets) {
            let logits = self.logits(g, bindings, input);
            losses.push(g.cross_entropy_logits(logits, target));
        }
        let mut total = losses[0];
        for &l in &losses[1..] {
            total = g.add(total, l);
        }
        g.scale(total, 1.0 / losses.len() as f32)
    }

    /// Greedy next-token predictions for one sequence (no gradient tracking).
    pub fn predict(&self, tokens: &[usize], masks: Option<&MaskSet>) -> Vec<usize> {
        let mut g = Graph::new();
        let bindings = self.bind(&mut g, masks);
        let logits = self.logits(&mut g, &bindings, tokens);
        let values = g.value(logits);
        (0..values.rows()).map(|r| values.row_argmax(r)).collect()
    }
}

impl Model for TransformerLm {
    fn config(&self) -> &TransformerConfig {
        &self.config
    }

    fn parameters(&self) -> Vec<(String, &Matrix)> {
        let mut out = Vec::new();
        out.push(("token_embedding".to_string(), &self.token_embedding));
        out.push(("pos_embedding".to_string(), &self.pos_embedding));
        for (i, enc) in self.encoders.iter().enumerate() {
            enc.collect(&format!("encoder.{i}"), &mut out);
        }
        for (i, dec) in self.decoders.iter().enumerate() {
            dec.collect(&format!("decoder.{i}"), &mut out);
        }
        out.push(("lm_head.w".to_string(), &self.lm_head_w));
        out.push(("lm_head.b".to_string(), &self.lm_head_b));
        out
    }

    fn parameters_mut(&mut self) -> Vec<(String, &mut Matrix)> {
        let mut out = Vec::new();
        out.push(("token_embedding".to_string(), &mut self.token_embedding));
        out.push(("pos_embedding".to_string(), &mut self.pos_embedding));
        for (i, enc) in self.encoders.iter_mut().enumerate() {
            enc.collect_mut(&format!("encoder.{i}"), &mut out);
        }
        for (i, dec) in self.decoders.iter_mut().enumerate() {
            dec.collect_mut(&format!("decoder.{i}"), &mut out);
        }
        out.push(("lm_head.w".to_string(), &mut self.lm_head_w));
        out.push(("lm_head.b".to_string(), &mut self.lm_head_b));
        out
    }
}

/// DistilBERT-style encoder-only model with a pooled classification or
/// regression head, used for the GLUE-style tasks.
///
/// # Examples
///
/// ```
/// use rt3_transformer::{Model, SequenceClassifier, TransformerConfig};
///
/// let model = SequenceClassifier::new(TransformerConfig::tiny(64), 2, 0);
/// assert_eq!(model.num_outputs(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequenceClassifier {
    config: TransformerConfig,
    token_embedding: Matrix,
    pos_embedding: Matrix,
    encoders: Vec<EncoderLayer>,
    head_w: Matrix,
    head_b: Matrix,
    num_outputs: usize,
}

impl SequenceClassifier {
    /// Creates a randomly initialised classifier with `num_outputs` outputs
    /// (use `1` for regression tasks such as STS-B).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `num_outputs == 0`.
    pub fn new(config: TransformerConfig, num_outputs: usize, seed: u64) -> Self {
        config
            .validate()
            .expect("invalid transformer configuration");
        assert!(num_outputs > 0, "at least one output is required");
        let mut rng = StdRng::seed_from_u64(seed);
        let h = config.hidden_dim;
        let encoders = (0..config.num_encoder_layers.max(1))
            .map(|_| EncoderLayer::new(h, config.num_heads, config.ffn_dim, &mut rng))
            .collect();
        Self {
            token_embedding: Matrix::xavier(config.vocab_size, h, &mut rng),
            pos_embedding: Matrix::xavier(config.max_seq_len, h, &mut rng),
            head_w: Matrix::xavier(h, num_outputs, &mut rng),
            head_b: Matrix::zeros(1, num_outputs),
            encoders,
            config,
            num_outputs,
        }
    }

    /// Number of output logits (1 for regression).
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Pooled output logits (`1 x num_outputs`) for one token sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or too long.
    pub fn logits(&self, g: &mut Graph, bindings: &ParamBindings, tokens: &[usize]) -> Var {
        assert!(!tokens.is_empty(), "token sequence must not be empty");
        assert!(
            tokens.len() <= self.config.max_seq_len,
            "sequence length {} exceeds max_seq_len {}",
            tokens.len(),
            self.config.max_seq_len
        );
        let tok_table = bindings.var("token_embedding");
        let pos_table = bindings.var("pos_embedding");
        let tok = g.gather_rows(tok_table, tokens);
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let pos = g.gather_rows(pos_table, &positions);
        let mut x = g.add(tok, pos);
        for (i, enc) in self.encoders.iter().enumerate() {
            x = enc.forward(g, bindings, &format!("encoder.{i}"), x, false);
        }
        // mean pooling over positions
        let pool = g.constant(Matrix::filled(1, tokens.len(), 1.0 / tokens.len() as f32));
        let pooled = g.matmul(pool, x);
        let head_w = bindings.var("head.w");
        let head_b = bindings.var("head.b");
        let logits = g.matmul(pooled, head_w);
        g.add_row_broadcast(logits, head_b)
    }

    /// Mean loss over a batch of examples: cross-entropy for classification,
    /// mean-squared error (on scores scaled to `[0, 1]`) for regression.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty.
    pub fn batch_loss(&self, g: &mut Graph, bindings: &ParamBindings, examples: &[Example]) -> Var {
        assert!(!examples.is_empty(), "batch must not be empty");
        let mut losses = Vec::with_capacity(examples.len());
        for example in examples {
            let logits = self.logits(g, bindings, &example.tokens);
            let loss = match example.label {
                Label::Class(c) => g.cross_entropy_logits(logits, &[c]),
                Label::Score(s) => {
                    let target = Matrix::from_rows(&[vec![s / 5.0]]);
                    g.mse_loss(logits, &target)
                }
            };
            losses.push(loss);
        }
        let mut total = losses[0];
        for &l in &losses[1..] {
            total = g.add(total, l);
        }
        g.scale(total, 1.0 / losses.len() as f32)
    }

    /// Predicted class (argmax of the logits) for one sequence.
    pub fn predict_class(&self, tokens: &[usize], masks: Option<&MaskSet>) -> usize {
        let mut g = Graph::new();
        let bindings = self.bind(&mut g, masks);
        let logits = self.logits(&mut g, &bindings, tokens);
        g.value(logits).row_argmax(0)
    }

    /// Predicted regression score (rescaled back to `[0, 5]`).
    pub fn predict_score(&self, tokens: &[usize], masks: Option<&MaskSet>) -> f32 {
        let mut g = Graph::new();
        let bindings = self.bind(&mut g, masks);
        let logits = self.logits(&mut g, &bindings, tokens);
        g.value(logits).get(0, 0) * 5.0
    }
}

impl Model for SequenceClassifier {
    fn config(&self) -> &TransformerConfig {
        &self.config
    }

    fn parameters(&self) -> Vec<(String, &Matrix)> {
        let mut out = Vec::new();
        out.push(("token_embedding".to_string(), &self.token_embedding));
        out.push(("pos_embedding".to_string(), &self.pos_embedding));
        for (i, enc) in self.encoders.iter().enumerate() {
            enc.collect(&format!("encoder.{i}"), &mut out);
        }
        out.push(("head.w".to_string(), &self.head_w));
        out.push(("head.b".to_string(), &self.head_b));
        out
    }

    fn parameters_mut(&mut self) -> Vec<(String, &mut Matrix)> {
        let mut out = Vec::new();
        out.push(("token_embedding".to_string(), &mut self.token_embedding));
        out.push(("pos_embedding".to_string(), &mut self.pos_embedding));
        for (i, enc) in self.encoders.iter_mut().enumerate() {
            enc.collect_mut(&format!("encoder.{i}"), &mut out);
        }
        out.push(("head.w".to_string(), &mut self.head_w));
        out.push(("head.b".to_string(), &mut self.head_b));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lm() -> TransformerLm {
        TransformerLm::new(TransformerConfig::tiny(32), 42)
    }

    #[test]
    fn parameters_and_parameters_mut_agree_on_order() {
        let mut model = tiny_lm();
        let names: Vec<String> = model.parameters().iter().map(|(n, _)| n.clone()).collect();
        let names_mut: Vec<String> = model
            .parameters_mut()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(names, names_mut);
        assert!(names.contains(&"encoder.0.attn.wq".to_string()));
        assert!(names.contains(&"decoder.0.cross_attn.wo".to_string()));
        assert!(names.contains(&"lm_head.w".to_string()));
    }

    #[test]
    fn prunable_parameters_exclude_embeddings_norms_and_biases() {
        let model = tiny_lm();
        let prunable = model.prunable_parameter_names();
        assert!(prunable.iter().all(|n| !n.contains("embedding")));
        assert!(prunable.iter().all(|n| !n.contains("norm")));
        assert!(prunable.iter().all(|n| !n.ends_with('b')
            && !n.ends_with("bq")
            && !n.ends_with("bk")
            && !n.ends_with("bv")
            && !n.ends_with("bo")));
        assert!(prunable.contains(&"encoder.0.ffn.w1".to_string()));
        assert!(prunable.contains(&"lm_head.w".to_string()));
    }

    #[test]
    fn lm_logits_have_vocab_width() {
        let model = tiny_lm();
        let mut g = Graph::new();
        let bindings = model.bind(&mut g, None);
        let logits = model.logits(&mut g, &bindings, &[1, 2, 3, 4]);
        assert_eq!(g.value(logits).shape(), (4, 32));
    }

    #[test]
    fn lm_loss_decreases_with_one_gradient_step_on_same_batch() {
        use rt3_tensor::{Optimizer, Sgd};
        let mut model = tiny_lm();
        let batch = LmBatch {
            inputs: vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]],
            targets: vec![vec![2, 3, 4, 5], vec![6, 7, 8, 9]],
        };
        let loss_before;
        {
            let mut g = Graph::new();
            let bindings = model.bind(&mut g, None);
            let loss = model.batch_loss(&mut g, &bindings, &batch);
            loss_before = g.scalar(loss);
            g.backward(loss);
            let grads: Vec<Matrix> = bindings
                .names()
                .iter()
                .map(|n| g.grad(bindings.leaf(n)).clone())
                .collect();
            let mut opt = Sgd::new(0.5);
            for (slot, ((name, param), grad)) in
                model.parameters_mut().into_iter().zip(grads).enumerate()
            {
                let _ = name;
                opt.step(slot, param, &grad);
            }
        }
        let mut g = Graph::new();
        let bindings = model.bind(&mut g, None);
        let loss = model.batch_loss(&mut g, &bindings, &batch);
        let loss_after = g.scalar(loss);
        assert!(
            loss_after < loss_before,
            "loss should decrease: {} -> {}",
            loss_before,
            loss_after
        );
    }

    #[test]
    fn masked_weights_receive_no_gradient() {
        let model = tiny_lm();
        let mut masks = MaskSet::new();
        let shape = model.parameter("encoder.0.ffn.w1").unwrap().shape();
        masks.insert("encoder.0.ffn.w1", Matrix::zeros(shape.0, shape.1));
        let mut g = Graph::new();
        let bindings = model.bind(&mut g, Some(&masks));
        let batch = LmBatch {
            inputs: vec![vec![1, 2, 3]],
            targets: vec![vec![2, 3, 4]],
        };
        let loss = model.batch_loss(&mut g, &bindings, &batch);
        g.backward(loss);
        let grad = g.grad(bindings.leaf("encoder.0.ffn.w1"));
        assert!(grad.as_slice().iter().all(|&x| x == 0.0));
        // an unmasked weight still learns
        let other = g.grad(bindings.leaf("encoder.0.attn.wq"));
        assert!(other.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn apply_masks_permanently_zeroes_weights() {
        let mut model = tiny_lm();
        let shape = model.parameter("encoder.0.attn.wq").unwrap().shape();
        let mut mask = Matrix::zeros(shape.0, shape.1);
        mask.set(0, 0, 1.0);
        let mut masks = MaskSet::new();
        masks.insert("encoder.0.attn.wq", mask);
        model.apply_masks_permanently(&masks);
        let w = model.parameter("encoder.0.attn.wq").unwrap();
        assert_eq!(w.count_nonzero(), 1);
    }

    #[test]
    fn classifier_logits_shape_and_prediction_range() {
        let model = SequenceClassifier::new(TransformerConfig::tiny(64), 3, 7);
        let mut g = Graph::new();
        let bindings = model.bind(&mut g, None);
        let logits = model.logits(&mut g, &bindings, &[5, 6, 7, 8, 9]);
        assert_eq!(g.value(logits).shape(), (1, 3));
        let class = model.predict_class(&[5, 6, 7, 8, 9], None);
        assert!(class < 3);
    }

    #[test]
    fn classifier_regression_loss_uses_scaled_score() {
        let model = SequenceClassifier::new(TransformerConfig::tiny(64), 1, 7);
        let mut g = Graph::new();
        let bindings = model.bind(&mut g, None);
        let examples = vec![Example {
            tokens: vec![2, 3, 4, 5],
            label: Label::Score(2.5),
        }];
        let loss = model.batch_loss(&mut g, &bindings, &examples);
        assert!(g.scalar(loss).is_finite());
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq_len")]
    fn lm_rejects_overlong_sequences() {
        let model = tiny_lm();
        let mut g = Graph::new();
        let bindings = model.bind(&mut g, None);
        let tokens = vec![1usize; 100];
        let _ = model.logits(&mut g, &bindings, &tokens);
    }
}
