//! Training and evaluation loops for the language model and the sequence
//! classifier, with optional weight masks (masked fine-tuning is how both
//! the Level-1 BP decision and the Level-2 pattern sets are trained).

use crate::masks::MaskSet;
use crate::model::{Model, SequenceClassifier, TransformerLm};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rt3_data::{
    accuracy, f1_score, lm_batches, matthews_correlation, spearman_correlation, Label,
    MarkovCorpus, MetricKind, TaskDataset,
};
use rt3_tensor::{Adam, Graph, Matrix, Optimizer};
use serde::{Deserialize, Serialize};

/// Options shared by the training loops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Sequences (or examples) per gradient step.
    pub batch_size: usize,
    /// Sequence length for language-model batching.
    pub seq_len: usize,
    /// Optional cap on the number of batches per epoch (keeps the RL search
    /// loop fast); `None` uses every batch.
    pub max_batches_per_epoch: Option<usize>,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 2,
            learning_rate: 5e-3,
            batch_size: 8,
            seq_len: 12,
            max_batches_per_epoch: None,
            seed: 0,
        }
    }
}

impl TrainOptions {
    /// A very small budget used inside search loops (one epoch, few batches).
    pub fn quick() -> Self {
        Self {
            epochs: 1,
            max_batches_per_epoch: Some(8),
            ..Self::default()
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss over the final epoch.
    pub final_loss: f32,
    /// Evaluation metric after training (next-token accuracy for the LM,
    /// task metric for the classifier).
    pub metric: f64,
    /// Number of gradient steps taken.
    pub steps: usize,
}

fn apply_gradients<M: Model>(
    model: &mut M,
    graph: &Graph,
    bindings: &crate::model::ParamBindings,
    optimizer: &mut dyn Optimizer,
) {
    let grads: Vec<Matrix> = bindings
        .names()
        .iter()
        .map(|name| graph.grad(bindings.leaf(name)).clone())
        .collect();
    for (slot, ((name, param), grad)) in model.parameters_mut().into_iter().zip(grads).enumerate() {
        debug_assert_eq!(name, bindings.names()[slot]);
        optimizer.step(slot, param, &grad);
    }
}

/// Trains the language model on the synthetic corpus and returns the final
/// loss and validation next-token accuracy.
///
/// # Panics
///
/// Panics if the corpus is too short to produce a single batch.
pub fn train_lm(
    model: &mut TransformerLm,
    corpus: &MarkovCorpus,
    options: &TrainOptions,
    masks: Option<&MaskSet>,
) -> TrainReport {
    let mut batches = lm_batches(corpus.train(), options.seq_len, options.batch_size);
    assert!(!batches.is_empty(), "corpus too short for one batch");
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut optimizer = Adam::new(options.learning_rate);
    let mut final_loss = f32::NAN;
    let mut steps = 0;
    for _ in 0..options.epochs {
        batches.shuffle(&mut rng);
        let limit = options.max_batches_per_epoch.unwrap_or(batches.len());
        let mut epoch_loss = 0.0;
        let mut used = 0;
        for batch in batches.iter().take(limit) {
            let mut g = Graph::new();
            let bindings = model.bind(&mut g, masks);
            let loss = model.batch_loss(&mut g, &bindings, batch);
            epoch_loss += g.scalar(loss);
            g.backward(loss);
            apply_gradients(model, &g, &bindings, &mut optimizer);
            used += 1;
            steps += 1;
        }
        final_loss = epoch_loss / used.max(1) as f32;
    }
    let metric = evaluate_lm(model, corpus, options.seq_len, masks);
    TrainReport {
        final_loss,
        metric,
        steps,
    }
}

/// Next-token prediction accuracy of the language model on the validation
/// stream.
pub fn evaluate_lm(
    model: &TransformerLm,
    corpus: &MarkovCorpus,
    seq_len: usize,
    masks: Option<&MaskSet>,
) -> f64 {
    let batches = lm_batches(corpus.valid(), seq_len, 1);
    let mut correct = 0usize;
    let mut total = 0usize;
    for batch in &batches {
        for (input, target) in batch.inputs.iter().zip(&batch.targets) {
            let predictions = model.predict(input, masks);
            for (p, t) in predictions.iter().zip(target) {
                if p == t {
                    correct += 1;
                }
                total += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Trains the sequence classifier on a synthetic GLUE-style task and returns
/// the final loss and development-set metric.
///
/// # Panics
///
/// Panics if the dataset has no training examples.
pub fn train_classifier(
    model: &mut SequenceClassifier,
    dataset: &TaskDataset,
    options: &TrainOptions,
    masks: Option<&MaskSet>,
) -> TrainReport {
    assert!(
        !dataset.train().is_empty(),
        "dataset has no training examples"
    );
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut optimizer = Adam::new(options.learning_rate);
    let mut order: Vec<usize> = (0..dataset.train().len()).collect();
    let mut final_loss = f32::NAN;
    let mut steps = 0;
    for _ in 0..options.epochs {
        order.shuffle(&mut rng);
        let limit = options
            .max_batches_per_epoch
            .map(|b| b * options.batch_size)
            .unwrap_or(order.len())
            .min(order.len());
        let mut epoch_loss = 0.0;
        let mut used = 0;
        for chunk in order[..limit].chunks(options.batch_size) {
            let examples: Vec<_> = chunk.iter().map(|&i| dataset.train()[i].clone()).collect();
            let mut g = Graph::new();
            let bindings = model.bind(&mut g, masks);
            let loss = model.batch_loss(&mut g, &bindings, &examples);
            epoch_loss += g.scalar(loss);
            g.backward(loss);
            apply_gradients(model, &g, &bindings, &mut optimizer);
            used += 1;
            steps += 1;
        }
        final_loss = epoch_loss / used.max(1) as f32;
    }
    let metric = evaluate_classifier(model, dataset, masks);
    TrainReport {
        final_loss,
        metric,
        steps,
    }
}

/// Evaluates the classifier on the development split with the task's own
/// metric (accuracy, F1, Matthews correlation or Spearman correlation).
pub fn evaluate_classifier(
    model: &SequenceClassifier,
    dataset: &TaskDataset,
    masks: Option<&MaskSet>,
) -> f64 {
    let metric = dataset.task().metric();
    if dataset.dev().is_empty() {
        return 0.0;
    }
    match metric {
        MetricKind::SpearmanCorrelation => {
            let mut predicted = Vec::with_capacity(dataset.dev().len());
            let mut actual = Vec::with_capacity(dataset.dev().len());
            for e in dataset.dev() {
                predicted.push(model.predict_score(&e.tokens, masks) as f64);
                actual.push(match e.label {
                    Label::Score(s) => s as f64,
                    Label::Class(c) => c as f64,
                });
            }
            spearman_correlation(&predicted, &actual)
        }
        _ => {
            let mut predictions = Vec::with_capacity(dataset.dev().len());
            let mut labels = Vec::with_capacity(dataset.dev().len());
            for e in dataset.dev() {
                predictions.push(model.predict_class(&e.tokens, masks));
                labels.push(e.label.class());
            }
            match metric {
                MetricKind::Accuracy => accuracy(&predictions, &labels),
                MetricKind::F1 => f1_score(&predictions, &labels),
                MetricKind::MatthewsCorrelation => matthews_correlation(&predictions, &labels),
                MetricKind::SpearmanCorrelation => unreachable!("handled above"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransformerConfig;
    use rt3_data::{CorpusConfig, GlueTask, TaskConfig};

    #[test]
    fn lm_training_beats_unigram_baseline() {
        let corpus = MarkovCorpus::generate(&CorpusConfig {
            vocab_size: 32,
            train_tokens: 3_000,
            valid_tokens: 400,
            branching: 2,
            seed: 3,
        });
        let mut model = TransformerLm::new(TransformerConfig::tiny(32), 1);
        let options = TrainOptions {
            epochs: 2,
            learning_rate: 5e-3,
            batch_size: 8,
            seq_len: 8,
            max_batches_per_epoch: Some(20),
            seed: 1,
        };
        let report = train_lm(&mut model, &corpus, &options, None);
        assert!(report.steps > 0);
        assert!(
            report.metric > corpus.unigram_baseline_accuracy(),
            "trained accuracy {:.3} should beat unigram baseline {:.3}",
            report.metric,
            corpus.unigram_baseline_accuracy()
        );
    }

    #[test]
    fn classifier_training_beats_majority_baseline() {
        let config = TaskConfig {
            vocab_size: 48,
            seq_len: 10,
            train_examples: 120,
            dev_examples: 60,
            seed: 5,
        };
        let dataset = TaskDataset::generate(GlueTask::Sst2, &config);
        let mut model = SequenceClassifier::new(TransformerConfig::tiny(48), 2, 2);
        let options = TrainOptions {
            epochs: 3,
            learning_rate: 8e-3,
            batch_size: 8,
            seq_len: 10,
            max_batches_per_epoch: None,
            seed: 2,
        };
        let report = train_classifier(&mut model, &dataset, &options, None);
        assert!(
            report.metric > dataset.majority_baseline(),
            "trained metric {:.3} should beat majority baseline {:.3}",
            report.metric,
            dataset.majority_baseline()
        );
    }

    #[test]
    fn masked_training_keeps_pruned_weights_at_zero() {
        let corpus = MarkovCorpus::generate(&CorpusConfig::tiny());
        let mut model = TransformerLm::new(TransformerConfig::tiny(48), 4);
        // fully prune one FFN matrix
        let shape = model.parameter("encoder.0.ffn.w1").unwrap().shape();
        let mut masks = MaskSet::new();
        masks.insert("encoder.0.ffn.w1", Matrix::zeros(shape.0, shape.1));
        model.apply_masks_permanently(&masks);
        let options = TrainOptions {
            epochs: 1,
            max_batches_per_epoch: Some(4),
            seq_len: 8,
            ..TrainOptions::default()
        };
        let _ = train_lm(&mut model, &corpus, &options, Some(&masks));
        let w = model.parameter("encoder.0.ffn.w1").unwrap();
        assert_eq!(w.count_nonzero(), 0, "pruned weights must stay zero");
    }

    #[test]
    fn regression_task_reports_spearman() {
        let config = TaskConfig::tiny();
        let dataset = TaskDataset::generate(GlueTask::StsB, &config);
        let model = SequenceClassifier::new(TransformerConfig::tiny(64), 1, 3);
        let metric = evaluate_classifier(&model, &dataset, None);
        assert!((-1.0..=1.0).contains(&metric));
    }
}
