//! Named weight masks: the bridge between the pruning algorithms and masked
//! training / inference.
//!
//! A [`MaskSet`] maps a parameter name (e.g. `"encoder.0.attn.wq"`) to a
//! binary 0/1 matrix of the same shape. During a forward pass the model
//! multiplies each masked weight by its mask, so pruned positions contribute
//! nothing and receive no gradient — exactly the semantics needed both for
//! Level-1 BP masked fine-tuning and for Level-2 per-pattern-set sub-losses
//! (Fig. 2 of the paper).

use rt3_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A collection of named binary weight masks.
///
/// # Examples
///
/// ```
/// use rt3_transformer::MaskSet;
/// use rt3_tensor::Matrix;
///
/// let mut masks = MaskSet::new();
/// masks.insert("layer.w", Matrix::from_rows(&[vec![1.0, 0.0]]));
/// assert!(masks.get("layer.w").is_some());
/// assert!((masks.overall_sparsity() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MaskSet {
    masks: BTreeMap<String, Matrix>,
}

impl MaskSet {
    /// Creates an empty mask set (no weight is masked).
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) the mask for `name`. Values should be 0.0 or
    /// 1.0; any non-zero value is treated as "keep" by consumers.
    pub fn insert(&mut self, name: impl Into<String>, mask: Matrix) {
        self.masks.insert(name.into(), mask);
    }

    /// The mask for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.masks.get(name)
    }

    /// Number of masked parameters.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Returns `true` if no parameter is masked.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Iterates over `(name, mask)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.masks.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names of all masked parameters, in order.
    pub fn names(&self) -> Vec<&str> {
        self.masks.keys().map(String::as_str).collect()
    }

    /// Combines two mask sets by element-wise AND (a position survives only
    /// if it survives in both). Parameters masked in only one set keep that
    /// set's mask. This is how Level-2 pattern masks compose with the fixed
    /// Level-1 BP mask.
    ///
    /// # Panics
    ///
    /// Panics if a parameter is masked in both sets with different shapes.
    pub fn intersect(&self, other: &MaskSet) -> MaskSet {
        let mut out = self.clone();
        for (name, mask) in other.iter() {
            match out.masks.get_mut(name) {
                Some(existing) => {
                    assert_eq!(
                        existing.shape(),
                        mask.shape(),
                        "mask shape mismatch for {}",
                        name
                    );
                    *existing =
                        existing.zip(mask, |a, b| if a != 0.0 && b != 0.0 { 1.0 } else { 0.0 });
                }
                None => {
                    out.masks.insert(name.to_string(), mask.clone());
                }
            }
        }
        out
    }

    /// Overall sparsity across all masked parameters (weighted by element
    /// count). Returns 0.0 for an empty set.
    pub fn overall_sparsity(&self) -> f64 {
        let total: usize = self.masks.values().map(Matrix::len).sum();
        if total == 0 {
            return 0.0;
        }
        let zeros: usize = self
            .masks
            .values()
            .map(|m| m.len() - m.count_nonzero())
            .sum();
        zeros as f64 / total as f64
    }

    /// Total number of masked-out (pruned) weight elements.
    pub fn pruned_elements(&self) -> usize {
        self.masks
            .values()
            .map(|m| m.len() - m.count_nonzero())
            .sum()
    }

    /// Total number of elements covered by masks.
    pub fn covered_elements(&self) -> usize {
        self.masks.values().map(Matrix::len).sum()
    }
}

impl FromIterator<(String, Matrix)> for MaskSet {
    fn from_iter<T: IntoIterator<Item = (String, Matrix)>>(iter: T) -> Self {
        Self {
            masks: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Matrix)> for MaskSet {
    fn extend<T: IntoIterator<Item = (String, Matrix)>>(&mut self, iter: T) {
        self.masks.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(values: &[f32]) -> Matrix {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    #[test]
    fn sparsity_is_weighted_by_element_count() {
        let mut m = MaskSet::new();
        m.insert("a", mask(&[1.0, 0.0]));
        m.insert("b", mask(&[1.0, 1.0, 1.0, 1.0, 0.0, 0.0]));
        // 3 zeros out of 8 elements
        assert!((m.overall_sparsity() - 3.0 / 8.0).abs() < 1e-9);
        assert_eq!(m.pruned_elements(), 3);
        assert_eq!(m.covered_elements(), 8);
    }

    #[test]
    fn intersect_requires_both_masks_to_keep() {
        let mut a = MaskSet::new();
        a.insert("w", mask(&[1.0, 1.0, 0.0, 0.0]));
        let mut b = MaskSet::new();
        b.insert("w", mask(&[1.0, 0.0, 1.0, 0.0]));
        b.insert("only_b", mask(&[0.0, 1.0]));
        let c = a.intersect(&b);
        assert_eq!(c.get("w").unwrap().as_slice(), &[1.0, 0.0, 0.0, 0.0]);
        assert!(c.get("only_b").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_set_reports_zero_sparsity() {
        assert_eq!(MaskSet::new().overall_sparsity(), 0.0);
        assert!(MaskSet::new().is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let set: MaskSet = vec![("x".to_string(), mask(&[1.0]))].into_iter().collect();
        assert_eq!(set.names(), vec!["x"]);
    }
}
