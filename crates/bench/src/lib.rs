//! # rt3-bench
//!
//! Benchmark harness of the RT3 reproduction: one binary per table and
//! figure of the paper's evaluation section, plus Criterion micro-benchmarks
//! for the sparse kernels, pruning passes, RL search and pattern-set switch.
//!
//! Run e.g. `cargo run -p rt3-bench --bin table3_automl` to regenerate the
//! Table III rows, or `cargo bench --workspace` for the micro-benchmarks.
//! EXPERIMENTS.md records paper-reported vs measured values for each target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a section header for a table/figure reproduction binary.
pub fn print_header(title: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Formats a float as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a number of runs in units of 10^6, as the paper's tables do.
pub fn runs_millions(x: f64) -> String {
    format!("{:.2}e6", x / 1.0e6)
}

/// The standard experiment setup shared by the table binaries: a small live
/// Transformer model (pruning decisions are made on real weight matrices)
/// combined with the paper-scale workload shape used by the latency model.
pub mod setup {
    use rt3_core::Rt3Config;
    use rt3_transformer::{TransformerConfig, TransformerLm};

    /// The live model whose weights drive the pruning decisions.
    pub fn live_model() -> TransformerLm {
        TransformerLm::new(TransformerConfig::paper_transformer(512), 0x52_54)
    }

    /// Configuration for the WikiText-2-style experiments under a timing
    /// constraint in milliseconds.
    pub fn wikitext_config(timing_constraint_ms: f64) -> Rt3Config {
        let mut cfg = Rt3Config::wikitext_default();
        cfg.timing_constraint_ms = timing_constraint_ms;
        cfg.episodes = 40;
        cfg.candidate_sparsities = 6;
        cfg.pattern_space.pattern_size = 8;
        cfg.pattern_space.patterns_per_set = 4;
        cfg
    }

    /// Configuration for the DistilBERT-style GLUE experiments.
    pub fn distilbert_config(timing_constraint_ms: f64) -> Rt3Config {
        let mut cfg = Rt3Config::distilbert_default(timing_constraint_ms);
        cfg.episodes = 40;
        cfg.candidate_sparsities = 6;
        cfg.pattern_space.pattern_size = 8;
        cfg.pattern_space.patterns_per_set = 4;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(runs_millions(2_500_000.0), "2.50e6");
    }

    #[test]
    fn setups_are_valid() {
        assert!(setup::wikitext_config(104.0).validate().is_ok());
        assert!(setup::distilbert_config(200.0).validate().is_ok());
        let _ = setup::live_model();
    }
}
