//! Reproduces Table III: the AutoML results — per-level sparsity, latency,
//! upper-bound (individually trained) accuracy, RT3 (jointly trained)
//! accuracy, the accuracy gap, and the reconfiguration interrupt time — for
//! the WikiText-2-style task (94 ms and 104 ms constraints) and the RTE and
//! STS-B style tasks.

use rt3_bench::{pct, print_header, setup};
use rt3_core::{
    build_search_space, run_level1, run_level2_search, switch_time_comparison, Rt3Config,
    SurrogateEvaluator, TaskProfile,
};
use rt3_transformer::Model;

struct Experiment {
    label: &'static str,
    config: Rt3Config,
    profile: TaskProfile,
    /// Total parameters of the paper-scale model (for the UB reload cost).
    model_parameters: usize,
}

fn main() {
    print_header("Table III: AutoML results for Transformer and DistilBERT");
    let experiments = vec![
        Experiment {
            label: "WikiText-2 (T: 94ms), Transformer",
            config: setup::wikitext_config(94.0),
            profile: TaskProfile::wikitext2(),
            model_parameters: 55_000_000,
        },
        Experiment {
            label: "WikiText-2 (T: 104ms), Transformer",
            config: setup::wikitext_config(104.0),
            profile: TaskProfile::wikitext2(),
            model_parameters: 55_000_000,
        },
        Experiment {
            label: "RTE (T: 200ms), DistilBERT",
            config: setup::distilbert_config(200.0),
            profile: TaskProfile::rte(),
            model_parameters: 66_000_000,
        },
        Experiment {
            label: "STS-B (T: 330ms), DistilBERT",
            config: setup::distilbert_config(330.0),
            profile: TaskProfile::stsb(),
            model_parameters: 66_000_000,
        },
    ];
    let model = setup::live_model();
    for exp in experiments {
        println!();
        println!("--- {} ---", exp.label);
        let mut exp = exp;
        // keep the Eq. (1) accuracy floor below the task's score range
        exp.config.reward.min_accuracy =
            (exp.profile.base_score * 0.6).min(exp.config.reward.min_accuracy);
        let mut evaluator = SurrogateEvaluator::new(exp.profile);
        let backbone = run_level1(&model, &exp.config, &mut evaluator);
        let space = build_search_space(&model, &backbone, &exp.config);
        let outcome = run_level2_search(&model, &backbone, &space, &exp.config, &mut evaluator);
        let Some(best) = outcome.best else {
            println!(
                "no feasible solution under T = {} ms",
                exp.config.timing_constraint_ms
            );
            continue;
        };
        println!("{:<14} {:>10} {:>10} {:>10}", "", "M1", "M2", "M3");
        let row = |name: &str, values: Vec<String>| {
            print!("{:<14}", name);
            for v in values {
                print!(" {:>10}", v);
            }
            println!();
        };
        row(
            "Sparsity",
            best.sparsities.iter().map(|s| pct(*s)).collect(),
        );
        row(
            "Latency (ms)",
            best.latencies_ms
                .iter()
                .map(|l| format!("{:.2}", l))
                .collect(),
        );
        // upper bound: individually tuned models recover a bit more accuracy
        // than the jointly trained shared backbone; the surrogate models this
        // as a fraction of the joint loss being recovered.
        let ub: Vec<f64> = best
            .accuracies
            .iter()
            .map(|a| a + 0.6 * (exp.profile.base_score - a).max(0.0) * 0.05 + 0.008)
            .collect();
        row("UB score", ub.iter().map(|a| pct(*a)).collect());
        row(
            "RT3 score",
            best.accuracies.iter().map(|a| pct(*a)).collect(),
        );
        row(
            "Score gap",
            ub.iter()
                .zip(&best.accuracies)
                .map(|(u, a)| pct(u - a))
                .collect(),
        );
        let switch = switch_time_comparison(
            exp.config.pattern_space.pattern_size.max(100),
            exp.config.pattern_space.patterns_per_set,
            exp.model_parameters,
        );
        println!(
            "Interrupt: UB (full reload) = {:.2} s, RT3 (pattern switch) = {:.2} ms ({:.0}x speedup)",
            switch.upper_bound_switch_ms / 1000.0,
            switch.rt3_switch_ms,
            switch.speedup
        );
        println!(
            "Constraint T = {} ms satisfied by every sub-model: {}",
            exp.config.timing_constraint_ms, best.meets_constraint
        );
        println!(
            "Explored {} solutions, {} on the Pareto frontier, backbone sparsity {}",
            outcome.history.len(),
            outcome.pareto_indices.len(),
            pct(backbone.sparsity)
        );
        let _ = model.num_parameters();
    }
    println!();
    println!("Paper reference (Table III): per-level sparsities 43-87%, latencies under");
    println!("the constraint, accuracy gaps of 0.2-3.0%, interrupt 8.75-45 ms for RT3 vs");
    println!("52-67 s for the UB (>1000x).");
}
