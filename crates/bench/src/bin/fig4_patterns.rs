//! Reproduces Fig. 4: visualisation of the patterns identified for the three
//! V/F levels (sparsity roughly 75%, 50% and 37%) on the self-attention
//! layer of the first encoder, rendered as ASCII (# = kept, . = pruned),
//! plus the cross-sparsity overlap statistics behind the paper's
//! "same important positions" observation.

use rt3_bench::{pct, print_header, setup};
use rt3_core::{run_level1, Rt3Config, SurrogateEvaluator, TaskProfile};
use rt3_pruning::{generate_pattern_space, PatternSpaceConfig};

fn main() {
    print_header("Fig. 4: patterns identified for three V/F levels (self-attention layer)");
    let model = setup::live_model();
    let config = Rt3Config::wikitext_default();
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    // Use a larger pattern so the visualisation is meaningful; the paper uses
    // 100x100, we render 16x16.
    let space_config = PatternSpaceConfig {
        pattern_size: 16,
        patterns_per_set: 1,
        sample_fraction: 0.5,
        seed: 7,
    };
    let sparsities = [0.75, 0.50, 0.37];
    let space = generate_pattern_space(&model, &backbone.masks, &sparsities, &space_config);
    let mut ordered: Vec<_> = space.candidates().iter().collect();
    ordered.sort_by(|a, b| b.sparsity.partial_cmp(&a.sparsity).unwrap());
    for candidate in &ordered {
        let pattern = &candidate.set.patterns()[0];
        println!();
        println!(
            "Sparsity = {} ({} of {} positions kept)",
            pct(candidate.sparsity),
            pattern.ones(),
            pattern.size() * pattern.size()
        );
        print!("{}", pattern.render_ascii());
    }
    // cross-sparsity containment: the sparser pattern's kept positions should
    // re-appear in the denser patterns (the paper's circled observation)
    println!();
    println!("Cross-sparsity structure:");
    for window in ordered.windows(2) {
        let sparse = &window[0].set.patterns()[0];
        let dense = &window[1].set.patterns()[0];
        let contained = sparse
            .kept_positions()
            .iter()
            .filter(|&&(r, c)| dense.is_kept(r, c))
            .count();
        println!(
            "  {} of {} positions kept at sparsity {} are also kept at sparsity {} ({})",
            contained,
            sparse.ones(),
            pct(window[0].sparsity),
            pct(window[1].sparsity),
            pct(contained as f64 / sparse.ones() as f64)
        );
    }
    println!();
    println!("Column density of the densest pattern (Fig. 4's column characteristic):");
    let densest = &ordered.last().expect("non-empty").set.patterns()[0];
    let density = densest.column_density();
    let line: Vec<String> = density.iter().map(|d| format!("{:.1}", d)).collect();
    println!("  [{}]", line.join(", "));
    println!();
    println!("Paper reference (Fig. 4): patterns for different V/F levels share the same");
    println!("important positions and column structure; only their sparsity differs.");
}
