//! Reproduces Fig. 3: (a) the Pareto frontiers of weighted accuracy vs
//! number of runs explored by the RL search under the loose (104 ms) and
//! tight (94 ms) timing constraints; (b)/(c) the best solutions P_L and P_T
//! compared against the heuristic baseline, the accuracy upper bound, the
//! original model and the BP backbone.

use rt3_bench::{pct, print_header, runs_millions, setup};
use rt3_core::{
    build_search_space, frontier_covers, run_heuristic_baseline, run_level1, run_level2_search,
    SearchOutcome, SurrogateEvaluator, TaskProfile,
};

fn describe_front(label: &str, outcome: &SearchOutcome) {
    println!();
    println!("Pareto frontier ({label}):");
    println!(
        "{:<8} {:>18} {:>14} {:>10}",
        "point", "weighted accuracy", "# runs", "feasible"
    );
    let mut front = outcome.pareto_front();
    front.sort_by(|a, b| {
        a.weighted_accuracy
            .partial_cmp(&b.weighted_accuracy)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (i, p) in front.iter().enumerate() {
        println!(
            "{:<8} {:>18} {:>14} {:>10}",
            i,
            pct(p.weighted_accuracy),
            runs_millions(p.number_of_runs),
            p.meets_constraint
        );
    }
}

fn main() {
    print_header(
        "Fig. 3: search-space exploration under loose (104 ms) and tight (94 ms) constraints",
    );
    let model = setup::live_model();
    let profile = TaskProfile::wikitext2();

    let loose_config = setup::wikitext_config(104.0);
    let tight_config = setup::wikitext_config(94.0);

    let mut evaluator = SurrogateEvaluator::new(profile);
    let backbone = run_level1(&model, &loose_config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &loose_config);

    let loose = run_level2_search(&model, &backbone, &space, &loose_config, &mut evaluator);
    let tight = run_level2_search(&model, &backbone, &space, &tight_config, &mut evaluator);

    describe_front("loose, T = 104 ms", &loose);
    describe_front("tight, T = 94 ms", &tight);

    let loose_points: Vec<_> = loose.pareto_front().into_iter().cloned().collect();
    let tight_points: Vec<_> = tight.pareto_front().into_iter().cloned().collect();
    println!();
    println!(
        "Loose frontier covers the tight frontier (paper's Fig. 3a observation): {}",
        frontier_covers(&loose_points, &tight_points)
    );

    // Fig 3 (b)/(c): best solutions vs baselines
    for (label, config, outcome) in [
        ("P_L (loose constraint)", &loose_config, &loose),
        ("P_T (tight constraint)", &tight_config, &tight),
    ] {
        println!();
        println!("--- Best solution {label} ---");
        let mut evaluator = SurrogateEvaluator::new(profile);
        println!(
            "original (no compression) accuracy : {}",
            pct(profile.base_score)
        );
        println!(
            "block-pruning backbone accuracy    : {} at sparsity {}",
            pct(backbone.accuracy),
            pct(backbone.sparsity)
        );
        let heuristic = run_heuristic_baseline(&model, &backbone, &space, config, &mut evaluator);
        println!(
            "heuristic baseline                 : weighted accuracy {}, runs {}",
            pct(heuristic.weighted_accuracy),
            runs_millions(heuristic.number_of_runs)
        );
        if let Some(best) = &outcome.best {
            println!(
                "RT3 best solution                  : weighted accuracy {}, runs {}",
                pct(best.weighted_accuracy),
                runs_millions(best.number_of_runs)
            );
            println!("  per-level sparsity / accuracy:");
            for (s, a) in best.sparsities.iter().zip(&best.accuracies) {
                println!("    sparsity {:>8}  accuracy {:>8}", pct(*s), pct(*a));
            }
        }
    }
    println!();
    println!("Paper reference (Fig. 3): the loose frontier dominates the tight one, and");
    println!("RT3's searched solutions beat the heuristic at equal sparsity.");
}
