//! Reproduces Fig. 5: the evaluation of block-structured pruning alone —
//! original vs BP score on the nine GLUE tasks and WikiText-2, with the
//! compression ratio annotated per task, plus a measured BP run on the small
//! live Transformer to confirm the trend with real training.

use rt3_bench::{pct, print_header};
use rt3_core::run_bp_evaluation;
use rt3_data::{CorpusConfig, MarkovCorpus};
use rt3_pruning::{block_prune_model, BlockPruningConfig, PruneCriterion};
use rt3_transformer::{evaluate_lm, train_lm, TrainOptions, TransformerConfig, TransformerLm};

fn main() {
    print_header("Fig. 5: evaluation of block-structured pruning (original vs BP score)");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>14}",
        "Task", "original", "BP", "loss", "pruning rate"
    );
    let rows = run_bp_evaluation();
    let mut total_loss = 0.0;
    for row in &rows {
        total_loss += row.original_score - row.bp_score;
        println!(
            "{:<12} {:>12} {:>12} {:>10} {:>13.1}x",
            row.task,
            pct(row.original_score),
            pct(row.bp_score),
            pct(row.original_score - row.bp_score),
            row.compression_ratio
        );
    }
    println!(
        "Average score loss: {} (paper: 1.74% on average at up to 2x compression)",
        pct(total_loss / rows.len() as f64)
    );

    println!();
    println!("Measured check on the live (small) Transformer + synthetic corpus:");
    let corpus = MarkovCorpus::generate(&CorpusConfig {
        vocab_size: 96,
        train_tokens: 6_000,
        valid_tokens: 800,
        branching: 3,
        seed: 21,
    });
    let options = TrainOptions {
        epochs: 2,
        learning_rate: 5e-3,
        batch_size: 8,
        seq_len: 12,
        max_batches_per_epoch: Some(30),
        seed: 3,
    };
    let mut dense_model = TransformerLm::new(TransformerConfig::paper_transformer(96), 11);
    let dense_report = train_lm(&mut dense_model, &corpus, &options, None);
    let masks = block_prune_model(
        &dense_model,
        &BlockPruningConfig {
            num_blocks: 4,
            criterion: PruneCriterion::Fraction(0.5),
        },
    );
    let pruned_before = evaluate_lm(&dense_model, &corpus, options.seq_len, Some(&masks));
    let mut pruned_model = dense_model.clone();
    let pruned_report = train_lm(&mut pruned_model, &corpus, &options, Some(&masks));
    println!(
        "  dense accuracy {:>8}   BP({}) accuracy before fine-tune {:>8}, after {:>8}",
        pct(dense_report.metric),
        pct(masks.overall_sparsity()),
        pct(pruned_before),
        pct(pruned_report.metric)
    );
    println!();
    println!("Paper reference (Fig. 5): BP reaches 1.2x-2.8x compression with small");
    println!("score loss on every task; fine-tuning recovers most of the pruning loss.");
}
