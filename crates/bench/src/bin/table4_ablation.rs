//! Reproduces Table IV: the ablation study comparing No-Opt, rBP only,
//! rBP+rPP, rBP+PP, BP only and the full RT3 pipeline on the WikiText-2,
//! RTE and STS-B style tasks (average sparsity, number of runs, improvement,
//! average score and score loss).

use rt3_bench::{pct, print_header, runs_millions, setup};
use rt3_core::{run_ablation, TaskProfile};

fn main() {
    print_header("Table IV: ablation of block-structured pruning and pattern pruning");
    let model = setup::live_model();
    let tasks = vec![
        (
            "WikiText-2",
            setup::wikitext_config(104.0),
            TaskProfile::wikitext2(),
        ),
        ("RTE", setup::distilbert_config(200.0), TaskProfile::rte()),
        (
            "STS-B",
            setup::distilbert_config(330.0),
            TaskProfile::stsb(),
        ),
    ];
    for (name, config, profile) in tasks {
        println!();
        println!("--- {} ---", name);
        let rows = run_ablation(&model, &config, profile);
        println!(
            "{:<12} {:>12} {:>12} {:>10} {:>12} {:>10}",
            "Method", "Avg. Spar.", "# runs", "Impr.", "Avg. Score", "Loss"
        );
        for row in &rows {
            println!(
                "{:<12} {:>12} {:>12} {:>9.2}x {:>12} {:>10}",
                row.variant.label(),
                pct(row.average_sparsity),
                runs_millions(row.number_of_runs),
                row.improvement,
                pct(row.average_accuracy),
                pct(row.accuracy_loss),
            );
        }
    }
    println!();
    println!("Paper reference (Table IV, WikiText-2): RT3 reaches 4.96x more runs with");
    println!("0.95% accuracy loss; rBP+rPP loses 11.07%, rBP+PP 4.88%, BP only 0.64%.");
    println!("The orderings (BP > rBP, PP > rPP, RT3 ~ BP accuracy at much higher");
    println!("sparsity) are the result being reproduced; absolute numbers differ because");
    println!("the substrate is an analytical model (see EXPERIMENTS.md).");
}
