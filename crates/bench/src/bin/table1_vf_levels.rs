//! Reproduces Table I: the voltage/frequency levels of the Odroid-XU3
//! Cortex-A7 cluster, plus the derived power of each level under the
//! calibrated power model.

use rt3_bench::print_header;
use rt3_hardware::{PowerModel, VfLevel};

fn main() {
    print_header("Table I: V/F levels supported by the ARM Cortex-A7 (Odroid-XU3)");
    let power = PowerModel::cortex_a7();
    println!(
        "{:<10} {:>12} {:>12} {:>14}",
        "Notation", "freq (MHz)", "vol (mV)", "power (W)"
    );
    for level in VfLevel::odroid_xu3_a7() {
        println!(
            "l{:<9} {:>12.0} {:>12.2} {:>14.3}",
            level.index,
            level.frequency_mhz,
            level.voltage_mv,
            power.power_w(&level)
        );
    }
    println!();
    println!("Paper reference: Table I lists the same six freq/voltage pairs.");
}
