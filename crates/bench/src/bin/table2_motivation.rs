//! Reproduces Table II: the motivation experiment comparing E1 (no
//! reconfiguration), E2 (DVFS only) and E3 (DVFS + software reconfiguration)
//! under a 115 ms timing constraint and a fixed energy budget.

use rt3_bench::{print_header, runs_millions, setup};

fn main() {
    print_header("Table II: E1 (no reconfig) vs E2 (DVFS only) vs E3 (DVFS + SW reconfig)");
    let mut config = setup::wikitext_config(115.0);
    // an energy budget large enough to reach paper-scale run counts (~1e6)
    config.energy_budget_j = 150_000.0;
    // M1's sparsity just meets the 115 ms constraint at the top level; the
    // per-level sparsities of E3 keep every mode under the constraint
    let base_sparsity = 0.55;
    let per_level = [0.87, 0.74, base_sparsity]; // ordered low -> high frequency
    let rows = rt3_core::run_motivation_experiment(&config, base_sparsity, &per_level);
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>10}",
        "Approach", "# runs", "Sat. T?", "Improve", "switches"
    );
    for row in &rows {
        println!(
            "{:<10} {:>14} {:>12} {:>11.2}x {:>10}",
            row.approach,
            runs_millions(row.report.runs as f64),
            if row.report.constraint_satisfied {
                "yes"
            } else {
                "NO"
            },
            row.improvement,
            row.report.switches,
        );
        for (mode, runs) in &row.report.runs_per_mode {
            println!("    {:<8} {:>12} runs", mode, runs);
        }
    }
    println!();
    println!("Paper reference (Table II): E2 = +17.3% runs over E1 but misses the");
    println!("deadline in N/E mode; E3 = 1.78x runs over E1 with every deadline met.");
}
