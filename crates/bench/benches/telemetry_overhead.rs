//! Telemetry overhead gate: the serving engine is timed over the same
//! bursty trace with telemetry `Off` and at `Counters`, interleaved
//! cycle-by-cycle (`Off`, `Counters`, `Full`, repeat), and the process
//! fails (non-zero exit) if `Counters` is more than 3% slower than `Off` —
//! the "streaming metrics are cheap enough to leave on" contract of
//! DESIGN.md §9. The gate statistic is **paired**: each cycle yields one
//! `Counters`/`Off` ratio measured seconds apart under the same host
//! conditions, and the median of those ratios is the overhead estimate.
//! Unpaired medians or minimums compare samples taken under *different*
//! transient load and routinely swing several percent either way on a
//! shared machine; pairing cancels the drift instead of hoping it averages
//! out. The `Full` level (trace ring + decision audit + the per-window
//! obs-plane scrape) is gated too, at a looser 5%: it is a debugging mode
//! rather than a production default, but the live series pipeline must
//! stay cheap enough to turn on when chasing an incident.
//!
//! Runs with real inference: the baseline is the production serving loop
//! (scheduling plus actual pattern-pruned sparse matmuls on the worker
//! pool), so the measured overhead is what a deployment would pay — per
//! request a handful of counter adds and histogram records, per batch two
//! clock reads into a contention-free per-worker shard.
//!
//! Set `BENCH_QUICK=1` (CI) to shrink the sample counts. The `{"bench":
//! "telemetry_overhead/...", ...}` JSON line feeds the perf trajectory
//! (`BENCH_telemetry.json`).

use rt3_core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SearchOutcome,
    SurrogateEvaluator, TaskProfile,
};
use rt3_pruning::PatternSpace;
use rt3_runtime::{Scenario, ServeConfig, ServeEngine, TelemetryConfig};
use rt3_transformer::{MaskSet, TransformerConfig, TransformerLm};
use std::time::Instant;

/// Maximum tolerated slowdown of `Counters` over `Off` (median of the
/// per-cycle paired ratios), percent.
const GATE_PCT: f64 = 3.0;

/// Maximum tolerated slowdown of `Full` over `Off` — trace ring, decision
/// audit and the per-window obs-plane scrape included.
const FULL_GATE_PCT: f64 = 5.0;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok()
}

fn offline() -> (
    TransformerLm,
    MaskSet,
    PatternSpace,
    SearchOutcome,
    Rt3Config,
) {
    let model = TransformerLm::new(TransformerConfig::tiny(32), 13);
    let config = Rt3Config::tiny_test();
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
    (model, backbone.masks, space, outcome, config)
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    sorted[sorted.len() / 2]
}

/// Median of the element-wise `numer[i] / denom[i]` ratios — the paired
/// overhead estimate (each index is one interleaved cycle).
fn paired_ratio(numer: &[f64], denom: &[f64]) -> f64 {
    let ratios: Vec<f64> = numer.iter().zip(denom).map(|(n, d)| n / d).collect();
    median(&ratios)
}

fn main() {
    let (model, masks, space, outcome, config) = offline();
    let scenario = Scenario::default_bursty();
    // one sample = the fastest of `repeats` individually timed engine runs:
    // interference only ever adds time, so the within-cycle minimum is the
    // cleanest observation of that cycle's true cost
    let (samples, repeats) = if quick() { (9, 5) } else { (15, 5) };

    let time_level = |telemetry: TelemetryConfig| -> f64 {
        let serve = ServeConfig {
            battery_capacity_j: 29.0,
            real_inference: true,
            telemetry,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(
            &model,
            masks.clone(),
            &space,
            &outcome,
            config.clone(),
            serve,
        );
        let mut best_ms = f64::INFINITY;
        for _ in 0..repeats {
            let begin = Instant::now();
            let report = engine.run(&scenario);
            best_ms = best_ms.min(begin.elapsed().as_secs_f64() * 1_000.0);
            assert!(report.completed > 0, "the bench run must actually serve");
        }
        best_ms
    };

    // warm-up: fault in the lazy bank builds and the allocator before timing
    time_level(TelemetryConfig::default());
    time_level(TelemetryConfig::counters());
    time_level(TelemetryConfig::full());

    let mut off_ms = Vec::with_capacity(samples);
    let mut counters_ms = Vec::with_capacity(samples);
    let mut full_ms = Vec::with_capacity(samples);
    for _ in 0..samples {
        off_ms.push(time_level(TelemetryConfig::default()));
        counters_ms.push(time_level(TelemetryConfig::counters()));
        full_ms.push(time_level(TelemetryConfig::full()));
    }

    let off = median(&off_ms);
    let counters = median(&counters_ms);
    let full = median(&full_ms);
    let counters_pct = 100.0 * (paired_ratio(&counters_ms, &off_ms) - 1.0);
    let full_pct = 100.0 * (paired_ratio(&full_ms, &off_ms) - 1.0);

    println!(
        "{{\"bench\": \"telemetry_overhead/bursty_90s_real_inference\", \
         \"samples\": {samples}, \"repeats\": {repeats}, \
         \"off_ms\": {off:.3}, \"counters_ms\": {counters:.3}, \"full_ms\": {full:.3}, \
         \"counters_overhead_pct\": {counters_pct:.3}, \"full_overhead_pct\": {full_pct:.3}, \
         \"gate_pct\": {GATE_PCT:.1}, \"full_gate_pct\": {FULL_GATE_PCT:.1}}}"
    );
    assert!(
        counters_pct < GATE_PCT,
        "telemetry at Counters costs {counters_pct:.2}% over Off \
         (paired median ratio; medians {counters:.3} ms vs {off:.3} ms) — \
         the gate is {GATE_PCT}%"
    );
    assert!(
        full_pct < FULL_GATE_PCT,
        "telemetry at Full costs {full_pct:.2}% over Off \
         (paired median ratio; medians {full:.3} ms vs {off:.3} ms) — \
         the gate is {FULL_GATE_PCT}%"
    );
}
