//! Criterion bench: the cost of Algorithm 1 (block-structured pruning) and
//! of the random rBP baseline over a full model.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt3_pruning::{
    block_prune_model, random_block_prune_model, BlockPruningConfig, PruneCriterion,
};
use rt3_transformer::{TransformerConfig, TransformerLm};

fn bench_bp(c: &mut Criterion) {
    let model = TransformerLm::new(TransformerConfig::paper_transformer(512), 9);
    let config = BlockPruningConfig {
        num_blocks: 4,
        criterion: PruneCriterion::Fraction(0.5),
    };
    let mut group = c.benchmark_group("block_pruning");
    group.sample_size(20);
    group.bench_function("algorithm1_full_model", |b| {
        b.iter(|| block_prune_model(&model, &config))
    });
    group.bench_function("random_bp_full_model", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| random_block_prune_model(&model, 4, 0.5, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_bp);
criterion_main!(benches);
