//! Criterion bench: pattern-set switch vs full model reload (the Table III
//! "Interrupt" comparison), measured as the cost-model evaluation plus the
//! in-memory mask rebuild that a real switch performs.

use criterion::{criterion_group, criterion_main, Criterion};
use rt3_core::switch_time_comparison;
use rt3_pruning::{block_prune_model, BlockPruningConfig};
use rt3_pruning::{combined_masks_for_model, generate_pattern_space, PatternSpaceConfig};
use rt3_transformer::{Model, TransformerConfig, TransformerLm};

fn bench_switch(c: &mut Criterion) {
    let model = TransformerLm::new(TransformerConfig::paper_transformer(256), 3);
    let backbone = block_prune_model(&model, &BlockPruningConfig::default());
    let space = generate_pattern_space(
        &model,
        &backbone,
        &[0.5, 0.75],
        &PatternSpaceConfig {
            pattern_size: 8,
            patterns_per_set: 2,
            sample_fraction: 0.5,
            seed: 1,
        },
    );
    let prunable = model.prunable_parameter_names();
    let mut group = c.benchmark_group("reconfiguration");
    group.sample_size(20);
    group.bench_function("pattern_set_switch_mask_rebuild", |b| {
        b.iter(|| {
            combined_masks_for_model(&model, &backbone, &prunable, &space.candidates()[0].set)
        })
    });
    group.bench_function("switch_cost_model_distilbert_scale", |b| {
        b.iter(|| switch_time_comparison(100, 4, 66_000_000))
    });
    group.finish();
}

criterion_group!(benches, bench_switch);
criterion_main!(benches);
