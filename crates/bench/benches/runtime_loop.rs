//! Criterion bench: the online serving engine — steady-state serve
//! throughput under the bursty-traffic scenario, pattern-set switch latency
//! (cold bank rebuild), raw worker-pool sparse-inference throughput, and
//! fleet routing over four simulated devices.
//!
//! Besides the per-benchmark timing lines, a `{"bench": "runtime_loop/...",
//! ...}` JSON summary of the simulated serving metrics (miss rate, p95,
//! switches) is printed for the perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use rt3_core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SearchOutcome,
    SurrogateEvaluator, TaskProfile,
};
use rt3_hardware::MemoryModel;
use rt3_pruning::PatternSpace;
use rt3_runtime::{
    pool, Fleet, FleetConfig, FleetScenario, ModelBank, RuntimePolicy, Scenario, ServeConfig,
    ServeEngine,
};
use rt3_transformer::{MaskSet, TransformerConfig, TransformerLm};

fn offline() -> (
    TransformerLm,
    MaskSet,
    PatternSpace,
    SearchOutcome,
    Rt3Config,
) {
    let mut config = Rt3Config::wikitext_default();
    config.timing_constraint_ms = 115.0;
    config.episodes = 10;
    let model = TransformerLm::new(TransformerConfig::paper_transformer(256), 3);
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
    (model, backbone.masks, space, outcome, config)
}

fn serve_config(real_inference: bool) -> ServeConfig {
    ServeConfig {
        battery_capacity_j: 29.0,
        policy: RuntimePolicy::Adaptive,
        real_inference,
        ..ServeConfig::default()
    }
}

fn bench_runtime(c: &mut Criterion) {
    let (model, masks, space, outcome, config) = offline();
    let mut group = c.benchmark_group("runtime_loop");
    group.sample_size(10);

    // steady-state serving: one 10-second bursty slice per iteration, with
    // every dispatched micro-batch replayed as real sparse inference
    let burst_slice = Scenario::BurstyTraffic {
        duration_s: 10,
        base_rps: 30.0,
        burst_rps: 60.0,
        period_s: 20,
        burst_len_s: 6,
        background_w: 0.08,
    };
    group.bench_function("steady_state_serve_10s_slice", |b| {
        b.iter(|| {
            let mut engine = ServeEngine::new(
                &model,
                masks.clone(),
                &space,
                &outcome,
                config.clone(),
                serve_config(true),
            );
            engine.run(&burst_slice)
        })
    });

    // pattern-set switch latency: what a cache-miss switch really costs the
    // host (mask rebuild + block-sparse re-materialisation)
    let actions = &outcome.best.as_ref().expect("feasible solution").actions;
    group.bench_function("pattern_switch_cold_rebuild", |b| {
        let bank = ModelBank::new(
            &model,
            masks.clone(),
            &space,
            actions,
            MemoryModel::odroid_xu3(),
            1,
        );
        b.iter(|| bank.rebuild_cold(0))
    });

    // fleet cold start + serve: one 20-second slice of the heterogeneous
    // cliff trace over four simulated devices. Each iteration pays the
    // whole fleet lifecycle — four bank constructions with lazy sparse
    // builds on first use, then routing, scheduling and simulated serving
    // (real inference off) — i.e. what bringing a fleet up and playing a
    // short trace costs, not routing overhead alone.
    let mut fleet_slice = FleetScenario::heterogeneous_cliff();
    if let Scenario::ConstantDrain { duration_s, .. } = &mut fleet_slice.arrivals {
        *duration_s = 20;
    }
    group.bench_function("fleet_cold_serve_4dev_20s_slice", |b| {
        b.iter(|| {
            let fleet = Fleet::new(
                &model,
                masks.clone(),
                &space,
                &outcome,
                &config,
                &fleet_slice,
                FleetConfig {
                    real_inference: false,
                    ..FleetConfig::default()
                },
            );
            fleet.run()
        })
    });

    // raw worker-pool throughput on the sparsest banked variant
    group.bench_function("worker_pool_32_batches", |b| {
        let mut bank = ModelBank::new(
            &model,
            masks.clone(),
            &space,
            actions,
            MemoryModel::odroid_xu3(),
            actions.len(),
        );
        let banked = bank.get(0).clone();
        let batches = vec![4usize; 32];
        b.iter(|| pool::run_batches(&banked, &batches, 4))
    });
    group.finish();

    // simulated serving metrics for the perf trajectory
    let mut engine = ServeEngine::new(
        &model,
        masks.clone(),
        &space,
        &outcome,
        config.clone(),
        serve_config(false),
    );
    let report = engine.run(&Scenario::default_bursty());
    println!(
        "{{\"bench\": \"runtime_loop/bursty_90s_simulated\", \"completed\": {}, \
         \"miss_rate\": {:.4}, \"p50_ms\": {:.2}, \"p95_ms\": {:.2}, \"p99_ms\": {:.2}, \
         \"switches\": {}, \"switch_time_ms\": {:.2}, \"energy_j\": {:.2}}}",
        report.completed,
        report.miss_rate(),
        report.p50_ms(),
        report.p95_ms(),
        report.p99_ms(),
        report.switches,
        report.switch_time_ms,
        report.total_energy_j(),
    );

    // fleet serving metrics on the full acceptance trace
    let fleet_scenario = FleetScenario::heterogeneous_cliff();
    let fleet = Fleet::new(
        &model,
        masks.clone(),
        &space,
        &outcome,
        &config,
        &fleet_scenario,
        FleetConfig {
            real_inference: false,
            ..FleetConfig::default()
        },
    );
    let fleet_report = fleet.run();
    println!(
        "{{\"bench\": \"runtime_loop/fleet_cliff_150s_simulated\", \"completed\": {}, \
         \"miss_rate\": {:.4}, \"p95_ms\": {:.2}, \"switches\": {}, \"energy_j\": {:.2}, \
         \"load_imbalance\": {:.3}, \"deaths\": {}, \"unroutable\": {}}}",
        fleet_report.completed(),
        fleet_report.miss_rate(),
        fleet_report.latency_percentile_ms(0.95),
        fleet_report.total_switches(),
        fleet_report.total_energy_j(),
        fleet_report.load_imbalance(),
        fleet_report.deaths(),
        fleet_report.unroutable,
    );
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
