//! Criterion bench: dense vs COO vs CSR vs block-pruned vs pattern-pruned
//! matmul kernels at the same sparsity (the hardware-efficiency argument of
//! the paper's Challenge 1), swept over matrix size × rhs width, plus a
//! `pool_throughput` bench that measures real `pool::run_batches`
//! wall-clock on a banked model — the serving-path number the compiled
//! execution plans (PR 3) are meant to move.
//!
//! Two pattern-pruned kernels are timed at every sweep point:
//! `pattern_compiled` executes the [`rt3_sparse::PatternPlan`] (flat arena,
//! shared per-pattern offset tables, full/edge dispatch) and
//! `pattern_scalar_ref` is the retained seed kernel
//! ([`rt3_sparse::reference::matmul_dense_scalar`]), so every JSON line
//! pair documents the before/after of the plan rewrite.
//!
//! After the criterion groups, a `{"bench": "sparse_matmul/summary_*"}`
//! JSON line per sweep point records mean ns for scalar / compiled / csr
//! and the two speedups, and the run **fails** (non-zero exit) if the
//! compiled pattern-pruned kernel regresses below the CSR kernel at equal
//! sparsity on the largest sweep point — the CI perf gate.
//!
//! Set `BENCH_QUICK=1` (CI) to shrink the sweep and sample counts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt3_hardware::MemoryModel;
use rt3_pruning::{
    block_prune_model, generate_pattern_space, BlockPruningConfig, PatternSpaceConfig,
};
use rt3_runtime::{pool, ModelBank};
use rt3_sparse::{
    reference, BlockPartition, BlockPrunedMatrix, CooMatrix, CsrMatrix, PatternMask,
    PatternPrunedMatrix, PatternSet,
};
use rt3_tensor::Matrix;
use rt3_transformer::{TransformerConfig, TransformerLm};
use std::time::Instant;

const SPARSITY: f64 = 0.75;
const PSIZE: usize = 8;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok()
}

fn sweep_sizes() -> Vec<usize> {
    if quick() {
        vec![96, 256]
    } else {
        vec![96, 256, 512]
    }
}

fn sweep_widths() -> Vec<usize> {
    if quick() {
        vec![1, 16]
    } else {
        vec![1, 16, 64]
    }
}

fn pattern_set(seed: u64) -> PatternSet {
    let mut rng = StdRng::seed_from_u64(seed);
    PatternSet::new(
        (0..4)
            .map(|_| PatternMask::random(PSIZE, SPARSITY, &mut rng))
            .collect(),
    )
    .expect("non-empty set")
}

/// One sweep point's operands, all computing the *same* product: a random
/// dense matrix is pattern-pruned to the target sparsity, and the COO /
/// CSR / BP baselines are built from the pruned reconstruction — equal
/// non-zeros, equal result, so kernel times are directly comparable.
fn operands(n: usize) -> (Matrix, PatternPrunedMatrix, CsrMatrix) {
    let mut rng = StdRng::seed_from_u64(1);
    let dense = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0f32));
    let pp = PatternPrunedMatrix::from_dense(&dense, &pattern_set(2));
    let masked = pp.to_dense();
    let csr = CsrMatrix::from_dense(&masked);
    (masked, pp, csr)
}

/// `(mean, min)` ns/iter of `f` over `iters` individually timed runs (one
/// warm-up), for the summary lines and the perf gate — independent of the
/// criterion registry so the numbers can be compared and checked
/// programmatically. The minimum is what the gate uses: it is robust to
/// one-sided scheduling noise on shared CI runners.
fn time_ns<O, F: FnMut() -> O>(iters: u32, mut f: F) -> (f64, f64) {
    black_box(f());
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        let ns = start.elapsed().as_nanos() as f64;
        total += ns;
        min = min.min(ns);
    }
    (total / iters as f64, min)
}

struct SummaryPoint {
    n: usize,
    width: usize,
    scalar_ns: f64,
    compiled_ns: f64,
    compiled_min_ns: f64,
    csr_ns: f64,
    csr_min_ns: f64,
}

fn bench_kernels(c: &mut Criterion) {
    let samples = if quick() { 10 } else { 20 };
    let mut summary = Vec::new();
    for &n in &sweep_sizes() {
        let (dense, pp, csr) = operands(n);
        for &width in &sweep_widths() {
            let rhs = Matrix::from_fn(n, width, |i, j| ((i * 3 + j) as f32).sin());
            let mut group = c.benchmark_group(format!("sparse_matmul_{n}x{n}_s75_w{width}"));
            group.sample_size(samples);
            group.bench_function("dense", |b| b.iter(|| dense.matmul(&rhs)));
            group.bench_function("csr", |b| b.iter(|| csr.matmul_dense(&rhs)));
            group.bench_function("pattern_compiled", |b| b.iter(|| pp.matmul_dense(&rhs)));
            group.bench_function("pattern_scalar_ref", |b| {
                b.iter(|| reference::matmul_dense_scalar(&pp, &rhs))
            });
            // the remaining baselines only at the seed's original point to
            // keep the sweep affordable
            if n == 96 && width == 16 {
                let coo = CooMatrix::from_dense(&dense);
                let bp = BlockPrunedMatrix::from_dense(&dense, &BlockPartition::even(n, 4));
                group.bench_function("coo", |b| b.iter(|| coo.matmul_dense(&rhs)));
                group.bench_function("block_pruned", |b| b.iter(|| bp.matmul_dense(&rhs)));
            }
            group.finish();

            let iters = samples as u32;
            let (scalar_ns, _) = time_ns(iters, || reference::matmul_dense_scalar(&pp, &rhs));
            let (compiled_ns, compiled_min_ns) = time_ns(iters, || pp.matmul_dense(&rhs));
            let (csr_ns, csr_min_ns) = time_ns(iters, || csr.matmul_dense(&rhs));
            summary.push(SummaryPoint {
                n,
                width,
                scalar_ns,
                compiled_ns,
                compiled_min_ns,
                csr_ns,
                csr_min_ns,
            });
        }
    }

    for p in &summary {
        println!(
            "{{\"bench\": \"sparse_matmul/summary_n{}_w{}\", \"sparsity\": {SPARSITY}, \
             \"scalar_ns\": {:.1}, \"compiled_ns\": {:.1}, \"csr_ns\": {:.1}, \
             \"speedup_vs_scalar\": {:.2}, \"speedup_vs_csr\": {:.2}}}",
            p.n,
            p.width,
            p.scalar_ns,
            p.compiled_ns,
            p.csr_ns,
            p.scalar_ns / p.compiled_ns,
            p.csr_ns / p.compiled_ns,
        );
    }

    // Perf gate: at the largest sweep point the compiled pattern-pruned
    // kernel must not regress below the CSR kernel at equal sparsity. The
    // comparison uses per-kernel *minimum* iteration times (immune to
    // one-sided scheduling stalls on shared CI runners) with 15% slack on
    // top. A panic here fails the bench process and therefore the CI job.
    let gate = summary
        .iter()
        .filter(|p| p.width == 16)
        .max_by_key(|p| p.n)
        .expect("sweep contains a width-16 point");
    assert!(
        gate.compiled_min_ns <= gate.csr_min_ns * 1.15,
        "perf gate: compiled pattern-pruned kernel (min {:.0} ns) regressed \
         below CSR (min {:.0} ns) at n={}, w=16, sparsity {SPARSITY}",
        gate.compiled_min_ns,
        gate.csr_min_ns,
        gate.n,
    );
}

/// Real serving-path throughput: `pool::run_batches` wall-clock over a
/// banked model (the level-0 variant of a paper-shaped transformer), i.e.
/// what every micro-batch of the single-device and fleet engines executes.
fn bench_pool_throughput(c: &mut Criterion) {
    let model = TransformerLm::new(TransformerConfig::paper_transformer(96), 17);
    let backbone = block_prune_model(&model, &BlockPruningConfig::default());
    let space = generate_pattern_space(
        &model,
        &backbone,
        &[SPARSITY],
        &PatternSpaceConfig {
            pattern_size: 4,
            patterns_per_set: 2,
            sample_fraction: 0.5,
            seed: 17,
        },
    );
    let mut bank = ModelBank::new(&model, backbone, &space, &[0], MemoryModel::odroid_xu3(), 1);
    let banked = bank.get(0).clone();
    let batches = vec![4usize; if quick() { 16 } else { 64 }];
    let mut group = c.benchmark_group("pool_throughput");
    group.sample_size(if quick() { 5 } else { 10 });
    group.bench_function(format!("run_batches_{}x4_4workers", batches.len()), |b| {
        b.iter(|| pool::run_batches(&banked, &batches, 4))
    });
    group.bench_function(format!("run_batches_{}x4_1worker", batches.len()), |b| {
        b.iter(|| pool::run_batches(&banked, &batches, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_pool_throughput);
criterion_main!(benches);
