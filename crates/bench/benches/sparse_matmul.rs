//! Criterion bench: dense vs COO vs CSR vs block-pruned vs pattern-pruned
//! matmul kernels at the same sparsity (the hardware-efficiency argument of
//! the paper's Challenge 1).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt3_sparse::{
    BlockPartition, BlockPrunedMatrix, CooMatrix, CsrMatrix, PatternMask, PatternPrunedMatrix,
    PatternSet,
};
use rt3_tensor::Matrix;

fn block_sparse_matrix(n: usize, sparsity: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0f32));
    let blocks = 4;
    let keep = ((1.0 - sparsity) * n as f64) as usize;
    for (b, range) in BlockPartition::even(n, blocks).ranges().iter().enumerate() {
        for c in 0..n {
            if (c + b * 7) % n >= keep {
                for r in range.0..range.1 {
                    m.set(r, c, 0.0);
                }
            }
        }
    }
    m
}

fn bench_kernels(c: &mut Criterion) {
    let n = 96;
    let sparsity = 0.75;
    let dense = block_sparse_matrix(n, sparsity, 1);
    let rhs = Matrix::from_fn(n, 16, |i, j| ((i * 3 + j) as f32).sin());
    let coo = CooMatrix::from_dense(&dense);
    let csr = CsrMatrix::from_dense(&dense);
    let bp = BlockPrunedMatrix::from_dense(&dense, &BlockPartition::even(n, 4));
    let mut rng = StdRng::seed_from_u64(2);
    let set = PatternSet::new(vec![
        PatternMask::random(8, sparsity, &mut rng),
        PatternMask::random(8, sparsity, &mut rng),
        PatternMask::random(8, sparsity, &mut rng),
        PatternMask::random(8, sparsity, &mut rng),
    ])
    .expect("non-empty set");
    let pp = PatternPrunedMatrix::from_dense(&dense, &set);

    let mut group = c.benchmark_group("sparse_matmul_96x96_s75");
    group.sample_size(20);
    group.bench_function("dense", |b| b.iter(|| dense.matmul(&rhs)));
    group.bench_function("coo", |b| b.iter(|| coo.matmul_dense(&rhs)));
    group.bench_function("csr", |b| b.iter(|| csr.matmul_dense(&rhs)));
    group.bench_function("block_pruned", |b| b.iter(|| bp.matmul_dense(&rhs)));
    group.bench_function("pattern_pruned", |b| b.iter(|| pp.matmul_dense(&rhs)));
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
