//! Criterion bench: dense vs COO vs CSR vs block-pruned vs pattern-pruned
//! matmul kernels at the same sparsity (the hardware-efficiency argument of
//! the paper's Challenge 1), swept over matrix size × rhs width × sparsity,
//! plus a `pool_throughput` bench that measures real `pool::run_batches`
//! wall-clock on a banked model — the serving-path number the compiled
//! execution plans (PR 3) and the SIMD/parallel kernels (PR 10) are meant
//! to move.
//!
//! Three pattern-pruned kernels are timed at every sweep point:
//! `pattern_compiled` executes the [`rt3_sparse::PatternPlan`] under the
//! *detected* backend (AVX2 where the CPU has it), `pattern_compiled_scalar`
//! forces the portable compiled-scalar backend (the PR 3 kernels, still the
//! bit-exactness reference), and `pattern_scalar_ref` is the retained seed
//! kernel ([`rt3_sparse::reference::matmul_dense_scalar`]) — so every JSON
//! line documents scalar-seed → compiled-scalar → SIMD in one row, plus a
//! `par4` column for the intra-matmul parallel path
//! ([`rt3_sparse::PatternPlan::par_matmul_into`] with 4 workers).
//!
//! After the criterion groups, a `{"bench": "sparse_matmul/summary_*"}`
//! JSON line per sweep point records the means and speedups, a
//! `{"bench": "sparse_matmul/cpu"}` line records the detected CPU features
//! and available parallelism, and the run **fails** (non-zero exit) if:
//!
//! * with AVX2 detected, the compiled kernel's **geometric-mean** speedup
//!   over CSR across the sparsity-0.75 sweep falls below **2×**, or any
//!   single point falls below its regime floor (1.4× at s = 0.75, 0.7× at
//!   s = 0.90 where flat CSR structurally wins narrow-rhs points; the
//!   portable fallback keeps the original ×1.15 no-regression bound,
//!   now enforced per point), or
//! * `par_matmul_into` with 4 workers is not ≥ 2× the single-threaded
//!   compiled kernel at the n = 2048, w = 64 point — enforced only when
//!   the host actually has ≥ 4 hardware threads (the committed JSON
//!   records `workers_available` so single-core runs stay honest).
//!
//! Set `BENCH_QUICK=1` (CI) to shrink the sweep and sample counts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt3_hardware::MemoryModel;
use rt3_pruning::{
    block_prune_model, generate_pattern_space, BlockPruningConfig, PatternSpaceConfig,
};
use rt3_runtime::{pool, ModelBank};
use rt3_sparse::{
    reference, Backend, BlockPartition, BlockPrunedMatrix, CooMatrix, CsrMatrix, PatternMask,
    PatternPrunedMatrix, PatternSet,
};
use rt3_tensor::Matrix;
use rt3_transformer::{TransformerConfig, TransformerLm};
use std::time::Instant;

const PSIZE: usize = 8;
/// Worker count of the intra-matmul parallel column (and the CI gate).
const PAR_WORKERS: usize = 4;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok()
}

fn sweep_sizes() -> Vec<usize> {
    if quick() {
        vec![96, 256]
    } else {
        vec![96, 256, 512, 2048]
    }
}

fn sweep_widths() -> Vec<usize> {
    // all widths carry a SIMD full-block kernel; 64 is the regime the
    // tiled column sweep targets once the rhs blows L1
    if quick() {
        vec![8, 16]
    } else {
        vec![8, 16, 64]
    }
}

fn sweep_sparsities() -> Vec<f64> {
    if quick() {
        vec![0.75]
    } else {
        vec![0.75, 0.90]
    }
}

fn workers_available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn pattern_set(seed: u64, sparsity: f64) -> PatternSet {
    let mut rng = StdRng::seed_from_u64(seed);
    PatternSet::new(
        (0..4)
            .map(|_| PatternMask::random(PSIZE, sparsity, &mut rng))
            .collect(),
    )
    .expect("non-empty set")
}

/// One sweep point's operands, all computing the *same* product: a random
/// dense matrix is pattern-pruned to the target sparsity, and the COO /
/// CSR / BP baselines are built from the pruned reconstruction — equal
/// non-zeros, equal result, so kernel times are directly comparable. The
/// pattern-pruned matrix comes in both backends (detected and
/// scalar-forced); their lowered layouts are bit-identical.
fn operands(
    n: usize,
    sparsity: f64,
) -> (Matrix, PatternPrunedMatrix, PatternPrunedMatrix, CsrMatrix) {
    let mut rng = StdRng::seed_from_u64(1);
    let dense = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0f32));
    let set = pattern_set(2, sparsity);
    let pp = PatternPrunedMatrix::from_dense(&dense, &set);
    let pp_scalar = PatternPrunedMatrix::from_dense_with_backend(&dense, &set, Backend::Scalar);
    let masked = pp.to_dense();
    let csr = CsrMatrix::from_dense(&masked);
    (masked, pp, pp_scalar, csr)
}

/// `(mean, min)` ns/iter of `f` over `iters` individually timed runs (one
/// warm-up), for the summary lines and the perf gates — independent of the
/// criterion registry so the numbers can be compared and checked
/// programmatically. The minimum is what the gates use: it is robust to
/// one-sided scheduling noise on shared CI runners.
fn time_ns<O, F: FnMut() -> O>(iters: u32, mut f: F) -> (f64, f64) {
    black_box(f());
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        let ns = start.elapsed().as_nanos() as f64;
        total += ns;
        min = min.min(ns);
    }
    (total / iters as f64, min)
}

struct SummaryPoint {
    n: usize,
    width: usize,
    sparsity: f64,
    scalar_ns: f64,
    compiled_scalar_ns: f64,
    compiled_ns: f64,
    compiled_min_ns: f64,
    par_ns: f64,
    par_min_ns: f64,
    csr_ns: f64,
    csr_min_ns: f64,
}

fn bench_kernels(c: &mut Criterion) {
    let samples = if quick() { 10 } else { 20 };
    let backend = Backend::detect();
    let workers_avail = workers_available();
    println!(
        "{{\"bench\": \"sparse_matmul/cpu\", \"backend\": \"{}\", \"workers_available\": {}, \
         \"par_workers\": {PAR_WORKERS}}}",
        backend.label(),
        workers_avail,
    );

    let mut summary = Vec::new();
    for &sparsity in &sweep_sparsities() {
        let s_tag = (sparsity * 100.0).round() as usize;
        for &n in &sweep_sizes() {
            let (dense, pp, pp_scalar, csr) = operands(n, sparsity);
            for &width in &sweep_widths() {
                let rhs = Matrix::from_fn(n, width, |i, j| ((i * 3 + j) as f32).sin());
                let mut out = Matrix::zeros(n, width);
                let mut group =
                    c.benchmark_group(format!("sparse_matmul_{n}x{n}_s{s_tag}_w{width}"));
                group.sample_size(samples);
                // the dense baseline is only under test at the seed sizes;
                // at n = 2048 it would dominate the sweep's wall clock
                if n <= 512 {
                    group.bench_function("dense", |b| b.iter(|| dense.matmul(&rhs)));
                }
                group.bench_function("csr", |b| b.iter(|| csr.matmul_dense(&rhs)));
                group.bench_function("pattern_compiled", |b| b.iter(|| pp.matmul_dense(&rhs)));
                group.bench_function("pattern_compiled_scalar", |b| {
                    b.iter(|| pp_scalar.matmul_dense(&rhs))
                });
                group.bench_function("pattern_scalar_ref", |b| {
                    b.iter(|| reference::matmul_dense_scalar(&pp, &rhs))
                });
                // the remaining baselines only at the seed's original point
                // to keep the sweep affordable
                if n == 96 && width == 16 && sparsity == 0.75 {
                    let coo = CooMatrix::from_dense(&dense);
                    let bp = BlockPrunedMatrix::from_dense(&dense, &BlockPartition::even(n, 4));
                    group.bench_function("coo", |b| b.iter(|| coo.matmul_dense(&rhs)));
                    group.bench_function("block_pruned", |b| b.iter(|| bp.matmul_dense(&rhs)));
                }
                group.finish();

                let iters = samples as u32;
                let (scalar_ns, _) = time_ns(iters, || reference::matmul_dense_scalar(&pp, &rhs));
                let (compiled_scalar_ns, _) =
                    time_ns(iters, || pp_scalar.matmul_dense_into(&rhs, &mut out));
                let (compiled_ns, compiled_min_ns) =
                    time_ns(iters, || pp.matmul_dense_into(&rhs, &mut out));
                let (par_ns, par_min_ns) = time_ns(iters, || {
                    pp.par_matmul_dense_into(&rhs, &mut out, PAR_WORKERS)
                });
                let (csr_ns, csr_min_ns) = time_ns(iters, || csr.matmul_dense(&rhs));
                summary.push(SummaryPoint {
                    n,
                    width,
                    sparsity,
                    scalar_ns,
                    compiled_scalar_ns,
                    compiled_ns,
                    compiled_min_ns,
                    par_ns,
                    par_min_ns,
                    csr_ns,
                    csr_min_ns,
                });
            }
        }
    }

    for p in &summary {
        println!(
            "{{\"bench\": \"sparse_matmul/summary_n{}_s{}_w{}\", \"sparsity\": {}, \
             \"backend\": \"{}\", \"scalar_ns\": {:.1}, \"compiled_scalar_ns\": {:.1}, \
             \"compiled_ns\": {:.1}, \"par{PAR_WORKERS}_ns\": {:.1}, \"csr_ns\": {:.1}, \
             \"speedup_vs_scalar\": {:.2}, \"speedup_vs_csr\": {:.2}, \
             \"simd_speedup\": {:.2}, \"par_speedup\": {:.2}, \"workers_available\": {}}}",
            p.n,
            (p.sparsity * 100.0).round() as usize,
            p.width,
            p.sparsity,
            backend.label(),
            p.scalar_ns,
            p.compiled_scalar_ns,
            p.compiled_ns,
            p.par_ns,
            p.csr_ns,
            p.scalar_ns / p.compiled_ns,
            p.csr_ns / p.compiled_ns,
            p.compiled_scalar_ns / p.compiled_ns,
            p.compiled_ns / p.par_ns,
            workers_avail,
        );
    }

    // Perf gate 1: the compiled pattern-pruned kernel vs the CSR kernel at
    // equal non-zeros, using per-kernel *minimum* iteration times (immune
    // to one-sided scheduling stalls on shared CI runners). A panic here
    // fails the bench process and therefore the CI job.
    //
    // The headline AVX2 bound — 2x faster than CSR — is enforced on the
    // **geometric mean** across the sparsity-0.75 sweep (the pattern sets'
    // operating sparsity), because a universal per-point 2x is not
    // physically available: at w = 8 the CSR inner loop auto-vectorizes and
    // caps the edge near ~1.7x, and at n = 2048 both kernels are
    // value-arena bandwidth-bound, where the compiled plan's advantage is
    // its shared pattern structure (~half the streamed bytes per non-zero).
    // Per-point floors then catch regressions inside each measured regime
    // (see DESIGN.md, "Kernel dispatch"): at s = 0.90 the structured plan
    // carries per-block overhead over ~6 kept values per block, and narrow
    // rhs lets flat CSR win outright — the floor there only bounds how far.
    let per_point_floor = |p: &SummaryPoint| match backend {
        Backend::Avx2 => {
            if p.sparsity <= 0.75 {
                1.4
            } else {
                0.7
            }
        }
        // the portable fallback keeps the seed's no-regression bound
        // (within 15% of CSR) at the operating sparsity
        Backend::Scalar => {
            if p.sparsity <= 0.75 {
                1.0 / 1.15
            } else {
                1.0 / 1.5
            }
        }
    };
    for p in &summary {
        let speedup = p.csr_min_ns / p.compiled_min_ns;
        assert!(
            speedup >= per_point_floor(p),
            "perf gate: compiled kernel ({}) at {:.2}x CSR (floor {:.2}x) at n={}, w={}, \
             sparsity {} (compiled min {:.0} ns, csr min {:.0} ns)",
            backend.label(),
            speedup,
            per_point_floor(p),
            p.n,
            p.width,
            p.sparsity,
            p.compiled_min_ns,
            p.csr_min_ns,
        );
    }
    if backend == Backend::Avx2 {
        for &sparsity in &sweep_sparsities() {
            let ratios: Vec<f64> = summary
                .iter()
                .filter(|p| p.sparsity == sparsity)
                .map(|p| p.csr_min_ns / p.compiled_min_ns)
                .collect();
            let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
            let required = if sparsity <= 0.75 { 2.0 } else { 1.25 };
            println!(
                "{{\"bench\": \"sparse_matmul/gate_s{}\", \"geomean_speedup_vs_csr\": {:.3}, \
                 \"required\": {required}, \"points\": {}}}",
                (sparsity * 100.0).round() as usize,
                geomean,
                ratios.len(),
            );
            assert!(
                geomean >= required,
                "perf gate: geometric-mean SIMD speedup vs CSR at sparsity {sparsity} is \
                 {geomean:.3}x, below the required {required}x",
            );
        }
    }

    // Perf gate 2: intra-matmul parallelism must pay off on a large single
    // inference — par_matmul with 4 workers at least 2x the single-threaded
    // compiled kernel at the n=2048, w=64 point. Only enforceable where the
    // host actually has the hardware threads (the JSON rows record
    // `workers_available`, so a single-core run is visibly unenforced, not
    // silently passing).
    if let Some(p) = summary
        .iter()
        .filter(|p| p.width == 64 && p.n == 2048)
        .max_by(|a, b| a.sparsity.total_cmp(&b.sparsity))
    {
        if workers_avail >= PAR_WORKERS {
            assert!(
                p.par_min_ns * 2.0 <= p.compiled_min_ns,
                "perf gate: par_matmul with {PAR_WORKERS} workers (min {:.0} ns) is not 2x the \
                 single-threaded compiled kernel (min {:.0} ns) at n={}, w=64",
                p.par_min_ns,
                p.compiled_min_ns,
                p.n,
            );
        } else {
            println!(
                "par gate skipped: {} hardware thread(s) available, {PAR_WORKERS} required",
                workers_avail
            );
        }
    }
}

/// Real serving-path throughput: `pool::run_batches` wall-clock over a
/// banked model (the level-0 variant of a paper-shaped transformer), i.e.
/// what every micro-batch of the single-device and fleet engines executes.
/// The scarce-batch variant (one batch against 4 workers) exercises the
/// intra-matmul parallel path the pool falls back to when batch-level
/// chunking cannot use the pool.
fn bench_pool_throughput(c: &mut Criterion) {
    let model = TransformerLm::new(TransformerConfig::paper_transformer(96), 17);
    let backbone = block_prune_model(&model, &BlockPruningConfig::default());
    let space = generate_pattern_space(
        &model,
        &backbone,
        &[0.75],
        &PatternSpaceConfig {
            pattern_size: 4,
            patterns_per_set: 2,
            sample_fraction: 0.5,
            seed: 17,
        },
    );
    let mut bank = ModelBank::new(&model, backbone, &space, &[0], MemoryModel::odroid_xu3(), 1);
    let banked = bank.get(0).clone();
    let batches = vec![4usize; if quick() { 16 } else { 64 }];
    let mut group = c.benchmark_group("pool_throughput");
    group.sample_size(if quick() { 5 } else { 10 });
    group.bench_function(format!("run_batches_{}x4_4workers", batches.len()), |b| {
        b.iter(|| pool::run_batches(&banked, &batches, 4))
    });
    group.bench_function(format!("run_batches_{}x4_1worker", batches.len()), |b| {
        b.iter(|| pool::run_batches(&banked, &batches, 1))
    });
    group.bench_function("run_batches_1x64_4workers_intra", |b| {
        b.iter(|| pool::run_batches(&banked, &[64], 4))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_pool_throughput);
criterion_main!(benches);
