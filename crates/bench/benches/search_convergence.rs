//! Criterion bench: convergence of the pluggable Level-2 optimizers — how
//! fast each `rt3-search` optimizer runs one budget-matched search over the
//! surrogate task (wall-clock of propose/evaluate/observe through the
//! memoizing driver), plus a `{"bench": "search_convergence/...", ...}`
//! JSON summary per optimizer with the best reward reached at budget and
//! the distinct evaluations spent to first reach it, for the search-quality
//! trajectory.
//!
//! Set `BENCH_QUICK=1` (CI) to shrink the budget and sample counts.

use criterion::{criterion_group, criterion_main, Criterion};
use rt3_core::{
    build_optimizer, build_search_space, evaluate_assignment_with_reference,
    level2_assignment_space, level2_runs_reference, run_level1, BackboneResult, OptimizerKind,
    Rt3Config, SurrogateEvaluator, TaskProfile,
};
use rt3_pruning::PatternSpace;
use rt3_search::{DriverConfig, SearchDriver};
use rt3_transformer::{TransformerConfig, TransformerLm};

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok()
}

fn budget() -> usize {
    if quick() {
        16
    } else {
        48
    }
}

fn offline() -> (TransformerLm, BackboneResult, PatternSpace, Rt3Config) {
    let model = TransformerLm::new(TransformerConfig::tiny(32), 13);
    let mut config = Rt3Config::tiny_test();
    config.candidate_sparsities = 8;
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    (model, backbone, space, config)
}

fn bench_search_convergence(c: &mut Criterion) {
    let (model, backbone, space, config) = offline();
    let assignment_space = level2_assignment_space(&space, &config);
    // invariant across assignments — hoist it so the timed loop measures
    // search + per-assignment evaluation, not reference recomputation
    let reference = level2_runs_reference(&model, &backbone, &space, &config);
    let budget = budget();
    let mut group = c.benchmark_group("search_convergence");
    group.sample_size(10);
    for kind in OptimizerKind::all() {
        if kind == OptimizerKind::Exhaustive {
            // not budget-matched; its cost is just `size` evaluations
            continue;
        }
        group.bench_function(format!("{kind}_budget{budget}"), |b| {
            b.iter(|| {
                let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
                let mut optimizer = build_optimizer(kind, assignment_space, config.seed);
                let driver = SearchDriver::new(DriverConfig::budget(budget));
                driver.run(optimizer.as_mut(), |actions| {
                    evaluate_assignment_with_reference(
                        &model,
                        &backbone,
                        &space,
                        &config,
                        &mut evaluator,
                        actions,
                        true,
                        reference,
                    )
                })
            })
        });
    }
    group.finish();

    // one instrumented run per optimizer for the convergence-quality JSON
    for kind in OptimizerKind::all() {
        if kind == OptimizerKind::Exhaustive {
            continue;
        }
        let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
        let mut optimizer = build_optimizer(kind, assignment_space, config.seed);
        let driver = SearchDriver::new(DriverConfig::budget(budget));
        let outcome = driver.run(optimizer.as_mut(), |actions| {
            evaluate_assignment_with_reference(
                &model,
                &backbone,
                &space,
                &config,
                &mut evaluator,
                actions,
                true,
                reference,
            )
        });
        let best = outcome.best().expect("non-empty search");
        println!(
            "{{\"bench\": \"search_convergence/{kind}\", \"budget\": {budget}, \
             \"best_reward\": {:.6}, \"evals_to_best\": {}, \"proposals\": {}, \
             \"cache_hit_rate\": {:.4}}}",
            best.reward,
            outcome.evals_to_best,
            outcome.proposals,
            outcome.cache_hit_rate(),
        );
    }
}

criterion_group!(benches, bench_search_convergence);
criterion_main!(benches);
