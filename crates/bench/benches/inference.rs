//! Criterion bench: one forward pass of the live Transformer LM (dense vs
//! masked), plus the analytical latency predictor across V/F levels.

use criterion::{criterion_group, criterion_main, Criterion};
use rt3_hardware::{ModelWorkload, PerformancePredictor, VfLevel};
use rt3_pruning::{block_prune_model, BlockPruningConfig};
use rt3_sparse::SparseFormat;
use rt3_transformer::{TransformerConfig, TransformerLm};

fn bench_inference(c: &mut Criterion) {
    let model = TransformerLm::new(TransformerConfig::paper_transformer(256), 2);
    let masks = block_prune_model(&model, &BlockPruningConfig::default());
    let tokens: Vec<usize> = (1..25).collect();
    let mut group = c.benchmark_group("inference");
    group.sample_size(10);
    group.bench_function("forward_dense_seq24", |b| {
        b.iter(|| model.predict(&tokens, None))
    });
    group.bench_function("forward_bp_masked_seq24", |b| {
        b.iter(|| model.predict(&tokens, Some(&masks)))
    });
    let predictor = PerformancePredictor::cortex_a7();
    let config = TransformerConfig::distilbert_full(30522);
    group.bench_function("latency_prediction_all_levels", |b| {
        b.iter(|| {
            VfLevel::odroid_xu3_a7()
                .iter()
                .map(|l| {
                    let w = ModelWorkload::from_config(&config, 0.6, 64, SparseFormat::BlockPruned);
                    predictor.latency_ms(&w, l)
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
