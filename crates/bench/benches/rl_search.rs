//! Criterion bench: throughput of the RL controller (episode sampling +
//! policy-gradient update) and of one full Level-2 search episode with the
//! surrogate evaluator.

use criterion::{criterion_group, criterion_main, Criterion};
use rt3_core::evaluate_assignment;
use rt3_core::{build_search_space, run_level1, Rt3Config, SurrogateEvaluator, TaskProfile};
use rt3_rl::{Controller, ControllerConfig};
use rt3_transformer::{TransformerConfig, TransformerLm};

fn bench_rl(c: &mut Criterion) {
    let mut group = c.benchmark_group("rl_search");
    group.sample_size(10);
    group.bench_function("controller_episode_and_update", |b| {
        let mut controller = Controller::new(ControllerConfig::default());
        b.iter(|| {
            let e = controller.sample_episode();
            controller.update(&e, 0.5);
        })
    });
    let model = TransformerLm::new(TransformerConfig::tiny(32), 5);
    let config = Rt3Config::tiny_test();
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    group.bench_function("evaluate_one_assignment", |b| {
        b.iter(|| {
            evaluate_assignment(
                &model,
                &backbone,
                &space,
                &config,
                &mut evaluator,
                &[0, 1, 2],
                true,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rl);
criterion_main!(benches);
