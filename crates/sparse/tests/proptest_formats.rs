//! Property-based tests for the sparse formats: every format must round-trip
//! to the same dense matrix and its kernel must agree with the dense matmul.

use proptest::prelude::*;
use rt3_sparse::{
    BlockPartition, BlockPrunedMatrix, CooMatrix, CsrMatrix, PatternMask, PatternPrunedMatrix,
    PatternSet,
};
use rt3_tensor::Matrix;

/// Strategy: a small matrix with controllable density of non-zeros.
fn sparse_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_dim, 2..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(prop_oneof![3 => Just(0.0f32), 2 => -2.0f32..2.0f32], r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn dense_rhs(rows: usize, cols: usize, seed: u64) -> Matrix {
    // Deterministic pseudo-random right-hand side.
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i * 31 + j * 17 + seed as usize) as f32;
        (x.sin() * 10.0).fract()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coo_roundtrip_and_matmul(m in sparse_matrix(12)) {
        let coo = CooMatrix::from_dense(&m);
        prop_assert!(coo.to_dense().approx_eq(&m, 0.0));
        let rhs = dense_rhs(m.cols(), 3, 1);
        prop_assert!(coo.matmul_dense(&rhs).approx_eq(&m.matmul(&rhs), 1e-3));
        prop_assert_eq!(coo.nnz(), m.count_nonzero());
    }

    #[test]
    fn csr_roundtrip_and_matmul(m in sparse_matrix(12)) {
        let csr = CsrMatrix::from_dense(&m);
        prop_assert!(csr.to_dense().approx_eq(&m, 0.0));
        let rhs = dense_rhs(m.cols(), 4, 2);
        prop_assert!(csr.matmul_dense(&rhs).approx_eq(&m.matmul(&rhs), 1e-3));
    }

    #[test]
    fn csr_never_needs_more_index_bytes_than_coo(m in sparse_matrix(14)) {
        let coo = CooMatrix::from_dense(&m);
        let csr = CsrMatrix::from_dense(&m);
        // CSR stores rows+1 pointers vs one row index per nnz; for matrices
        // with at least one nnz per row on average CSR wins, and in general
        // total storage never exceeds COO by more than the pointer array.
        prop_assert!(csr.storage_bytes() <= coo.storage_bytes() + (m.rows() + 1) * 4);
    }

    #[test]
    fn block_pruned_roundtrip_and_matmul(m in sparse_matrix(12), blocks in 1usize..4) {
        let blocks = blocks.min(m.rows());
        let partition = BlockPartition::even(m.rows(), blocks);
        let bp = BlockPrunedMatrix::from_dense(&m, &partition);
        prop_assert!(bp.to_dense().approx_eq(&m, 0.0));
        let rhs = dense_rhs(m.cols(), 3, 3);
        prop_assert!(bp.matmul_dense(&rhs).approx_eq(&m.matmul(&rhs), 1e-3));
        // the keep-mask must cover every non-zero
        let masked = m.zip(&bp.mask(), |v, mask| v * mask);
        prop_assert!(masked.approx_eq(&m, 0.0));
    }

    #[test]
    fn pattern_pruned_mask_is_consistent(
        m in sparse_matrix(12),
        psize in 2usize..5,
        sparsity in 0.0f64..0.9,
    ) {
        let bits_a = PatternMask::from_importance(
            &Matrix::from_fn(psize, psize, |i, j| ((i * 7 + j * 13) % 5) as f32),
            sparsity,
        );
        let bits_b = PatternMask::from_importance(
            &Matrix::from_fn(psize, psize, |i, j| ((i * 3 + j * 11) % 7) as f32),
            sparsity,
        );
        let set = PatternSet::new(vec![bits_a, bits_b]).expect("non-empty set");
        let pp = PatternPrunedMatrix::from_dense(&m, &set);
        // reconstruction equals mask applied to the original
        let expected = m.zip(&pp.mask(), |v, mask| v * mask);
        prop_assert!(pp.to_dense().approx_eq(&expected, 0.0));
        // kernel agrees with masked dense matmul
        let rhs = dense_rhs(m.cols(), 2, 4);
        prop_assert!(pp.matmul_dense(&rhs).approx_eq(&expected.matmul(&rhs), 1e-3));
        // every block got a valid assignment
        prop_assert!(pp.assignments().iter().all(|&a| (a as usize) < set.len()));
    }

    /// The compiled-plan kernel must be *bit-identical* to the retained
    /// scalar reference across random shapes, including partial edge blocks
    /// (dims not divisible by psize) and all-zero blocks. Exact equality
    /// holds because the plan accumulates into each output element in the
    /// same order as the reference; the only divergence — the reference
    /// skips stored zeros, the plan multiplies them through — can flip the
    /// sign of a zero partial sum, and `approx_eq(_, 0.0)` treats -0.0 and
    /// +0.0 as equal (documented float-reassociation-free tolerance).
    #[test]
    fn compiled_kernel_is_bit_identical_to_scalar_reference(
        m in sparse_matrix(17),
        psize in 2usize..6,
        sparsity in 0.0f64..0.95,
        width in 1usize..6,
    ) {
        let bits_a = PatternMask::from_importance(
            &Matrix::from_fn(psize, psize, |i, j| ((i * 5 + j * 3) % 7) as f32),
            sparsity,
        );
        let bits_b = PatternMask::from_importance(
            &Matrix::from_fn(psize, psize, |i, j| ((i * 11 + j * 2) % 9) as f32),
            sparsity,
        );
        let set = PatternSet::new(vec![bits_a, bits_b]).expect("non-empty set");
        let pp = PatternPrunedMatrix::from_dense(&m, &set);
        let rhs = dense_rhs(m.cols(), width, 7);
        let compiled = pp.matmul_dense(&rhs);
        let scalar = rt3_sparse::reference::matmul_dense_scalar(&pp, &rhs);
        prop_assert!(
            compiled.approx_eq(&scalar, 0.0),
            "compiled plan diverged from the scalar reference"
        );
        // the zero-allocation entry point computes the same thing
        let mut out = Matrix::filled(pp.rows(), width, f32::NAN);
        pp.matmul_dense_into(&rhs, &mut out);
        prop_assert!(out.approx_eq(&compiled, 0.0));
    }

    /// An all-zero matrix exercises every block through the plan with a
    /// fully zero arena: kernels, mask and reconstruction must still agree
    /// with the reference bit-for-bit.
    #[test]
    fn compiled_kernel_handles_all_zero_blocks(
        rows in 2usize..14,
        cols in 2usize..14,
        psize in 2usize..5,
    ) {
        let m = Matrix::zeros(rows, cols);
        let imp = Matrix::from_fn(psize, psize, |i, j| ((i * 3 + j) % 4) as f32);
        let set = PatternSet::new(vec![PatternMask::from_importance(&imp, 0.5)])
            .expect("non-empty set");
        let pp = PatternPrunedMatrix::from_dense(&m, &set);
        let rhs = dense_rhs(cols, 3, 9);
        let compiled = pp.matmul_dense(&rhs);
        let scalar = rt3_sparse::reference::matmul_dense_scalar(&pp, &rhs);
        prop_assert!(compiled.approx_eq(&scalar, 0.0));
        prop_assert!(compiled.approx_eq(&Matrix::zeros(rows, 3), 0.0));
        prop_assert!(pp.to_dense().approx_eq(&m, 0.0));
        // the mask still marks kept positions even though every value is 0
        prop_assert!(pp.mask().count_nonzero() > 0);
    }

    #[test]
    fn pattern_sparsity_matches_request(psize in 3usize..12, sparsity in 0.0f64..1.0) {
        let imp = Matrix::from_fn(psize, psize, |i, j| (i * psize + j) as f32);
        let p = PatternMask::from_importance(&imp, sparsity);
        let expected_keep = ((1.0 - sparsity) * (psize * psize) as f64).round() as usize;
        prop_assert_eq!(p.ones(), expected_keep);
    }

    #[test]
    fn partition_covers_every_row_exactly_once(dim in 1usize..200, blocks in 1usize..16) {
        let blocks = blocks.min(dim);
        let p = BlockPartition::even(dim, blocks);
        prop_assert_eq!(p.total(), dim);
        let mut covered = vec![false; dim];
        for &(s, e) in p.ranges() {
            for (i, slot) in covered.iter_mut().enumerate().skip(s).take(e - s) {
                prop_assert!(!*slot, "row {} covered twice", i);
                *slot = true;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c));
    }
}
