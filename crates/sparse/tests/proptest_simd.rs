//! Property-based bit-exactness pins for the PR 10 execution strategies:
//! the runtime-dispatched SIMD backend, the w = 64 block-row-tiled column
//! sweep and the row-range parallel `par_matmul_into` must all produce
//! *bit-identical* outputs to the compiled scalar kernels (which are
//! themselves pinned against the seed scalar reference in
//! `proptest_formats.rs`). Equality here is strict `to_bits` — not even a
//! signed-zero divergence is tolerated, because every strategy preserves
//! the per-output-element accumulation order exactly.
//!
//! On hosts without AVX2 the detected backend degrades to `Scalar` and
//! these tests pin the (then trivial) scalar-vs-scalar equality plus the
//! parallel/tiled paths, which are backend-independent.

use proptest::prelude::*;
use rt3_sparse::{Backend, PatternMask, PatternPrunedMatrix, PatternSet};
use rt3_tensor::Matrix;

/// Strategy: a small matrix with controllable density of non-zeros.
fn sparse_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_dim, 2..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(prop_oneof![3 => Just(0.0f32), 2 => -2.0f32..2.0f32], r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Rhs widths biased toward the SIMD-covered set {8, 16, 32, 64}, with
/// scalar-fallback widths mixed in so the dispatch boundary is crossed.
fn rhs_width() -> impl Strategy<Value = usize> {
    prop_oneof![
        4 => prop_oneof![Just(8usize), Just(16), Just(32), Just(64)],
        2 => 1usize..8,
    ]
}

fn dense_rhs(rows: usize, cols: usize, seed: u64) -> Matrix {
    // Deterministic pseudo-random right-hand side.
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i * 31 + j * 17 + seed as usize) as f32;
        (x.sin() * 10.0).fract()
    })
}

fn two_pattern_set(psize: usize, sparsity: f64) -> PatternSet {
    let bits_a = PatternMask::from_importance(
        &Matrix::from_fn(psize, psize, |i, j| ((i * 5 + j * 3) % 7) as f32),
        sparsity,
    );
    let bits_b = PatternMask::from_importance(
        &Matrix::from_fn(psize, psize, |i, j| ((i * 11 + j * 2) % 9) as f32),
        sparsity,
    );
    PatternSet::new(vec![bits_a, bits_b]).expect("non-empty set")
}

/// Strict bitwise equality, element by element. (The vendored proptest
/// stand-in reports failures as `Err(String)`.)
fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) -> Result<(), String> {
    prop_assert_eq!(a.shape(), b.shape());
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{} diverged at flat index {} ({} vs {})",
            what,
            i,
            x,
            y
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The detected backend (AVX2 where available) must match a
    /// scalar-forced plan bit-for-bit across random shapes, pattern sizes,
    /// sparsities and rhs widths — including edge blocks (dims not
    /// divisible by psize) and the non-SIMD width fallbacks.
    #[test]
    fn simd_backend_is_bit_identical_to_scalar(
        m in sparse_matrix(17),
        psize in 2usize..6,
        sparsity in 0.0f64..0.95,
        width in rhs_width(),
    ) {
        let set = two_pattern_set(psize, sparsity);
        let detected = PatternPrunedMatrix::from_dense(&m, &set);
        let scalar = PatternPrunedMatrix::from_dense_with_backend(&m, &set, Backend::Scalar);
        // lowering itself must agree before we compare kernels
        prop_assert_eq!(detected.assignments(), scalar.assignments());
        let rhs = dense_rhs(m.cols(), width, 7);
        let mut out_detected = Matrix::filled(m.rows(), width, f32::NAN);
        let mut out_scalar = Matrix::filled(m.rows(), width, f32::NAN);
        detected.matmul_dense_into(&rhs, &mut out_detected);
        scalar.matmul_dense_into(&rhs, &mut out_scalar);
        assert_bits_eq(&out_detected, &out_scalar, "simd vs scalar")?;
    }

    /// `par_matmul_into` must equal the serial kernel bit-for-bit for
    /// every worker count from degenerate (1) past the block-row count
    /// (where extra workers get empty ranges), on the detected backend.
    #[test]
    fn par_matmul_is_bit_identical_for_every_row_split(
        m in sparse_matrix(15),
        psize in 2usize..6,
        sparsity in 0.0f64..0.95,
        width in rhs_width(),
    ) {
        let set = two_pattern_set(psize, sparsity);
        let pp = PatternPrunedMatrix::from_dense(&m, &set);
        let rhs = dense_rhs(m.cols(), width, 11);
        let mut serial = Matrix::filled(m.rows(), width, f32::NAN);
        pp.matmul_dense_into(&rhs, &mut serial);
        let (grid_rows, _) = pp.block_grid();
        for workers in 1..=grid_rows + 2 {
            let mut par = Matrix::filled(m.rows(), width, f32::NAN);
            pp.par_matmul_dense_into(&rhs, &mut par, workers);
            assert_bits_eq(&par, &serial, "par vs serial")?;
        }
    }
}

/// The w = 64 tiled column sweep only engages once the rhs overflows the
/// assumed L1 (> 32 KB, i.e. more than 128 rhs rows at width 64) — too big
/// for the random-shape strategies above, so pin it deterministically:
/// tiled + SIMD + parallel against the scalar-forced serial plan, bitwise.
#[test]
fn tiled_w64_path_is_bit_identical_to_scalar() {
    let n = 160; // rhs is 160 x 64 floats = 40 KB > L1_BYTES
    let m = Matrix::from_fn(n, n, |i, j| {
        if (i * 7 + j * 13) % 4 == 0 {
            0.0
        } else {
            ((i * 31 + j * 17) as f32).sin()
        }
    });
    let set = two_pattern_set(8, 0.75);
    let detected = PatternPrunedMatrix::from_dense(&m, &set);
    let scalar = PatternPrunedMatrix::from_dense_with_backend(&m, &set, Backend::Scalar);
    let rhs = dense_rhs(n, 64, 13);
    let mut want = Matrix::filled(n, 64, f32::NAN);
    scalar.matmul_dense_into(&rhs, &mut want);
    let mut got = Matrix::filled(n, 64, f32::NAN);
    detected.matmul_dense_into(&rhs, &mut got);
    for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "tiled simd vs scalar diverged");
    }
    for workers in [2usize, 3, 4, 7] {
        let mut par = Matrix::filled(n, 64, f32::NAN);
        detected.par_matmul_dense_into(&rhs, &mut par, workers);
        for (a, b) in par.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "tiled parallel diverged at {workers} workers"
            );
        }
    }
}
