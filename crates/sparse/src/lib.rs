//! # rt3-sparse
//!
//! Sparse matrix formats and kernels for the RT3 reproduction.
//!
//! RT3 ("Dancing along Battery", DAC 2021) argues that *how* pruned weights
//! are stored determines whether pruning actually helps on a mobile device:
//! irregular pruning needs COO-style indices, while block-structured pruning
//! (Level 1) and pattern pruning (Level 2) keep enough regularity for cheap
//! indices and SIMD-friendly kernels. This crate implements all of those
//! formats so the trade-off can be measured:
//!
//! * [`CooMatrix`] and [`CsrMatrix`] — irregular-sparsity baselines.
//! * [`BlockPrunedMatrix`] / [`BlockPartition`] — the Level-1 BP format.
//! * [`PatternMask`], [`PatternSet`], [`PatternPrunedMatrix`] — the Level-2
//!   PP format that is swapped at run time to follow DVFS.
//! * [`PatternPlan`] / [`CompiledPattern`] — the compiled execution plan a
//!   [`PatternPrunedMatrix`] lowers into at construction: flat value arena,
//!   shared per-pattern offset tables and a blocked SIMD-friendly kernel
//!   (see `plan.rs`; the seed scalar kernel survives in [`reference`] for
//!   bit-level cross-checks).
//! * [`Backend`] — the runtime-detected kernel backend (`simd.rs`):
//!   hand-written AVX2 kernels for the full-block widths the engines
//!   dispatch, bit-identical to the compiled scalar fallback.
//! * [`StorageReport`] — byte-level comparison across formats.
//!
//! # Examples
//!
//! ```
//! use rt3_sparse::{BlockPartition, StorageReport};
//! use rt3_tensor::Matrix;
//!
//! // A matrix where entire columns were pruned inside each row block.
//! let mut w = Matrix::filled(8, 8, 1.0);
//! for r in 0..8 {
//!     for c in 0..4 {
//!         w.set(r, c * 2, 0.0);
//!     }
//! }
//! let report = StorageReport::measure(&w, &BlockPartition::even(8, 2));
//! let coo = report.cost(rt3_sparse::SparseFormat::Coo).expect("coo entry");
//! let bp = report.cost(rt3_sparse::SparseFormat::BlockPruned).expect("bp entry");
//! assert!(bp.index_bytes < coo.index_bytes);
//! ```

// unsafe is denied crate-wide and only re-allowed inside `simd`, whose
// `std::arch` kernels carry per-call safety contracts; everything else
// stays safe Rust
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod coo;
mod csr;
mod pattern;
mod plan;
pub mod reference;
mod simd;
mod storage;

pub use block::{BlockPartition, BlockPrunedMatrix, PrunedBlock};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use pattern::{PatternMask, PatternPrunedMatrix, PatternSet, SparseError};
pub use plan::{CompiledPattern, PatternPlan};
pub use simd::Backend;
pub use storage::{FormatCost, SparseFormat, StorageReport};
