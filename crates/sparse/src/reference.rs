//! Retained scalar reference kernel for pattern-pruned matmul.
//!
//! This is the seed implementation of `PatternPrunedMatrix::matmul_dense`
//! kept verbatim in behaviour — including its per-call costs: it re-derives
//! every pattern's `kept_positions()` (a heap allocation per block per
//! call), walks positions as `(usize, usize)` pairs and re-checks matrix
//! bounds per element. It exists for two reasons:
//!
//! * **Bit-level cross-checking.** The compiled plan
//!   ([`crate::PatternPlan`]) accumulates into each output element in the
//!   same order as this kernel, so property tests assert exact equality
//!   between the two (`tests/proptest_formats.rs`). The one intentional
//!   divergence: the reference skips stored values that are exactly `0.0`
//!   while the plan multiplies them through branch-free; with finite
//!   right-hand sides that changes nothing but the sign of a zero partial
//!   sum, which compares equal.
//! * **Before/after benchmarking.** `benches/sparse_matmul.rs` times this
//!   kernel next to the compiled plan, so the committed bench JSON carries
//!   the seed baseline the speedup is measured against.
//!
//! Not for production use: every serving path goes through the plan.

use crate::pattern::PatternPrunedMatrix;
use rt3_tensor::Matrix;

/// Scalar seed kernel: sparse × dense product `m * rhs`, re-deriving the
/// pattern offset lists on every call exactly as the pre-plan
/// implementation did.
///
/// # Panics
///
/// Panics if `m.cols() != rhs.rows()`.
pub fn matmul_dense_scalar(m: &PatternPrunedMatrix, rhs: &Matrix) -> Matrix {
    assert_eq!(m.cols(), rhs.rows(), "matmul shape mismatch");
    let mut out = Matrix::zeros(m.rows(), rhs.cols());
    let psize = m.pattern_size();
    let (_, grid_cols) = m.block_grid();
    for bi in 0..m.assignments().len() {
        let vals = m.plan().block_values(bi);
        let br = bi / grid_cols;
        let bc = bi % grid_cols;
        let pattern = &m.pattern_set().patterns()[m.assignments()[bi] as usize];
        for ((r, c), &v) in pattern.kept_positions().iter().zip(vals.iter()) {
            if v == 0.0 {
                continue;
            }
            let rr = br * psize + r;
            let cc = bc * psize + c;
            if rr >= m.rows() || cc >= m.cols() {
                continue;
            }
            let rhs_row = rhs.row(cc);
            let out_row = out.row_mut(rr);
            for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                *o += v * b;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PatternMask, PatternSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_agrees_with_masked_dense_matmul() {
        let mut rng = StdRng::seed_from_u64(41);
        let dense = Matrix::xavier(11, 9, &mut rng);
        let set = PatternSet::new(vec![
            PatternMask::random(4, 0.5, &mut rng),
            PatternMask::random(4, 0.5, &mut rng),
        ])
        .unwrap();
        let pp = PatternPrunedMatrix::from_dense(&dense, &set);
        let rhs = Matrix::xavier(9, 5, &mut rng);
        let expected = pp.to_dense().matmul(&rhs);
        assert!(matmul_dense_scalar(&pp, &rhs).approx_eq(&expected, 1e-4));
    }
}
