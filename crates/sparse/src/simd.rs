//! Runtime-dispatched SIMD kernels for the compiled pattern plans.
//!
//! The width-monomorphized full-block kernels of [`crate::PatternPlan`] hold
//! each output row in a register accumulator; on x86-64 with AVX2 that
//! accumulator maps directly onto 256-bit vector registers (one `__m256`
//! per 8 rhs columns). This module provides those kernels as `std::arch`
//! intrinsics for the widths the serving engines dispatch (8, 16, 32, 64 —
//! 1, 2, 4 and 8 vectors per output row), selected **once** at plan
//! construction via [`Backend::detect`] and falling back to the portable
//! compiled-scalar kernels everywhere else.
//!
//! **Bit-exactness contract.** The SIMD kernels vectorize across the
//! *width/columns* axis: every output element keeps its own lane-private
//! accumulator and receives the kept values of its row in exactly the arena
//! order the scalar kernel uses. The multiply and the add are kept as two
//! separately-rounded operations (`_mm256_mul_ps` + `_mm256_add_ps`) —
//! *not* fused into `_mm256_fmadd_ps`, which skips the intermediate
//! rounding and would diverge from the scalar reference in the last ulp.
//! FMA availability is still part of the feature gate (every AVX2 serving
//! part has it, and it keeps the door open for a documented
//! accuracy-mode kernel later), but the dispatched kernels only rely on
//! AVX2. The result is bit-identical to
//! [`crate::reference::matmul_dense_scalar`], which the proptest suite
//! (`tests/proptest_simd.rs`) pins.

// the one module where `unsafe` is re-allowed (crate-wide deny in
// lib.rs): every unsafe block here discharges a documented contract of a
// `#[target_feature]` kernel
#![allow(unsafe_code)]

use serde::{Deserialize, Serialize};

/// Kernel backend executing a [`crate::PatternPlan`].
///
/// Detected once per process ([`Backend::detect`], cached) and stored in
/// the plan at construction. `Scalar` is the portable fallback — the PR 3
/// compiled register-accumulator kernels — and the bit-exactness reference
/// for every other backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// Portable compiled-scalar kernels (auto-vectorized by the compiler).
    Scalar,
    /// Hand-written AVX2 kernels for the full-block paths with rhs width
    /// 8, 16, 32 or 64; every other shape falls back to `Scalar` code.
    Avx2,
}

impl Backend {
    /// Detects the best backend the CPU supports. The answer is computed
    /// once and cached for the process (the `is_x86_feature_detected!`
    /// probe is not free and plans are built on V/F switches).
    pub fn detect() -> Self {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<Backend> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            #[cfg(target_arch = "x86_64")]
            {
                if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                    return Backend::Avx2;
                }
            }
            Backend::Scalar
        })
    }

    /// Short label for bench/report lines (`"scalar"` / `"avx2"`).
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }

    /// Clamps a requested backend to what the running CPU actually
    /// supports. Every constructor storing a backend goes through this, so
    /// a stored `Avx2` implies the features were detected in this process —
    /// the safety invariant the `unsafe` kernel calls rely on.
    pub(crate) fn validated(self) -> Self {
        match self {
            Backend::Scalar => Backend::Scalar,
            Backend::Avx2 => Self::detect(),
        }
    }

    /// Whether the width-`w` full-block kernel has a SIMD implementation
    /// under this backend.
    pub fn covers_width(&self, w: usize) -> bool {
        matches!(self, Backend::Avx2) && matches!(w, 8 | 16 | 32 | 64)
    }

    /// Elementwise `dst[i] = src[i] * src[i]` through the backend — the
    /// block-scoring primitive of plan lowering (`best_pattern_for_block`
    /// precomputes the squares once per block). Each product is a single
    /// f32 multiply in both backends, so the bytes written are identical.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub(crate) fn square_into(&self, dst: &mut [f32], src: &[f32]) {
        assert_eq!(dst.len(), src.len(), "square_into length mismatch");
        match self {
            Backend::Scalar => square_into_scalar(dst, src),
            Backend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: a stored/constructed `Avx2` went through
                // `validated()`, so the CPU supports the feature.
                unsafe {
                    avx2::square_into(dst, src)
                }
                #[cfg(not(target_arch = "x86_64"))]
                square_into_scalar(dst, src)
            }
        }
    }
}

impl Default for Backend {
    /// Deserialized plans (the backend is `#[serde(skip)]`-ed — it is
    /// process state, not model data) re-detect on this machine.
    fn default() -> Self {
        Self::detect()
    }
}

fn square_into_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s * s;
    }
}

/// Runs the AVX2 full-block kernel for compile-time rhs width `W`
/// (8, 16, 32 or 64). Mirrors `PatternPlan::block_full_fixed` exactly:
/// output row loaded once into `W / 8` vector accumulators, one broadcast
/// multiply-add per kept value in arena order, row stored back once.
///
/// `base_r` indexes `out` (which may be a row-range slice during
/// `par_matmul_into`); `base_c` indexes `rhs` absolutely.
///
/// # Panics
///
/// Panics (in debug) if `W` is not a supported width or a row range is
/// out of bounds; release relies on the caller passing full-block
/// geometry, exactly like the scalar kernel.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn block_full<const W: usize>(
    row_ptr: &[u32],
    cols: &[u32],
    vals: &[f32],
    psize: usize,
    base_r: usize,
    base_c: usize,
    rhs: &[f32],
    out: &mut [f32],
) {
    debug_assert!(matches!(W, 8 | 16 | 32 | 64), "unsupported SIMD width");
    // SAFETY: callers dispatch here only when the plan's backend is `Avx2`,
    // which `Backend::validated` only yields after feature detection.
    unsafe {
        match W {
            8 => avx2::block_full::<1>(row_ptr, cols, vals, psize, base_r, base_c, rhs, out),
            16 => avx2::block_full::<2>(row_ptr, cols, vals, psize, base_r, base_c, rhs, out),
            32 => avx2::block_full::<4>(row_ptr, cols, vals, psize, base_r, base_c, rhs, out),
            64 => avx2::block_full::<8>(row_ptr, cols, vals, psize, base_r, base_c, rhs, out),
            _ => unreachable!("unsupported SIMD width {W}"),
        }
    }
}

/// Non-x86-64 stub: never reached because [`Backend::detect`] only returns
/// `Avx2` on x86-64, but the call site must still compile.
#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
pub(crate) fn block_full<const W: usize>(
    _row_ptr: &[u32],
    _cols: &[u32],
    _vals: &[f32],
    _psize: usize,
    _base_r: usize,
    _base_c: usize,
    _rhs: &[f32],
    _out: &mut [f32],
) {
    unreachable!("SIMD backend selected without x86-64 support");
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(unsafe_code)]

    use std::arch::x86_64::*;

    /// AVX2 full-block kernel with `NV` 256-bit accumulators per output
    /// row (rhs width `NV * 8`). See the module docs for the bit-exactness
    /// argument; the loop structure is `PatternPlan::block_full_fixed`
    /// verbatim with the `[f32; W]` accumulator replaced by YMM registers.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (enforced by `Backend::validated`) and full-block
    /// geometry: every `base_r + r` output row and `base_c + c` rhs row
    /// for kept positions must be in bounds of `out` / `rhs` with row
    /// stride `NV * 8`.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn block_full<const NV: usize>(
        row_ptr: &[u32],
        cols: &[u32],
        vals: &[f32],
        psize: usize,
        base_r: usize,
        base_c: usize,
        rhs: &[f32],
        out: &mut [f32],
    ) {
        let w = NV * 8;
        debug_assert!(row_ptr.len() > psize);
        debug_assert!(out.len() >= (base_r + psize) * w);
        let rhs_ptr = rhs.as_ptr();
        let out_ptr = out.as_mut_ptr();
        for r in 0..psize {
            let s = *row_ptr.get_unchecked(r) as usize;
            let e = *row_ptr.get_unchecked(r + 1) as usize;
            if s == e {
                continue;
            }
            let out_row = out_ptr.add((base_r + r) * w);
            let mut acc = [_mm256_setzero_ps(); NV];
            for (i, a) in acc.iter_mut().enumerate() {
                *a = _mm256_loadu_ps(out_row.add(i * 8));
            }
            for k in s..e {
                let c = *cols.get_unchecked(k) as usize;
                let v = _mm256_set1_ps(*vals.get_unchecked(k));
                let rhs_row = rhs_ptr.add((base_c + c) * w);
                for (i, a) in acc.iter_mut().enumerate() {
                    let b = _mm256_loadu_ps(rhs_row.add(i * 8));
                    // mul + add kept separate (not fmadd): bit-identical
                    // rounding to the scalar kernel's `a + v * b`
                    *a = _mm256_add_ps(*a, _mm256_mul_ps(v, b));
                }
            }
            for (i, a) in acc.iter().enumerate() {
                _mm256_storeu_ps(out_row.add(i * 8), *a);
            }
        }
    }

    /// Elementwise square, 8 lanes at a time (same single-rounding f32
    /// multiply as the scalar loop).
    ///
    /// # Safety
    ///
    /// Requires AVX2; `dst` and `src` must have equal length (asserted by
    /// the safe wrapper).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn square_into(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let dst_ptr = dst.as_mut_ptr();
        let src_ptr = src.as_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(src_ptr.add(i));
            _mm256_storeu_ps(dst_ptr.add(i), _mm256_mul_ps(v, v));
            i += 8;
        }
        while i < n {
            let v = *src_ptr.add(i);
            *dst_ptr.add(i) = v * v;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable_and_validated_is_idempotent() {
        let a = Backend::detect();
        let b = Backend::detect();
        assert_eq!(a, b, "detection must be cached and stable");
        assert_eq!(a.validated(), a);
        assert_eq!(Backend::Scalar.validated(), Backend::Scalar);
        // forcing Avx2 clamps to whatever the CPU actually supports
        assert_eq!(Backend::Avx2.validated(), Backend::detect());
    }

    #[test]
    fn covers_width_only_for_simd_backends_and_vector_widths() {
        assert!(!Backend::Scalar.covers_width(8));
        for w in [8, 16, 32, 64] {
            assert!(Backend::Avx2.covers_width(w));
        }
        for w in [0, 1, 4, 7, 9, 24, 128] {
            assert!(!Backend::Avx2.covers_width(w));
        }
    }

    #[test]
    fn square_into_matches_scalar_bitwise_on_both_backends() {
        let src: Vec<f32> = (0..37)
            .map(|i| (i as f32 * 0.37 - 5.0) * 1.7e-3 + (i as f32).sin())
            .collect();
        let mut scalar = vec![0.0f32; src.len()];
        Backend::Scalar.square_into(&mut scalar, &src);
        for (d, &s) in scalar.iter().zip(&src) {
            assert_eq!(d.to_bits(), (s * s).to_bits());
        }
        let mut detected = vec![0.0f32; src.len()];
        Backend::detect().square_into(&mut detected, &src);
        for (a, b) in scalar.iter().zip(&detected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
