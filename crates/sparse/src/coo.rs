//! Coordinate (COO) sparse format.
//!
//! The paper's Challenge 1 argues that irregular (non-structured) pruning
//! must fall back to COO storage — three parallel arrays `row`, `col`,
//! `data` — whose index overhead hurts both memory footprint and mobile
//! inference speed. This module implements that format so the comparison can
//! be measured rather than asserted.

use rt3_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Sparse matrix in coordinate format: one `(row, col, value)` triple per
/// non-zero element.
///
/// # Examples
///
/// ```
/// use rt3_sparse::CooMatrix;
/// use rt3_tensor::Matrix;
///
/// let dense = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
/// let coo = CooMatrix::from_dense(&dense);
/// assert_eq!(coo.nnz(), 2);
/// assert!(coo.to_dense().approx_eq(&dense, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    row_indices: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CooMatrix {
    /// Builds a COO matrix from every non-zero element of `dense`.
    pub fn from_dense(dense: &Matrix) -> Self {
        let mut row_indices = Vec::new();
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        for i in 0..dense.rows() {
            for j in 0..dense.cols() {
                let v = dense.get(i, j);
                if v != 0.0 {
                    row_indices.push(i as u32);
                    col_indices.push(j as u32);
                    values.push(v);
                }
            }
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            row_indices,
            col_indices,
            values,
        }
    }

    /// Logical number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero elements.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of elements that are zero.
    pub fn sparsity(&self) -> f64 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Reconstructs the dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for k in 0..self.values.len() {
            out.set(
                self.row_indices[k] as usize,
                self.col_indices[k] as usize,
                self.values[k],
            );
        }
        out
    }

    /// Sparse × dense product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_dense(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows(), "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        for k in 0..self.values.len() {
            let i = self.row_indices[k] as usize;
            let c = self.col_indices[k] as usize;
            let v = self.values[k];
            for j in 0..rhs.cols() {
                let cur = out.get(i, j);
                out.set(i, j, cur + v * rhs.get(c, j));
            }
        }
        out
    }

    /// Bytes needed to store the matrix: values plus **two** index arrays —
    /// this is exactly the overhead the paper's Challenge 1 highlights.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
            + self.row_indices.len() * std::mem::size_of::<u32>()
            + self.col_indices.len() * std::mem::size_of::<u32>()
    }

    /// Bytes spent on index metadata alone.
    pub fn index_bytes(&self) -> usize {
        (self.row_indices.len() + self.col_indices.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            if rng.gen::<f64>() < density {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn roundtrip_preserves_dense_matrix() {
        let dense = random_sparse(13, 7, 0.3, 1);
        let coo = CooMatrix::from_dense(&dense);
        assert!(coo.to_dense().approx_eq(&dense, 0.0));
    }

    #[test]
    fn matmul_matches_dense_reference() {
        let a = random_sparse(9, 11, 0.25, 2);
        let b = random_sparse(11, 5, 0.8, 3);
        let coo = CooMatrix::from_dense(&a);
        assert!(coo.matmul_dense(&b).approx_eq(&a.matmul(&b), 1e-4));
    }

    #[test]
    fn nnz_and_sparsity_are_consistent() {
        let dense = Matrix::from_rows(&[vec![0.0, 1.0, 0.0, 2.0]]);
        let coo = CooMatrix::from_dense(&dense);
        assert_eq!(coo.nnz(), 2);
        assert!((coo.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn storage_counts_two_index_arrays() {
        let dense = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let coo = CooMatrix::from_dense(&dense);
        assert_eq!(coo.storage_bytes(), 2 * 4 + 2 * 4 + 2 * 4);
        assert_eq!(coo.index_bytes(), 16);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let dense = Matrix::zeros(4, 4);
        let coo = CooMatrix::from_dense(&dense);
        assert_eq!(coo.nnz(), 0);
        assert!(coo.to_dense().approx_eq(&dense, 0.0));
        assert_eq!(coo.storage_bytes(), 0);
    }
}
