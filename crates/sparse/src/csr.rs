//! Compressed sparse row (CSR) format.
//!
//! CSR is the classic middle ground between COO and structured storage: it
//! removes the explicit row index array but still pays one column index per
//! non-zero. It is included as an additional baseline for the storage and
//! kernel benchmarks (`sparse_matmul` bench).

use rt3_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Sparse matrix in compressed sparse row format.
///
/// # Examples
///
/// ```
/// use rt3_sparse::CsrMatrix;
/// use rt3_tensor::Matrix;
///
/// let dense = Matrix::from_rows(&[vec![0.0, 3.0], vec![4.0, 0.0]]);
/// let csr = CsrMatrix::from_dense(&dense);
/// assert_eq!(csr.nnz(), 2);
/// assert!(csr.to_dense().approx_eq(&dense, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from every non-zero element of `dense`.
    pub fn from_dense(dense: &Matrix) -> Self {
        let mut row_ptr = Vec::with_capacity(dense.rows() + 1);
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..dense.rows() {
            for j in 0..dense.cols() {
                let v = dense.get(i, j);
                if v != 0.0 {
                    col_indices.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len() as u32);
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            row_ptr,
            col_indices,
            values,
        }
    }

    /// Logical number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero elements.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of elements that are zero.
    pub fn sparsity(&self) -> f64 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Reconstructs the dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let start = self.row_ptr[i] as usize;
            let end = self.row_ptr[i + 1] as usize;
            for k in start..end {
                out.set(i, self.col_indices[k] as usize, self.values[k]);
            }
        }
        out
    }

    /// Sparse × dense product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_dense(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows(), "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        for i in 0..self.rows {
            let start = self.row_ptr[i] as usize;
            let end = self.row_ptr[i + 1] as usize;
            let out_row = out.row_mut(i);
            for k in start..end {
                let c = self.col_indices[k] as usize;
                let v = self.values[k];
                let rhs_row = rhs.row(c);
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += v * b;
                }
            }
        }
        out
    }

    /// Bytes needed to store values, column indices and row pointers.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
            + self.col_indices.len() * std::mem::size_of::<u32>()
            + self.row_ptr.len() * std::mem::size_of::<u32>()
    }

    /// Bytes spent on index metadata alone.
    pub fn index_bytes(&self) -> usize {
        (self.col_indices.len() + self.row_ptr.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            if rng.gen::<f64>() < density {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn roundtrip_preserves_dense_matrix() {
        let dense = random_sparse(10, 17, 0.2, 11);
        let csr = CsrMatrix::from_dense(&dense);
        assert!(csr.to_dense().approx_eq(&dense, 0.0));
    }

    #[test]
    fn matmul_matches_dense_reference() {
        let a = random_sparse(8, 12, 0.3, 12);
        let b = random_sparse(12, 6, 0.9, 13);
        let csr = CsrMatrix::from_dense(&a);
        assert!(csr.matmul_dense(&b).approx_eq(&a.matmul(&b), 1e-4));
    }

    #[test]
    fn csr_index_overhead_is_below_coo() {
        let dense = random_sparse(30, 30, 0.2, 14);
        let coo = CooMatrix::from_dense(&dense);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(coo.nnz(), csr.nnz());
        assert!(csr.index_bytes() < coo.index_bytes());
    }

    #[test]
    fn empty_rows_are_represented() {
        let dense = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 0.0]]);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.nnz(), 1);
        assert!(csr.to_dense().approx_eq(&dense, 0.0));
    }
}
