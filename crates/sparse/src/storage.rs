//! Storage accounting across sparse formats.
//!
//! The paper motivates block-structured pruning by the index overhead of
//! irregular (COO) storage. [`StorageReport`] quantifies that comparison for
//! any pruned matrix so the claim can be reproduced numerically (it also
//! feeds the memory-traffic term of the latency model in `rt3-hardware`).

use crate::block::{BlockPartition, BlockPrunedMatrix};
use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use rt3_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Identifies a sparse storage format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SparseFormat {
    /// Dense row-major storage (no pruning benefit, no index overhead).
    Dense,
    /// Coordinate format: one `(row, col)` pair per non-zero.
    Coo,
    /// Compressed sparse row.
    Csr,
    /// Block-structured pruned storage (RT3 Level 1).
    BlockPruned,
}

impl std::fmt::Display for SparseFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SparseFormat::Dense => "dense",
            SparseFormat::Coo => "coo",
            SparseFormat::Csr => "csr",
            SparseFormat::BlockPruned => "block-pruned",
        };
        f.write_str(name)
    }
}

/// Storage cost of one matrix in one format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FormatCost {
    /// The format being measured.
    pub format: SparseFormat,
    /// Bytes of value payload.
    pub value_bytes: usize,
    /// Bytes of index/metadata overhead.
    pub index_bytes: usize,
}

impl FormatCost {
    /// Total bytes (values + indices).
    pub fn total_bytes(&self) -> usize {
        self.value_bytes + self.index_bytes
    }
}

/// Side-by-side storage comparison of a pruned matrix in every format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageReport {
    /// Logical shape of the matrix.
    pub shape: (usize, usize),
    /// Number of non-zero values.
    pub nnz: usize,
    /// Sparsity in `[0, 1]`.
    pub sparsity: f64,
    /// Cost per format.
    pub costs: Vec<FormatCost>,
}

impl StorageReport {
    /// Measures the storage cost of `dense` (assumed already pruned, i.e.
    /// containing structural zeros) in each format. The block-pruned entry
    /// uses `block_partition` over the rows.
    pub fn measure(dense: &Matrix, block_partition: &BlockPartition) -> Self {
        let coo = CooMatrix::from_dense(dense);
        let csr = CsrMatrix::from_dense(dense);
        let bp = BlockPrunedMatrix::from_dense(dense, block_partition);
        let costs = vec![
            FormatCost {
                format: SparseFormat::Dense,
                value_bytes: dense.len() * std::mem::size_of::<f32>(),
                index_bytes: 0,
            },
            FormatCost {
                format: SparseFormat::Coo,
                value_bytes: coo.nnz() * std::mem::size_of::<f32>(),
                index_bytes: coo.index_bytes(),
            },
            FormatCost {
                format: SparseFormat::Csr,
                value_bytes: csr.nnz() * std::mem::size_of::<f32>(),
                index_bytes: csr.index_bytes(),
            },
            FormatCost {
                format: SparseFormat::BlockPruned,
                value_bytes: bp.nnz() * std::mem::size_of::<f32>(),
                index_bytes: bp.index_bytes(),
            },
        ];
        Self {
            shape: dense.shape(),
            nnz: coo.nnz(),
            sparsity: dense.sparsity(),
            costs,
        }
    }

    /// Cost entry for a specific format.
    pub fn cost(&self, format: SparseFormat) -> Option<&FormatCost> {
        self.costs.iter().find(|c| c.format == format)
    }

    /// The cheapest format by total bytes.
    pub fn best_format(&self) -> SparseFormat {
        self.costs
            .iter()
            .min_by_key(|c| c.total_bytes())
            .map(|c| c.format)
            .unwrap_or(SparseFormat::Dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A block-column-pruned matrix: in each of 4 row blocks, half of the
    /// columns are zeroed entirely.
    fn block_pruned_dense(seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Matrix::from_fn(40, 40, |_, _| rng.gen_range(-1.0..1.0f32));
        for (b, range) in BlockPartition::even(40, 4).ranges().iter().enumerate() {
            for c in 0..40 {
                if (c + b) % 2 == 0 {
                    for r in range.0..range.1 {
                        m.set(r, c, 0.0);
                    }
                }
            }
        }
        m
    }

    #[test]
    fn report_covers_all_formats() {
        let dense = block_pruned_dense(1);
        let report = StorageReport::measure(&dense, &BlockPartition::even(40, 4));
        assert_eq!(report.costs.len(), 4);
        assert!((report.sparsity - 0.5).abs() < 1e-9);
        for fmt in [
            SparseFormat::Dense,
            SparseFormat::Coo,
            SparseFormat::Csr,
            SparseFormat::BlockPruned,
        ] {
            assert!(report.cost(fmt).is_some(), "missing {}", fmt);
        }
    }

    #[test]
    fn block_pruned_structure_prefers_block_format() {
        let dense = block_pruned_dense(2);
        let report = StorageReport::measure(&dense, &BlockPartition::even(40, 4));
        assert_eq!(report.best_format(), SparseFormat::BlockPruned);
        let coo = report.cost(SparseFormat::Coo).unwrap();
        let bp = report.cost(SparseFormat::BlockPruned).unwrap();
        assert_eq!(coo.value_bytes, bp.value_bytes);
        assert!(bp.index_bytes < coo.index_bytes / 10);
    }

    #[test]
    fn dense_wins_when_nothing_is_pruned() {
        let mut rng = StdRng::seed_from_u64(3);
        let dense = Matrix::xavier(20, 20, &mut rng);
        let report = StorageReport::measure(&dense, &BlockPartition::even(20, 2));
        assert_eq!(report.best_format(), SparseFormat::Dense);
    }

    #[test]
    fn format_display_names() {
        assert_eq!(SparseFormat::Coo.to_string(), "coo");
        assert_eq!(SparseFormat::BlockPruned.to_string(), "block-pruned");
    }
}
