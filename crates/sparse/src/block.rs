//! Block-structured pruned storage (the Level-1 "BP" format of RT3).
//!
//! The weight matrix is divided into row-wise blocks; inside each block whole
//! columns are pruned. Storage therefore needs only the surviving column
//! indices per block plus a dense packed value buffer — far less index
//! metadata than COO, and the packed buffer keeps the regular access pattern
//! that mobile SIMD/parallel kernels want (the paper's "hardware friendly"
//! argument).
//!
//! Row pruning inside column-wise blocks is the transpose of this layout;
//! callers that need it can transpose before and after.

use rt3_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// An even partition of a dimension into contiguous blocks.
///
/// # Examples
///
/// ```
/// use rt3_sparse::BlockPartition;
///
/// let p = BlockPartition::even(10, 3);
/// assert_eq!(p.ranges(), &[(0, 4), (4, 7), (7, 10)]);
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPartition {
    ranges: Vec<(usize, usize)>,
}

impl BlockPartition {
    /// Splits `dimension` into `blocks` contiguous ranges of (nearly) equal
    /// size. The first `dimension % blocks` ranges get one extra element.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0` or `blocks > dimension` (for a non-zero
    /// dimension).
    pub fn even(dimension: usize, blocks: usize) -> Self {
        assert!(blocks > 0, "at least one block is required");
        assert!(
            dimension == 0 || blocks <= dimension,
            "cannot split {} elements into {} blocks",
            dimension,
            blocks
        );
        let base = dimension / blocks;
        let extra = dimension % blocks;
        let mut ranges = Vec::with_capacity(blocks);
        let mut start = 0;
        for b in 0..blocks {
            let size = base + usize::from(b < extra);
            ranges.push((start, start + size));
            start += size;
        }
        Self { ranges }
    }

    /// Splits `dimension` into blocks of at most `block_size` elements.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn with_block_size(dimension: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let mut ranges = Vec::new();
        let mut start = 0;
        while start < dimension {
            let end = (start + block_size).min(dimension);
            ranges.push((start, end));
            start = end;
        }
        if ranges.is_empty() {
            ranges.push((0, 0));
        }
        Self { ranges }
    }

    /// The half-open `(start, end)` ranges.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Returns `true` if the partition has no blocks.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total number of elements covered.
    pub fn total(&self) -> usize {
        self.ranges.last().map_or(0, |&(_, end)| end)
    }
}

/// One row block of a [`BlockPrunedMatrix`]: the surviving columns and their
/// packed values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrunedBlock {
    /// First row (inclusive) of the block in the logical matrix.
    pub row_start: usize,
    /// Last row (exclusive) of the block in the logical matrix.
    pub row_end: usize,
    /// Column indices that survived pruning, ascending.
    pub kept_cols: Vec<u32>,
    /// Packed values, shape `(row_end - row_start) x kept_cols.len()`.
    pub values: Matrix,
}

/// A matrix stored in block-structured pruned form: row-wise blocks with
/// per-block column pruning.
///
/// # Examples
///
/// ```
/// use rt3_sparse::{BlockPartition, BlockPrunedMatrix};
/// use rt3_tensor::Matrix;
///
/// let dense = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![3.0, 0.0, 4.0]]);
/// let bp = BlockPrunedMatrix::from_dense(&dense, &BlockPartition::even(2, 1));
/// assert_eq!(bp.nnz(), 4);
/// assert!(bp.to_dense().approx_eq(&dense, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockPrunedMatrix {
    rows: usize,
    cols: usize,
    blocks: Vec<PrunedBlock>,
}

impl BlockPrunedMatrix {
    /// Builds the pruned representation from a dense matrix, keeping, inside
    /// each row block, only the columns that contain at least one non-zero.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover exactly `dense.rows()` rows.
    pub fn from_dense(dense: &Matrix, partition: &BlockPartition) -> Self {
        assert_eq!(
            partition.total(),
            dense.rows(),
            "partition must cover all {} rows",
            dense.rows()
        );
        let mut blocks = Vec::with_capacity(partition.len());
        for &(row_start, row_end) in partition.ranges() {
            let mut kept_cols = Vec::new();
            for c in 0..dense.cols() {
                let nonzero = (row_start..row_end).any(|r| dense.get(r, c) != 0.0);
                if nonzero {
                    kept_cols.push(c as u32);
                }
            }
            let values = Matrix::from_fn(row_end - row_start, kept_cols.len(), |i, j| {
                dense.get(row_start + i, kept_cols[j] as usize)
            });
            blocks.push(PrunedBlock {
                row_start,
                row_end,
                kept_cols,
                values,
            });
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            blocks,
        }
    }

    /// Builds the representation keeping an explicit set of columns per block
    /// (the output of the Level-1 pruning decision).
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover `dense.rows()`, if
    /// `kept_cols_per_block.len() != partition.len()`, or if any kept column
    /// index is out of bounds or not strictly ascending.
    pub fn from_dense_with_kept(
        dense: &Matrix,
        partition: &BlockPartition,
        kept_cols_per_block: &[Vec<u32>],
    ) -> Self {
        assert_eq!(partition.total(), dense.rows(), "partition must cover rows");
        assert_eq!(
            kept_cols_per_block.len(),
            partition.len(),
            "one kept-column list per block"
        );
        let mut blocks = Vec::with_capacity(partition.len());
        for (&(row_start, row_end), kept) in partition.ranges().iter().zip(kept_cols_per_block) {
            for w in kept.windows(2) {
                assert!(w[0] < w[1], "kept columns must be strictly ascending");
            }
            if let Some(&last) = kept.last() {
                assert!((last as usize) < dense.cols(), "kept column out of bounds");
            }
            let values = Matrix::from_fn(row_end - row_start, kept.len(), |i, j| {
                dense.get(row_start + i, kept[j] as usize)
            });
            blocks.push(PrunedBlock {
                row_start,
                row_end,
                kept_cols: kept.clone(),
                values,
            });
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            blocks,
        }
    }

    /// Logical number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The row blocks.
    pub fn blocks(&self) -> &[PrunedBlock] {
        &self.blocks
    }

    /// Number of stored (kept) elements.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.values.len()).sum()
    }

    /// Fraction of logical elements that were pruned away.
    pub fn sparsity(&self) -> f64 {
        if self.rows * self.cols == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Reconstructs the dense matrix (pruned positions become zero).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for b in &self.blocks {
            for i in 0..b.values.rows() {
                for (j, &c) in b.kept_cols.iter().enumerate() {
                    out.set(b.row_start + i, c as usize, b.values.get(i, j));
                }
            }
        }
        out
    }

    /// Sparse × dense product `self * rhs`, operating block by block on the
    /// packed buffers (the regular inner loop the paper calls
    /// hardware-friendly).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_dense(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows(), "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        for b in &self.blocks {
            for i in 0..b.values.rows() {
                let out_row_index = b.row_start + i;
                for (j, &c) in b.kept_cols.iter().enumerate() {
                    let v = b.values.get(i, j);
                    if v == 0.0 {
                        continue;
                    }
                    let rhs_row = rhs.row(c as usize);
                    let out_row = out.row_mut(out_row_index);
                    for (o, &r) in out_row.iter_mut().zip(rhs_row.iter()) {
                        *o += v * r;
                    }
                }
            }
        }
        out
    }

    /// Bytes needed to store packed values plus per-block column indices and
    /// block boundaries. Compare with [`crate::CooMatrix::storage_bytes`].
    pub fn storage_bytes(&self) -> usize {
        self.nnz() * std::mem::size_of::<f32>() + self.index_bytes()
    }

    /// Bytes spent on index metadata alone (kept-column lists + block
    /// boundary pairs).
    pub fn index_bytes(&self) -> usize {
        let col_index_bytes: usize = self
            .blocks
            .iter()
            .map(|b| b.kept_cols.len() * std::mem::size_of::<u32>())
            .sum();
        let boundary_bytes = self.blocks.len() * 2 * std::mem::size_of::<u32>();
        col_index_bytes + boundary_bytes
    }

    /// The binary keep-mask (1.0 = kept) with the logical matrix shape; used
    /// to apply the pruning decision during masked training.
    pub fn mask(&self) -> Matrix {
        let mut mask = Matrix::zeros(self.rows, self.cols);
        for b in &self.blocks {
            for r in b.row_start..b.row_end {
                for &c in &b.kept_cols {
                    mask.set(r, c as usize, 1.0);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dense(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn even_partition_distributes_remainder() {
        let p = BlockPartition::even(7, 3);
        assert_eq!(p.ranges(), &[(0, 3), (3, 5), (5, 7)]);
        assert_eq!(p.total(), 7);
    }

    #[test]
    fn block_size_partition_covers_dimension() {
        let p = BlockPartition::with_block_size(10, 4);
        assert_eq!(p.ranges(), &[(0, 4), (4, 8), (8, 10)]);
        let p0 = BlockPartition::with_block_size(0, 4);
        assert_eq!(p0.total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn even_partition_rejects_zero_blocks() {
        let _ = BlockPartition::even(5, 0);
    }

    #[test]
    fn from_dense_with_kept_respects_explicit_columns() {
        let dense = random_dense(6, 8, 21);
        let partition = BlockPartition::even(6, 2);
        let kept = vec![vec![0, 2, 5], vec![1, 7]];
        let bp = BlockPrunedMatrix::from_dense_with_kept(&dense, &partition, &kept);
        assert_eq!(bp.nnz(), 3 * 3 + 3 * 2);
        let rebuilt = bp.to_dense();
        // kept position survives
        assert_eq!(rebuilt.get(0, 2), dense.get(0, 2));
        // pruned position is zeroed
        assert_eq!(rebuilt.get(0, 1), 0.0);
        assert_eq!(rebuilt.get(5, 0), 0.0);
    }

    #[test]
    fn matmul_matches_masked_dense_reference() {
        let dense = random_dense(9, 12, 22);
        let partition = BlockPartition::even(9, 3);
        let kept = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9, 10, 11]];
        let bp = BlockPrunedMatrix::from_dense_with_kept(&dense, &partition, &kept);
        let rhs = random_dense(12, 5, 23);
        let expected = bp.to_dense().matmul(&rhs);
        assert!(bp.matmul_dense(&rhs).approx_eq(&expected, 1e-4));
    }

    #[test]
    fn index_overhead_is_far_below_coo_at_same_sparsity() {
        // 60x60 matrix, keep half the columns in each of 6 blocks.
        let dense = random_dense(60, 60, 24);
        let partition = BlockPartition::even(60, 6);
        let kept: Vec<Vec<u32>> = (0..6).map(|_| (0..30).collect()).collect();
        let bp = BlockPrunedMatrix::from_dense_with_kept(&dense, &partition, &kept);
        let coo = CooMatrix::from_dense(&bp.to_dense());
        assert_eq!(bp.nnz(), coo.nnz());
        assert!(
            bp.index_bytes() * 10 < coo.index_bytes(),
            "BP indices {} should be well below COO indices {}",
            bp.index_bytes(),
            coo.index_bytes()
        );
    }

    #[test]
    fn mask_matches_kept_positions() {
        let dense = random_dense(4, 4, 25);
        let partition = BlockPartition::even(4, 2);
        let kept = vec![vec![0, 3], vec![1]];
        let bp = BlockPrunedMatrix::from_dense_with_kept(&dense, &partition, &kept);
        let mask = bp.mask();
        assert_eq!(mask.get(0, 0), 1.0);
        assert_eq!(mask.get(0, 1), 0.0);
        assert_eq!(mask.get(3, 1), 1.0);
        assert_eq!(mask.get(3, 0), 0.0);
        assert!((mask.sparsity() - bp.sparsity()).abs() < 1e-9);
    }

    #[test]
    fn from_dense_keeps_only_nonzero_columns_per_block() {
        let mut dense = Matrix::zeros(4, 3);
        dense.set(0, 0, 1.0);
        dense.set(3, 2, 2.0);
        let bp = BlockPrunedMatrix::from_dense(&dense, &BlockPartition::even(4, 2));
        assert_eq!(bp.blocks()[0].kept_cols, vec![0]);
        assert_eq!(bp.blocks()[1].kept_cols, vec![2]);
        assert!(bp.to_dense().approx_eq(&dense, 0.0));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn kept_columns_must_be_sorted() {
        let dense = Matrix::zeros(2, 4);
        let partition = BlockPartition::even(2, 1);
        let _ = BlockPrunedMatrix::from_dense_with_kept(&dense, &partition, &[vec![2, 1]]);
    }
}
