//! Pattern pruning (PP) primitives: pattern masks, pattern sets and the
//! pattern-pruned matrix format.
//!
//! RT3's Level-2 software reconfiguration assigns, to every `psize x psize`
//! block of a weight matrix, one pattern chosen from a small *pattern set*.
//! Switching the active pattern set at run time changes the model's sparsity
//! (and therefore its latency) without touching the backbone weights — that
//! is what makes the switch lightweight enough to track DVFS.

use crate::plan::PatternPlan;
use rand::seq::SliceRandom;
use rand::Rng;
use rt3_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A square binary mask applied to one block of a weight matrix.
///
/// The paper uses `psize = 100`; tests and examples use smaller sizes.
///
/// # Examples
///
/// ```
/// use rt3_sparse::PatternMask;
/// use rt3_tensor::Matrix;
///
/// let importance = Matrix::from_rows(&[vec![5.0, 1.0], vec![0.5, 4.0]]);
/// let p = PatternMask::from_importance(&importance, 0.5);
/// assert_eq!(p.ones(), 2);
/// assert!(p.is_kept(0, 0) && p.is_kept(1, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternMask {
    size: usize,
    bits: Vec<bool>,
}

impl PatternMask {
    /// Creates a mask from explicit bits (`true` = keep).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != size * size`.
    pub fn new(size: usize, bits: Vec<bool>) -> Self {
        assert_eq!(bits.len(), size * size, "pattern bit count mismatch");
        Self { size, bits }
    }

    /// The all-ones (dense) pattern.
    pub fn dense(size: usize) -> Self {
        Self {
            size,
            bits: vec![true; size * size],
        }
    }

    /// Builds a pattern that keeps the `(1 - sparsity)` most important
    /// positions of `importance` (the paper's component ③: positions with
    /// the largest accumulated block weight survive).
    ///
    /// # Panics
    ///
    /// Panics if `importance` is not square or `sparsity` is outside `[0, 1]`.
    pub fn from_importance(importance: &Matrix, sparsity: f64) -> Self {
        assert_eq!(
            importance.rows(),
            importance.cols(),
            "importance map must be square"
        );
        assert!(
            (0.0..=1.0).contains(&sparsity),
            "sparsity must be in [0, 1]"
        );
        let size = importance.rows();
        let total = size * size;
        let keep = ((1.0 - sparsity) * total as f64).round() as usize;
        let mut order: Vec<usize> = (0..total).collect();
        order.sort_by(|&a, &b| {
            let va = importance.as_slice()[a].abs();
            let vb = importance.as_slice()[b].abs();
            vb.partial_cmp(&va).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut bits = vec![false; total];
        for &idx in order.iter().take(keep) {
            bits[idx] = true;
        }
        Self { size, bits }
    }

    /// Builds a uniformly random pattern with the requested sparsity (the
    /// "rPP" ablation baseline).
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1]`.
    pub fn random<R: Rng + ?Sized>(size: usize, sparsity: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&sparsity),
            "sparsity must be in [0, 1]"
        );
        let total = size * size;
        let keep = ((1.0 - sparsity) * total as f64).round() as usize;
        let mut idx: Vec<usize> = (0..total).collect();
        idx.shuffle(rng);
        let mut bits = vec![false; total];
        for &i in idx.iter().take(keep) {
            bits[i] = true;
        }
        Self { size, bits }
    }

    /// Pattern side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of kept positions.
    pub fn ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of positions that are pruned.
    pub fn sparsity(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        1.0 - self.ones() as f64 / self.bits.len() as f64
    }

    /// Returns `true` if position `(row, col)` is kept.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn is_kept(&self, row: usize, col: usize) -> bool {
        assert!(row < self.size && col < self.size, "index out of bounds");
        self.bits[row * self.size + col]
    }

    /// Coordinates of the kept positions in row-major order (the PatDNN-style
    /// precomputed offset list reused by every block with this pattern).
    pub fn kept_positions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.ones());
        for r in 0..self.size {
            for c in 0..self.size {
                if self.bits[r * self.size + c] {
                    out.push((r, c));
                }
            }
        }
        out
    }

    /// The mask as a 0/1 matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.size, self.size, |i, j| {
            if self.is_kept(i, j) {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Fraction of kept positions shared with `other` (relative to the larger
    /// kept count); used to reproduce the Fig. 4 observation that patterns
    /// for different V/F levels share important positions.
    ///
    /// # Panics
    ///
    /// Panics if sizes differ.
    pub fn overlap(&self, other: &PatternMask) -> f64 {
        assert_eq!(self.size, other.size, "pattern size mismatch");
        let shared = self
            .bits
            .iter()
            .zip(other.bits.iter())
            .filter(|(&a, &b)| a && b)
            .count();
        let denom = self.ones().max(other.ones());
        if denom == 0 {
            return 0.0;
        }
        shared as f64 / denom as f64
    }

    /// ASCII rendering for Fig. 4-style visualisation: `#` = kept, `.` =
    /// pruned.
    pub fn render_ascii(&self) -> String {
        let mut out = String::with_capacity(self.size * (self.size + 1));
        for r in 0..self.size {
            for c in 0..self.size {
                out.push(if self.is_kept(r, c) { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }

    /// Dominant column structure: for each column, the fraction of kept rows.
    /// Used to compare column characteristics across patterns (Fig. 4's blue
    /// box observation).
    pub fn column_density(&self) -> Vec<f64> {
        (0..self.size)
            .map(|c| {
                (0..self.size).filter(|&r| self.is_kept(r, c)).count() as f64 / self.size as f64
            })
            .collect()
    }
}

/// A set of [`PatternMask`]s that share a size and target sparsity; one set
/// is searched per V/F level.
///
/// # Examples
///
/// ```
/// use rt3_sparse::{PatternMask, PatternSet};
///
/// let set = PatternSet::new(vec![PatternMask::dense(4)])?;
/// assert_eq!(set.len(), 1);
/// assert_eq!(set.size(), 4);
/// # Ok::<(), rt3_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternSet {
    patterns: Vec<PatternMask>,
}

/// Errors produced by sparse-format constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A pattern set was constructed with no patterns.
    EmptyPatternSet,
    /// Patterns in a set have inconsistent sizes.
    MixedPatternSizes {
        /// Size of the first pattern.
        expected: usize,
        /// Conflicting size encountered.
        found: usize,
    },
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::EmptyPatternSet => {
                write!(f, "pattern set must contain at least one pattern")
            }
            SparseError::MixedPatternSizes { expected, found } => write!(
                f,
                "pattern sizes are inconsistent: expected {}, found {}",
                expected, found
            ),
        }
    }
}

impl std::error::Error for SparseError {}

impl PatternSet {
    /// Creates a pattern set.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::EmptyPatternSet`] if `patterns` is empty and
    /// [`SparseError::MixedPatternSizes`] if the patterns disagree on size.
    pub fn new(patterns: Vec<PatternMask>) -> Result<Self, SparseError> {
        let first = patterns.first().ok_or(SparseError::EmptyPatternSet)?;
        let size = first.size();
        for p in &patterns {
            if p.size() != size {
                return Err(SparseError::MixedPatternSizes {
                    expected: size,
                    found: p.size(),
                });
            }
        }
        Ok(Self { patterns })
    }

    /// The patterns in the set.
    pub fn patterns(&self) -> &[PatternMask] {
        &self.patterns
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if the set has no patterns (never true for a
    /// successfully constructed set).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Pattern side length.
    pub fn size(&self) -> usize {
        self.patterns[0].size()
    }

    /// Mean sparsity over the patterns in the set.
    pub fn mean_sparsity(&self) -> f64 {
        self.patterns.iter().map(|p| p.sparsity()).sum::<f64>() / self.patterns.len() as f64
    }

    /// Index of the pattern that preserves the largest l2 norm of `block`
    /// (the selection rule of component ④: "choose the pattern with the
    /// largest l2-norm for each block").
    ///
    /// `block` may be smaller than the pattern (partial edge block); only
    /// the overlapping region is scored. Delegates to the same shared
    /// scoring implementation [`crate::PatternPlan`] compiles with —
    /// including the detected SIMD backend for the squared-element
    /// precompute — so the two paths cannot diverge; bulk assignment
    /// should go through `PatternPrunedMatrix::from_dense`, which
    /// amortises the pattern compilation this method redoes per call.
    pub fn best_pattern_for(&self, block: &Matrix) -> usize {
        let compiled: Vec<crate::CompiledPattern> = self
            .patterns
            .iter()
            .map(crate::CompiledPattern::compile)
            .collect();
        let h = block.rows().min(self.size());
        let w = block.cols().min(self.size());
        let mut squares = Vec::new();
        crate::plan::best_pattern_for_block(
            &compiled,
            block.as_slice(),
            block.cols(),
            0,
            h,
            w,
            crate::Backend::detect(),
            &mut squares,
        )
    }

    /// Bytes needed to ship this pattern set to the device: one bit per
    /// pattern position. This is what gets swapped in/out of off-chip memory
    /// when the V/F level changes.
    pub fn storage_bytes(&self) -> usize {
        self.patterns.len() * (self.size() * self.size() + 7) / 8
    }
}

/// A matrix stored as pattern-pruned blocks: every `psize x psize` block
/// carries the index of its assigned pattern, and only the kept values.
///
/// Construction immediately lowers the matrix into a [`PatternPlan`] — a
/// flat value arena plus shared per-pattern offset tables — and every
/// kernel (`matmul_dense`, `to_dense`, `mask`) executes the plan, so no
/// per-call layout or indexing work remains on the hot path. The seed's
/// scalar kernel is retained in [`crate::reference`] for bit-level
/// cross-checking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternPrunedMatrix {
    set: PatternSet,
    plan: PatternPlan,
}

impl PatternPrunedMatrix {
    /// Prunes `dense` with the given pattern set: each block is assigned the
    /// pattern that preserves the largest l2 norm, then only kept values are
    /// stored — compiled directly into the execution plan.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set has more than `u16::MAX` patterns.
    pub fn from_dense(dense: &Matrix, set: &PatternSet) -> Self {
        Self {
            plan: PatternPlan::compile(dense, set),
            set: set.clone(),
        }
    }

    /// [`Self::from_dense`] with an explicit kernel backend (clamped to
    /// CPU support); used by the bit-exactness suites to force the scalar
    /// reference path on SIMD hosts.
    pub fn from_dense_with_backend(
        dense: &Matrix,
        set: &PatternSet,
        backend: crate::Backend,
    ) -> Self {
        Self {
            plan: PatternPlan::compile_with_backend(dense, set, backend),
            set: set.clone(),
        }
    }

    /// Logical number of rows.
    pub fn rows(&self) -> usize {
        self.plan.shape().0
    }

    /// Logical number of columns.
    pub fn cols(&self) -> usize {
        self.plan.shape().1
    }

    /// Pattern side length.
    pub fn pattern_size(&self) -> usize {
        self.plan.pattern_size()
    }

    /// `(block rows, block cols)` of the block grid.
    pub fn block_grid(&self) -> (usize, usize) {
        self.plan.block_grid()
    }

    /// Per-block pattern assignment (row-major over the block grid).
    pub fn assignments(&self) -> &[u16] {
        self.plan.assignments()
    }

    /// The pattern set used.
    pub fn pattern_set(&self) -> &PatternSet {
        &self.set
    }

    /// The compiled execution plan backing every kernel of this matrix.
    pub fn plan(&self) -> &PatternPlan {
        &self.plan
    }

    /// Number of stored values (including zeros that happen to be kept).
    pub fn stored_values(&self) -> usize {
        self.plan.stored_values()
    }

    /// Fraction of logical elements pruned away by the pattern assignment.
    pub fn sparsity(&self) -> f64 {
        self.mask().sparsity()
    }

    /// Reconstructs the dense matrix with pruned positions zeroed.
    pub fn to_dense(&self) -> Matrix {
        let (rows, cols) = self.plan.shape();
        let mut out = Matrix::zeros(rows, cols);
        self.plan
            .for_each_kept(|r, c, v| out.as_mut_slice()[r * cols + c] = v);
        out
    }

    /// The binary keep-mask with the logical matrix shape.
    pub fn mask(&self) -> Matrix {
        let (rows, cols) = self.plan.shape();
        let mut mask = Matrix::zeros(rows, cols);
        self.plan
            .for_each_kept(|r, c, _| mask.as_mut_slice()[r * cols + c] = 1.0);
        mask
    }

    /// Sparse × dense product `self * rhs`, executing the compiled plan
    /// (flat arena, shared per-pattern offset tables, full/edge block
    /// dispatch — see [`PatternPlan::matmul_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_dense(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), rhs.cols());
        self.plan.matmul_into(rhs, &mut out);
        out
    }

    /// Zero-allocation variant of [`Self::matmul_dense`]: writes into a
    /// caller-provided output matrix (zeroed first), so steady-state
    /// serving can reuse its buffers across calls.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `out` is not shaped
    /// `(self.rows(), rhs.cols())`.
    pub fn matmul_dense_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.plan.matmul_into(rhs, out);
    }

    /// Intra-matmul parallel variant of [`Self::matmul_dense_into`]:
    /// contiguous block-row ranges on scoped threads over disjoint output
    /// slices, bit-identical to the serial kernel for every worker count
    /// (see [`PatternPlan::par_matmul_into`]).
    ///
    /// # Panics
    ///
    /// Same shape requirements as [`Self::matmul_dense_into`].
    pub fn par_matmul_dense_into(&self, rhs: &Matrix, out: &mut Matrix, workers: usize) {
        self.plan.par_matmul_into(rhs, out, workers);
    }

    /// Bytes to store the matrix: packed values + one `u16` pattern id per
    /// block + the pattern bitmaps themselves.
    pub fn storage_bytes(&self) -> usize {
        self.stored_values() * std::mem::size_of::<f32>() + self.index_bytes()
    }

    /// Bytes spent on metadata (assignments + pattern bitmaps). The
    /// compiled plan's derived offset tables are not counted: they are
    /// working-set state rebuilt from the bitmaps, not shipped storage
    /// (see [`PatternPlan::table_bytes`] for their footprint).
    pub fn index_bytes(&self) -> usize {
        std::mem::size_of_val(self.assignments()) + self.set.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn checkerboard(size: usize) -> PatternMask {
        let bits = (0..size * size)
            .map(|i| (i / size + i % size).is_multiple_of(2))
            .collect();
        PatternMask::new(size, bits)
    }

    #[test]
    fn from_importance_keeps_top_positions() {
        let imp = Matrix::from_rows(&[
            vec![9.0, 1.0, 8.0],
            vec![0.1, 7.0, 0.2],
            vec![0.3, 0.4, 6.0],
        ]);
        let p = PatternMask::from_importance(&imp, 1.0 - 4.0 / 9.0);
        assert_eq!(p.ones(), 4);
        assert!(p.is_kept(0, 0) && p.is_kept(0, 2) && p.is_kept(1, 1) && p.is_kept(2, 2));
    }

    #[test]
    fn random_pattern_hits_requested_sparsity() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = PatternMask::random(10, 0.75, &mut rng);
        assert_eq!(p.ones(), 25);
        assert!((p.sparsity() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn overlap_is_one_for_identical_patterns() {
        let p = checkerboard(6);
        assert!((p.overlap(&p) - 1.0).abs() < 1e-12);
        let dense = PatternMask::dense(6);
        // against the dense pattern the overlap is bounded by the denser
        // pattern's kept count
        let expected = p.ones() as f64 / dense.ones() as f64;
        assert!((p.overlap(&dense) - expected).abs() < 1e-12);
    }

    #[test]
    fn render_ascii_has_one_char_per_cell() {
        let p = checkerboard(4);
        let s = p.render_ascii();
        assert_eq!(s.lines().count(), 4);
        assert!(s.lines().all(|l| l.len() == 4));
        assert_eq!(s.matches('#').count(), p.ones());
    }

    #[test]
    fn pattern_set_rejects_empty_and_mixed_sizes() {
        assert_eq!(
            PatternSet::new(vec![]).unwrap_err(),
            SparseError::EmptyPatternSet
        );
        let err = PatternSet::new(vec![PatternMask::dense(2), PatternMask::dense(3)]).unwrap_err();
        assert!(matches!(err, SparseError::MixedPatternSizes { .. }));
    }

    #[test]
    fn best_pattern_maximises_preserved_norm() {
        let left = PatternMask::new(2, vec![true, false, true, false]);
        let right = PatternMask::new(2, vec![false, true, false, true]);
        let set = PatternSet::new(vec![left, right]).unwrap();
        let block = Matrix::from_rows(&[vec![0.0, 5.0], vec![0.0, 5.0]]);
        assert_eq!(set.best_pattern_for(&block), 1);
    }

    #[test]
    fn pattern_pruned_roundtrip_matches_mask() {
        let mut rng = StdRng::seed_from_u64(9);
        let dense = Matrix::xavier(10, 10, &mut rng);
        let set = PatternSet::new(vec![
            PatternMask::random(5, 0.5, &mut rng),
            PatternMask::random(5, 0.5, &mut rng),
        ])
        .unwrap();
        let pp = PatternPrunedMatrix::from_dense(&dense, &set);
        let rebuilt = pp.to_dense();
        let expected = dense.zip(&pp.mask(), |v, m| v * m);
        assert!(rebuilt.approx_eq(&expected, 0.0));
        // blocks tile the matrix exactly, so overall sparsity equals the
        // mean sparsity of the assigned patterns (both patterns keep the
        // same number of positions here).
        assert!((pp.sparsity() - set.mean_sparsity()).abs() < 1e-9);
    }

    #[test]
    fn pattern_pruned_matmul_matches_masked_dense() {
        let mut rng = StdRng::seed_from_u64(10);
        let dense = Matrix::xavier(9, 7, &mut rng);
        let set = PatternSet::new(vec![
            PatternMask::random(4, 0.25, &mut rng),
            PatternMask::random(4, 0.25, &mut rng),
            PatternMask::random(4, 0.25, &mut rng),
        ])
        .unwrap();
        let pp = PatternPrunedMatrix::from_dense(&dense, &set);
        let rhs = Matrix::xavier(7, 3, &mut rng);
        let expected = pp.to_dense().matmul(&rhs);
        assert!(pp.matmul_dense(&rhs).approx_eq(&expected, 1e-4));
    }

    #[test]
    fn partial_edge_blocks_are_handled() {
        let mut rng = StdRng::seed_from_u64(11);
        let dense = Matrix::xavier(7, 5, &mut rng);
        let set = PatternSet::new(vec![PatternMask::random(4, 0.5, &mut rng)]).unwrap();
        let pp = PatternPrunedMatrix::from_dense(&dense, &set);
        assert_eq!(pp.block_grid(), (2, 2));
        let rebuilt = pp.to_dense();
        assert_eq!(rebuilt.shape(), (7, 5));
        let expected = dense.zip(&pp.mask(), |v, m| v * m);
        assert!(rebuilt.approx_eq(&expected, 0.0));
    }

    #[test]
    fn storage_accounts_for_pattern_reuse() {
        let mut rng = StdRng::seed_from_u64(12);
        let dense = Matrix::xavier(20, 20, &mut rng);
        let set = PatternSet::new(vec![
            PatternMask::random(5, 0.6, &mut rng),
            PatternMask::random(5, 0.6, &mut rng),
        ])
        .unwrap();
        let pp = PatternPrunedMatrix::from_dense(&dense, &set);
        // metadata: 16 blocks * 2 bytes + 2 patterns * ceil(25/8) bytes
        assert_eq!(pp.index_bytes(), 16 * 2 + 2 * 4);
        assert_eq!(pp.stored_values(), 16 * 10);
    }

    #[test]
    fn lowering_backend_is_bit_stable() {
        // the SIMD squared-element precompute used during block scoring
        // must produce the exact assignments and packed values the scalar
        // lowering produces — rebuild_cold cost drops, results do not move
        let mut rng = StdRng::seed_from_u64(77);
        let dense = Matrix::xavier(37, 29, &mut rng);
        let set = PatternSet::new(
            (0..4)
                .map(|_| PatternMask::random(8, 0.75, &mut rng))
                .collect(),
        )
        .unwrap();
        let detected = PatternPrunedMatrix::from_dense(&dense, &set);
        let scalar =
            PatternPrunedMatrix::from_dense_with_backend(&dense, &set, crate::Backend::Scalar);
        assert_eq!(detected.assignments(), scalar.assignments());
        assert_eq!(detected.stored_values(), scalar.stored_values());
        for bi in 0..detected.assignments().len() {
            let d = detected.plan().block_values(bi);
            let s = scalar.plan().block_values(bi);
            assert_eq!(d.len(), s.len());
            for (a, b) in d.iter().zip(s) {
                assert_eq!(a.to_bits(), b.to_bits(), "block {bi} values diverged");
            }
        }
        // and the per-call path agrees with the bulk path on every block
        let (grid_rows, grid_cols) = detected.block_grid();
        for br in 0..grid_rows {
            for bc in 0..grid_cols {
                let h = 8.min(dense.rows() - br * 8);
                let w = 8.min(dense.cols() - bc * 8);
                let block = dense.block(br * 8, bc * 8, h, w);
                assert_eq!(
                    detected.assignments()[br * grid_cols + bc] as usize,
                    set.best_pattern_for(&block),
                    "block ({br},{bc})"
                );
            }
        }
    }

    #[test]
    fn column_density_sums_match_ones() {
        let p = checkerboard(6);
        let total: f64 = p.column_density().iter().sum::<f64>() * 6.0;
        assert!((total - p.ones() as f64) < 1e-9);
    }
}
