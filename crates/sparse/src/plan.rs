//! Compiled execution plans for pattern-pruned matmul.
//!
//! The scalar seed kernel paid three per-call costs that dominated the hot
//! path of `BankedModel::infer`: it re-derived each pattern's
//! `kept_positions()` (a fresh `Vec<(usize, usize)>`) for every block of
//! every call, chased one heap pointer per block through `Vec<Vec<f32>>`
//! value storage, and bounds-checked every element access. A
//! [`PatternPlan`] removes all three ahead of time, PatDNN-style:
//!
//! * **Flat value arena.** All kept values live in one contiguous
//!   `Vec<f32>`; a `block_offsets` prefix-sum table (one `u32` per block)
//!   replaces the nested vectors.
//! * **Per-pattern offset tables.** Each pattern in the set is compiled
//!   *once* into a [`CompiledPattern`]: its kept positions grouped by local
//!   row (CSR-style `row_ptr` over `u32` column offsets). Every block
//!   assigned to that pattern shares the table, so the per-block metadata is
//!   a single `u16` pattern id — exactly the reuse the paper's Level-2
//!   format is designed around.
//! * **Full-block vs. edge-block dispatch.** Interior blocks (the common
//!   case) run a branch-free loop; for the rhs widths the serving engines
//!   actually dispatch (1, 4, 8, 16, 32, 64) the kernel is monomorphized
//!   on the width, holding each output row in a `[f32; W]` register
//!   accumulator across all of the row's kept values — unrolled f32
//!   multiply-adds with no per-element bounds checks, which the compiler
//!   auto-vectorizes. Other widths take a chunked general path. Only the
//!   (at most one) partial row/column strip of edge blocks takes the
//!   checked path.
//!
//! The plan is built at [`PatternPrunedMatrix`] construction, so the matmul
//! hot loop performs **zero heap allocation** and the kernel result is
//! bit-identical to the retained scalar reference
//! ([`crate::reference::matmul_dense_scalar`]) — the accumulation order per
//! output element is unchanged.
//!
//! [`PatternPrunedMatrix`]: crate::PatternPrunedMatrix

use crate::pattern::{PatternMask, PatternSet};
use rt3_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Number of f32 lanes the inner multiply-add is chunked by; wide enough
/// for one 256-bit vector, small enough that narrow rhs widths still use
/// the remainder loop efficiently.
const LANES: usize = 8;

/// One pattern lowered to flat offset tables: kept positions grouped by
/// local row, CSR-style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledPattern {
    /// `row_ptr[r]..row_ptr[r + 1]` indexes `cols` for local row `r`.
    row_ptr: Vec<u32>,
    /// Local column offset of each kept position, in row-major kept order.
    cols: Vec<u32>,
}

impl CompiledPattern {
    /// Lowers a pattern mask into its offset tables. Done once per pattern;
    /// every block assigned to the pattern reuses the result.
    pub fn compile(mask: &PatternMask) -> Self {
        let size = mask.size();
        let mut row_ptr = Vec::with_capacity(size + 1);
        let mut cols = Vec::with_capacity(mask.ones());
        row_ptr.push(0);
        for r in 0..size {
            for c in 0..size {
                if mask.is_kept(r, c) {
                    cols.push(c as u32);
                }
            }
            row_ptr.push(cols.len() as u32);
        }
        Self { row_ptr, cols }
    }

    /// Number of kept positions.
    pub fn ones(&self) -> usize {
        self.cols.len()
    }

    /// Range into the column table for local row `r`.
    #[inline]
    fn row_range(&self, r: usize) -> (usize, usize) {
        (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize)
    }
}

/// The single implementation of the paper's component-④ selection rule:
/// index of the pattern preserving the largest l2 norm over one `h x w`
/// block of row-major `data` (row `r` lives at `base + r * stride`).
/// Accumulation is row-major over kept positions and ties keep the lowest
/// index; both [`PatternPlan::compile`] and
/// [`PatternSet::best_pattern_for`] call this, so their assignments cannot
/// drift apart.
pub(crate) fn best_pattern_for_block(
    compiled: &[CompiledPattern],
    data: &[f32],
    stride: usize,
    base: usize,
    h: usize,
    w: usize,
) -> usize {
    let mut best = 0;
    let mut best_norm = f32::NEG_INFINITY;
    for (pi, cp) in compiled.iter().enumerate() {
        let mut norm = 0.0f32;
        for r in 0..h {
            let row = &data[base + r * stride..][..w];
            let (s, e) = cp.row_range(r);
            for &c in &cp.cols[s..e] {
                if (c as usize) < w {
                    let v = row[c as usize];
                    norm += v * v;
                }
            }
        }
        if norm > best_norm {
            best_norm = norm;
            best = pi;
        }
    }
    best
}

/// A pattern-pruned matrix lowered to its executable form: flat value
/// arena, per-block `u32` offsets, shared per-pattern offset tables and a
/// full/edge block split. See the module docs for the layout rationale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternPlan {
    rows: usize,
    cols: usize,
    psize: usize,
    grid: (usize, usize),
    /// Pattern id per block, row-major over the block grid.
    assignments: Vec<u16>,
    /// All kept values, block-major; block `bi` owns
    /// `arena[block_offsets[bi]..block_offsets[bi + 1]]` in its pattern's
    /// row-major kept order.
    arena: Vec<f32>,
    /// Prefix sums into `arena`, one entry per block plus a terminator.
    block_offsets: Vec<u32>,
    /// One compiled table per pattern in the set, in set order.
    compiled: Vec<CompiledPattern>,
}

impl PatternPlan {
    /// Lowers `dense` against `set`: assigns every `psize x psize` block
    /// the pattern preserving the largest l2 norm (the same
    /// `best_pattern_for_block` implementation
    /// [`PatternSet::best_pattern_for`] calls, via the shared compiled
    /// tables) and packs the kept values into the arena.
    ///
    /// # Panics
    ///
    /// Panics if the set has more than `u16::MAX` patterns or the kept
    /// values do not fit a `u32` arena offset.
    pub fn compile(dense: &Matrix, set: &PatternSet) -> Self {
        assert!(
            set.len() <= u16::MAX as usize,
            "pattern set too large for u16 assignment indices"
        );
        let psize = set.size();
        let rows = dense.rows();
        let cols = dense.cols();
        let grid_rows = rows.div_ceil(psize);
        let grid_cols = cols.div_ceil(psize);
        let blocks = grid_rows * grid_cols;
        let compiled: Vec<CompiledPattern> = set
            .patterns()
            .iter()
            .map(CompiledPattern::compile)
            .collect();
        let data = dense.as_slice();
        let mean_ones =
            compiled.iter().map(CompiledPattern::ones).sum::<usize>() / compiled.len().max(1);
        let mut assignments = Vec::with_capacity(blocks);
        let mut block_offsets = Vec::with_capacity(blocks + 1);
        block_offsets.push(0u32);
        let mut arena: Vec<f32> = Vec::with_capacity(blocks * mean_ones);
        for br in 0..grid_rows {
            let base_r = br * psize;
            let h = psize.min(rows - base_r);
            for bc in 0..grid_cols {
                let base_c = bc * psize;
                let w = psize.min(cols - base_c);
                let best =
                    best_pattern_for_block(&compiled, data, cols, base_r * cols + base_c, h, w);
                assignments.push(best as u16);
                // pack values in the pattern's row-major kept order;
                // positions outside the logical matrix store 0.0 so every
                // block assigned to a pattern has the same arena stride
                let cp = &compiled[best];
                for r in 0..psize {
                    let (s, e) = cp.row_range(r);
                    if r < h {
                        let row = &data[(base_r + r) * cols + base_c..][..w];
                        arena.extend(cp.cols[s..e].iter().map(|&c| {
                            if (c as usize) < w {
                                row[c as usize]
                            } else {
                                0.0
                            }
                        }));
                    } else {
                        arena.extend(std::iter::repeat_n(0.0f32, e - s));
                    }
                }
                let end = u32::try_from(arena.len()).expect("arena exceeds u32 offsets");
                block_offsets.push(end);
            }
        }
        Self {
            rows,
            cols,
            psize,
            grid: (grid_rows, grid_cols),
            assignments,
            arena,
            block_offsets,
            compiled,
        }
    }

    /// Logical shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Pattern side length.
    pub fn pattern_size(&self) -> usize {
        self.psize
    }

    /// `(block rows, block cols)` of the block grid.
    pub fn block_grid(&self) -> (usize, usize) {
        self.grid
    }

    /// Pattern id per block, row-major over the block grid.
    pub fn assignments(&self) -> &[u16] {
        &self.assignments
    }

    /// Total values stored in the arena (including kept zeros).
    pub fn stored_values(&self) -> usize {
        self.arena.len()
    }

    /// The compiled offset tables, one per pattern in the set.
    pub fn compiled_patterns(&self) -> &[CompiledPattern] {
        &self.compiled
    }

    /// The packed values of block `bi`, in its pattern's row-major kept
    /// order (the arena slice the kernels execute from).
    pub fn block_values(&self, bi: usize) -> &[f32] {
        &self.arena[self.block_offsets[bi] as usize..self.block_offsets[bi + 1] as usize]
    }

    /// Bytes of plan metadata beyond the values and the pattern bitmaps:
    /// per-block offsets plus the compiled per-pattern tables.
    pub fn table_bytes(&self) -> usize {
        let tables: usize = self
            .compiled
            .iter()
            .map(|cp| (cp.row_ptr.len() + cp.cols.len()) * std::mem::size_of::<u32>())
            .sum();
        self.block_offsets.len() * std::mem::size_of::<u32>() + tables
    }

    /// Calls `f(row, col, value)` for every kept position inside the
    /// logical matrix bounds, block-major then row-major within the block —
    /// the single traversal backing both `to_dense` and `mask`.
    pub fn for_each_kept<F: FnMut(usize, usize, f32)>(&self, mut f: F) {
        let (grid_rows, grid_cols) = self.grid;
        for br in 0..grid_rows {
            let base_r = br * self.psize;
            let h = self.psize.min(self.rows - base_r);
            for bc in 0..grid_cols {
                let bi = br * grid_cols + bc;
                let base_c = bc * self.psize;
                let w = self.psize.min(self.cols - base_c);
                let cp = &self.compiled[self.assignments[bi] as usize];
                let vals = self.block_values(bi);
                for r in 0..h {
                    let (s, e) = cp.row_range(r);
                    for (&c, &v) in cp.cols[s..e].iter().zip(&vals[s..e]) {
                        if (c as usize) < w {
                            f(base_r + r, base_c + c as usize, v);
                        }
                    }
                }
            }
        }
    }

    /// Sparse × dense product `plan * rhs`, written into `out` (which is
    /// zeroed first). This is the zero-allocation entry point: the hot loop
    /// touches only the arena, the offset tables and the two matrices.
    ///
    /// Common rhs widths (1, 4, 8, 16, 32, 64 — the micro-batch sizes the
    /// serving engines dispatch) run a monomorphized kernel whose output
    /// row lives in a fixed-size register accumulator across all of a
    /// row's kept positions; other widths take a chunked general path.
    /// Both preserve the scalar reference's per-element accumulation
    /// order, so results are bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.rows()` does not match the plan's column count or
    /// `out` is not shaped `(rows, rhs.cols())`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows(), "matmul shape mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols()),
            "matmul output shape mismatch"
        );
        out.fill_zero();
        let width = rhs.cols();
        if width == 0 {
            return;
        }
        let rhs_data = rhs.as_slice();
        let out_data = out.as_mut_slice();
        // W = 0 selects the runtime-width general kernel
        match width {
            1 => self.execute::<1>(rhs_data, out_data, width),
            4 => self.execute::<4>(rhs_data, out_data, width),
            8 => self.execute::<8>(rhs_data, out_data, width),
            16 => self.execute::<16>(rhs_data, out_data, width),
            32 => self.execute::<32>(rhs_data, out_data, width),
            64 => self.execute::<64>(rhs_data, out_data, width),
            _ => self.execute::<0>(rhs_data, out_data, width),
        }
    }

    /// Walks the block grid dispatching interior blocks to the branch-free
    /// kernel (compile-time width `W` when non-zero) and edge blocks to the
    /// clamped path.
    fn execute<const W: usize>(&self, rhs: &[f32], out: &mut [f32], width: usize) {
        let (grid_rows, grid_cols) = self.grid;
        for br in 0..grid_rows {
            let base_r = br * self.psize;
            let full_rows = base_r + self.psize <= self.rows;
            for bc in 0..grid_cols {
                let bi = br * grid_cols + bc;
                let base_c = bc * self.psize;
                let cp = &self.compiled[self.assignments[bi] as usize];
                let vals = self.block_values(bi);
                if full_rows && base_c + self.psize <= self.cols {
                    if W == 0 {
                        self.block_full_general(cp, vals, base_r, base_c, rhs, out, width);
                    } else {
                        self.block_full_fixed::<W>(cp, vals, base_r, base_c, rhs, out);
                    }
                } else {
                    self.block_edge(cp, vals, base_r, base_c, rhs, out, width);
                }
            }
        }
    }

    /// Interior-block kernel for a compile-time rhs width: the output row
    /// is copied into a `[f32; W]` register accumulator once, every kept
    /// position of the row then runs `W` unrolled multiply-adds against it
    /// (no per-element bounds checks, no output loads/stores per value),
    /// and the row is written back once. Accumulation per element stays in
    /// arena order, so the result is bit-identical to the scalar path.
    #[inline]
    fn block_full_fixed<const W: usize>(
        &self,
        cp: &CompiledPattern,
        vals: &[f32],
        base_r: usize,
        base_c: usize,
        rhs: &[f32],
        out: &mut [f32],
    ) {
        for r in 0..self.psize {
            let (s, e) = cp.row_range(r);
            if s == e {
                continue;
            }
            let rr = base_r + r;
            let out_row = &mut out[rr * W..(rr + 1) * W];
            let mut acc = [0.0f32; W];
            acc.copy_from_slice(out_row);
            for (&c, &v) in cp.cols[s..e].iter().zip(&vals[s..e]) {
                let cc = base_c + c as usize;
                let rhs_row = &rhs[cc * W..(cc + 1) * W];
                for (a, &b) in acc.iter_mut().zip(rhs_row) {
                    *a += v * b;
                }
            }
            out_row.copy_from_slice(&acc);
        }
    }

    /// Interior-block kernel for arbitrary rhs widths: each output row is
    /// sliced once and the inner loop is a chunked multiply-add over the
    /// rhs row.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn block_full_general(
        &self,
        cp: &CompiledPattern,
        vals: &[f32],
        base_r: usize,
        base_c: usize,
        rhs: &[f32],
        out: &mut [f32],
        width: usize,
    ) {
        for r in 0..self.psize {
            let (s, e) = cp.row_range(r);
            if s == e {
                continue;
            }
            let rr = base_r + r;
            let out_row = &mut out[rr * width..(rr + 1) * width];
            for (&c, &v) in cp.cols[s..e].iter().zip(&vals[s..e]) {
                let cc = base_c + c as usize;
                let rhs_row = &rhs[cc * width..(cc + 1) * width];
                axpy(out_row, rhs_row, v);
            }
        }
    }

    /// Edge-block kernel: rows and columns are clamped to the logical
    /// matrix bounds (only the last block row/column can land here).
    #[allow(clippy::too_many_arguments)]
    fn block_edge(
        &self,
        cp: &CompiledPattern,
        vals: &[f32],
        base_r: usize,
        base_c: usize,
        rhs: &[f32],
        out: &mut [f32],
        width: usize,
    ) {
        let h = self.psize.min(self.rows - base_r);
        let w = self.psize.min(self.cols - base_c);
        for r in 0..h {
            let (s, e) = cp.row_range(r);
            let rr = base_r + r;
            let out_row = &mut out[rr * width..(rr + 1) * width];
            for (&c, &v) in cp.cols[s..e].iter().zip(&vals[s..e]) {
                if c as usize >= w {
                    continue;
                }
                let cc = base_c + c as usize;
                let rhs_row = &rhs[cc * width..(cc + 1) * width];
                axpy(out_row, rhs_row, v);
            }
        }
    }
}

/// `out += a * x`, chunked by [`LANES`] so the compiler emits vector
/// multiply-adds for the bulk of the row. Both slices have equal length
/// (the rhs width); each output element receives exactly one add, so the
/// accumulation order per element is the same as a scalar loop.
#[inline]
fn axpy(out: &mut [f32], x: &[f32], a: f32) {
    let mut oc = out.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (o, b) in (&mut oc).zip(&mut xc) {
        for k in 0..LANES {
            o[k] += a * b[k];
        }
    }
    for (o, &b) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o += a * b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn set_of(psize: usize, sparsity: f64, count: usize, seed: u64) -> PatternSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PatternSet::new(
            (0..count)
                .map(|_| PatternMask::random(psize, sparsity, &mut rng))
                .collect(),
        )
        .expect("non-empty set")
    }

    #[test]
    fn compiled_pattern_groups_positions_by_row() {
        let mask = PatternMask::new(
            3,
            vec![true, false, true, false, false, false, true, true, true],
        );
        let cp = CompiledPattern::compile(&mask);
        assert_eq!(cp.ones(), 5);
        assert_eq!(cp.row_range(0), (0, 2));
        assert_eq!(cp.row_range(1), (2, 2));
        assert_eq!(cp.row_range(2), (2, 5));
        assert_eq!(cp.cols, vec![0, 2, 0, 1, 2]);
    }

    #[test]
    fn plan_assignments_match_scalar_best_pattern() {
        let mut rng = StdRng::seed_from_u64(31);
        let dense = Matrix::xavier(13, 9, &mut rng);
        let set = set_of(4, 0.5, 3, 32);
        let plan = PatternPlan::compile(&dense, &set);
        let (grid_rows, grid_cols) = plan.block_grid();
        assert_eq!((grid_rows, grid_cols), (4, 3));
        for br in 0..grid_rows {
            for bc in 0..grid_cols {
                let block = dense.block(br * 4, bc * 4, 4, 4);
                assert_eq!(
                    plan.assignments()[br * grid_cols + bc] as usize,
                    set.best_pattern_for(&block),
                    "block ({br},{bc})"
                );
            }
        }
    }

    #[test]
    fn arena_stride_is_uniform_per_pattern() {
        let mut rng = StdRng::seed_from_u64(33);
        let dense = Matrix::xavier(12, 12, &mut rng);
        let set = set_of(4, 0.75, 2, 34);
        let plan = PatternPlan::compile(&dense, &set);
        for (bi, &a) in plan.assignments().iter().enumerate() {
            assert_eq!(
                plan.block_values(bi).len(),
                plan.compiled_patterns()[a as usize].ones()
            );
        }
        assert_eq!(plan.stored_values(), 9 * 4); // 9 blocks x 4 kept each
    }

    #[test]
    fn matmul_into_handles_zero_width_rhs() {
        let mut rng = StdRng::seed_from_u64(35);
        let dense = Matrix::xavier(8, 8, &mut rng);
        let set = set_of(4, 0.5, 2, 36);
        let plan = PatternPlan::compile(&dense, &set);
        let rhs = Matrix::zeros(8, 0);
        let mut out = Matrix::zeros(8, 0);
        plan.matmul_into(&rhs, &mut out); // must not panic
        assert_eq!(out.shape(), (8, 0));
    }
}
