//! Compiled execution plans for pattern-pruned matmul.
//!
//! The scalar seed kernel paid three per-call costs that dominated the hot
//! path of `BankedModel::infer`: it re-derived each pattern's
//! `kept_positions()` (a fresh `Vec<(usize, usize)>`) for every block of
//! every call, chased one heap pointer per block through `Vec<Vec<f32>>`
//! value storage, and bounds-checked every element access. A
//! [`PatternPlan`] removes all three ahead of time, PatDNN-style:
//!
//! * **Flat value arena.** All kept values live in one contiguous
//!   `Vec<f32>`; a `block_offsets` prefix-sum table (one `u32` per block)
//!   replaces the nested vectors.
//! * **Per-pattern offset tables.** Each pattern in the set is compiled
//!   *once* into a [`CompiledPattern`]: its kept positions grouped by local
//!   row (CSR-style `row_ptr` over `u32` column offsets). Every block
//!   assigned to that pattern shares the table, so the per-block metadata is
//!   a single `u16` pattern id — exactly the reuse the paper's Level-2
//!   format is designed around.
//! * **Full-block vs. edge-block dispatch.** Interior blocks (the common
//!   case) run a branch-free loop; for the rhs widths the serving engines
//!   actually dispatch (1, 4, 8, 16, 32, 64) the kernel is monomorphized
//!   on the width, holding each output row in a `[f32; W]` register
//!   accumulator across all of the row's kept values — unrolled f32
//!   multiply-adds with no per-element bounds checks, which the compiler
//!   auto-vectorizes. Other widths take a chunked general path. Only the
//!   (at most one) partial row/column strip of edge blocks takes the
//!   checked path.
//!
//! The plan is built at [`PatternPrunedMatrix`] construction, so the matmul
//! hot loop performs **zero heap allocation** and the kernel result is
//! bit-identical to the retained scalar reference
//! ([`crate::reference::matmul_dense_scalar`]) — the accumulation order per
//! output element is unchanged.
//!
//! On top of the compiled layout the plan carries three execution-time
//! strategies (PR 10):
//!
//! * **Runtime-dispatched SIMD [`Backend`].** Detected once at plan
//!   construction; on x86-64 with AVX2 the full-block kernels for
//!   W ∈ {8, 16, 32, 64} run hand-written `std::arch` code (see
//!   `simd.rs`), bit-identical to the scalar kernels they replace.
//! * **Block-row-tiled column sweep for the w = 64 regime.** Once the rhs
//!   no longer fits L1, `execute` switches to a column-major grid
//!   traversal over small block-row tiles so each 2 KB rhs block-column
//!   slice is reused across the whole tile while it is still cache-hot.
//!   For a fixed output element the kept contributions still arrive in
//!   ascending block-column order, so bit-exactness is preserved.
//! * **Row-range parallelism.** [`PatternPlan::par_matmul_into`] splits
//!   the block-row space into contiguous ranges balanced by stored-value
//!   count and executes them on scoped threads over disjoint output
//!   slices — no synchronization on the hot path, and each element is
//!   still accumulated by exactly one thread in arena order.
//!
//! [`PatternPrunedMatrix`]: crate::PatternPrunedMatrix

use crate::pattern::{PatternMask, PatternSet};
use crate::simd::{self, Backend};
use rt3_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Number of f32 lanes the inner multiply-add is chunked by; wide enough
/// for one 256-bit vector, small enough that narrow rhs widths still use
/// the remainder loop efficiently.
const LANES: usize = 8;

/// Assumed L1 data-cache size for the w = 64 regime heuristic. 32 KB is
/// the common mobile/embedded floor (and the paper's device class); a
/// larger actual L1 only makes the tiled sweep kick in early, which is
/// harmless because the tiling is bit-exact.
const L1_BYTES: usize = 32 * 1024;

/// One pattern lowered to flat offset tables: kept positions grouped by
/// local row, CSR-style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledPattern {
    /// `row_ptr[r]..row_ptr[r + 1]` indexes `cols` for local row `r`.
    row_ptr: Vec<u32>,
    /// Local column offset of each kept position, in row-major kept order.
    cols: Vec<u32>,
}

impl CompiledPattern {
    /// Lowers a pattern mask into its offset tables. Done once per pattern;
    /// every block assigned to the pattern reuses the result.
    pub fn compile(mask: &PatternMask) -> Self {
        let size = mask.size();
        let mut row_ptr = Vec::with_capacity(size + 1);
        let mut cols = Vec::with_capacity(mask.ones());
        row_ptr.push(0);
        for r in 0..size {
            for c in 0..size {
                if mask.is_kept(r, c) {
                    cols.push(c as u32);
                }
            }
            row_ptr.push(cols.len() as u32);
        }
        Self { row_ptr, cols }
    }

    /// Number of kept positions.
    pub fn ones(&self) -> usize {
        self.cols.len()
    }

    /// Range into the column table for local row `r`.
    #[inline]
    fn row_range(&self, r: usize) -> (usize, usize) {
        (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize)
    }
}

/// The single implementation of the paper's component-④ selection rule:
/// index of the pattern preserving the largest l2 norm over one `h x w`
/// block of row-major `data` (row `r` lives at `base + r * stride`).
/// Accumulation is row-major over kept positions and ties keep the lowest
/// index; both [`PatternPlan::compile`] and
/// [`PatternSet::best_pattern_for`] call this, so their assignments cannot
/// drift apart.
///
/// The element squares are computed **once per block** into the reusable
/// `squares` scratch through the detected SIMD `backend` (they were
/// previously recomputed per candidate pattern); the per-pattern score is
/// then the sum of the same single-rounded `v * v` products in the same
/// row-major kept order as before, so the winning assignment is
/// bit-identical to the scalar scoring — `lowering_backend_is_bit_stable`
/// in `pattern.rs` pins this.
#[allow(clippy::too_many_arguments)]
pub(crate) fn best_pattern_for_block(
    compiled: &[CompiledPattern],
    data: &[f32],
    stride: usize,
    base: usize,
    h: usize,
    w: usize,
    backend: Backend,
    squares: &mut Vec<f32>,
) -> usize {
    squares.clear();
    squares.resize(h * w, 0.0);
    for r in 0..h {
        let row = &data[base + r * stride..][..w];
        backend.square_into(&mut squares[r * w..(r + 1) * w], row);
    }
    let mut best = 0;
    let mut best_norm = f32::NEG_INFINITY;
    for (pi, cp) in compiled.iter().enumerate() {
        let mut norm = 0.0f32;
        for r in 0..h {
            let sq_row = &squares[r * w..(r + 1) * w];
            let (s, e) = cp.row_range(r);
            for &c in &cp.cols[s..e] {
                if (c as usize) < w {
                    norm += sq_row[c as usize];
                }
            }
        }
        if norm > best_norm {
            best_norm = norm;
            best = pi;
        }
    }
    best
}

/// A pattern-pruned matrix lowered to its executable form: flat value
/// arena, per-block `u32` offsets, shared per-pattern offset tables and a
/// full/edge block split. See the module docs for the layout rationale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternPlan {
    rows: usize,
    cols: usize,
    psize: usize,
    grid: (usize, usize),
    /// Pattern id per block, row-major over the block grid.
    assignments: Vec<u16>,
    /// All kept values, block-major; block `bi` owns
    /// `arena[block_offsets[bi]..block_offsets[bi + 1]]` in its pattern's
    /// row-major kept order.
    arena: Vec<f32>,
    /// Prefix sums into `arena`, one entry per block plus a terminator.
    block_offsets: Vec<u32>,
    /// One compiled table per pattern in the set, in set order.
    compiled: Vec<CompiledPattern>,
    /// Kernel backend the plan executes with. Process state, not model
    /// data: it is skipped on serialization and re-detected for the host
    /// CPU on deserialization ([`Backend::default`]).
    #[serde(skip)]
    backend: Backend,
}

impl PatternPlan {
    /// Lowers `dense` against `set`: assigns every `psize x psize` block
    /// the pattern preserving the largest l2 norm (the same
    /// `best_pattern_for_block` implementation
    /// [`PatternSet::best_pattern_for`] calls, via the shared compiled
    /// tables) and packs the kept values into the arena.
    ///
    /// # Panics
    ///
    /// Panics if the set has more than `u16::MAX` patterns or the kept
    /// values do not fit a `u32` arena offset.
    pub fn compile(dense: &Matrix, set: &PatternSet) -> Self {
        Self::compile_with_backend(dense, set, Backend::detect())
    }

    /// [`PatternPlan::compile`] with an explicit kernel backend. The
    /// request is clamped to what the CPU supports
    /// ([`Backend::validated`]); forcing [`Backend::Scalar`] is how the
    /// proptest suite obtains the bit-exactness reference on SIMD hosts.
    pub fn compile_with_backend(dense: &Matrix, set: &PatternSet, backend: Backend) -> Self {
        let backend = backend.validated();
        assert!(
            set.len() <= u16::MAX as usize,
            "pattern set too large for u16 assignment indices"
        );
        let psize = set.size();
        let rows = dense.rows();
        let cols = dense.cols();
        let grid_rows = rows.div_ceil(psize);
        let grid_cols = cols.div_ceil(psize);
        let blocks = grid_rows * grid_cols;
        let compiled: Vec<CompiledPattern> = set
            .patterns()
            .iter()
            .map(CompiledPattern::compile)
            .collect();
        let data = dense.as_slice();
        let mean_ones =
            compiled.iter().map(CompiledPattern::ones).sum::<usize>() / compiled.len().max(1);
        let mut assignments = Vec::with_capacity(blocks);
        let mut block_offsets = Vec::with_capacity(blocks + 1);
        block_offsets.push(0u32);
        let mut arena: Vec<f32> = Vec::with_capacity(blocks * mean_ones);
        let mut squares = Vec::with_capacity(psize * psize);
        for br in 0..grid_rows {
            let base_r = br * psize;
            let h = psize.min(rows - base_r);
            for bc in 0..grid_cols {
                let base_c = bc * psize;
                let w = psize.min(cols - base_c);
                let best = best_pattern_for_block(
                    &compiled,
                    data,
                    cols,
                    base_r * cols + base_c,
                    h,
                    w,
                    backend,
                    &mut squares,
                );
                assignments.push(best as u16);
                // pack values in the pattern's row-major kept order;
                // positions outside the logical matrix store 0.0 so every
                // block assigned to a pattern has the same arena stride
                let cp = &compiled[best];
                for r in 0..psize {
                    let (s, e) = cp.row_range(r);
                    if r < h {
                        let row = &data[(base_r + r) * cols + base_c..][..w];
                        arena.extend(cp.cols[s..e].iter().map(|&c| {
                            if (c as usize) < w {
                                row[c as usize]
                            } else {
                                0.0
                            }
                        }));
                    } else {
                        arena.extend(std::iter::repeat_n(0.0f32, e - s));
                    }
                }
                let end = u32::try_from(arena.len()).expect("arena exceeds u32 offsets");
                block_offsets.push(end);
            }
        }
        Self {
            rows,
            cols,
            psize,
            grid: (grid_rows, grid_cols),
            assignments,
            arena,
            block_offsets,
            compiled,
            backend,
        }
    }

    /// Logical shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Kernel backend this plan executes with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Re-targets the plan to `backend` (clamped to what the CPU
    /// supports). The lowered layout is backend-independent, so this only
    /// swaps which kernels `matmul_into` dispatches.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend.validated();
        self
    }

    /// Pattern side length.
    pub fn pattern_size(&self) -> usize {
        self.psize
    }

    /// `(block rows, block cols)` of the block grid.
    pub fn block_grid(&self) -> (usize, usize) {
        self.grid
    }

    /// Pattern id per block, row-major over the block grid.
    pub fn assignments(&self) -> &[u16] {
        &self.assignments
    }

    /// Total values stored in the arena (including kept zeros).
    pub fn stored_values(&self) -> usize {
        self.arena.len()
    }

    /// The compiled offset tables, one per pattern in the set.
    pub fn compiled_patterns(&self) -> &[CompiledPattern] {
        &self.compiled
    }

    /// The packed values of block `bi`, in its pattern's row-major kept
    /// order (the arena slice the kernels execute from).
    pub fn block_values(&self, bi: usize) -> &[f32] {
        &self.arena[self.block_offsets[bi] as usize..self.block_offsets[bi + 1] as usize]
    }

    /// Bytes of plan metadata beyond the values and the pattern bitmaps:
    /// per-block offsets plus the compiled per-pattern tables.
    pub fn table_bytes(&self) -> usize {
        let tables: usize = self
            .compiled
            .iter()
            .map(|cp| (cp.row_ptr.len() + cp.cols.len()) * std::mem::size_of::<u32>())
            .sum();
        self.block_offsets.len() * std::mem::size_of::<u32>() + tables
    }

    /// Calls `f(row, col, value)` for every kept position inside the
    /// logical matrix bounds, block-major then row-major within the block —
    /// the single traversal backing both `to_dense` and `mask`.
    pub fn for_each_kept<F: FnMut(usize, usize, f32)>(&self, mut f: F) {
        let (grid_rows, grid_cols) = self.grid;
        for br in 0..grid_rows {
            let base_r = br * self.psize;
            let h = self.psize.min(self.rows - base_r);
            for bc in 0..grid_cols {
                let bi = br * grid_cols + bc;
                let base_c = bc * self.psize;
                let w = self.psize.min(self.cols - base_c);
                let cp = &self.compiled[self.assignments[bi] as usize];
                let vals = self.block_values(bi);
                for r in 0..h {
                    let (s, e) = cp.row_range(r);
                    for (&c, &v) in cp.cols[s..e].iter().zip(&vals[s..e]) {
                        if (c as usize) < w {
                            f(base_r + r, base_c + c as usize, v);
                        }
                    }
                }
            }
        }
    }

    /// Sparse × dense product `plan * rhs`, written into `out` (which is
    /// zeroed first). This is the zero-allocation entry point: the hot loop
    /// touches only the arena, the offset tables and the two matrices.
    ///
    /// Common rhs widths (1, 4, 8, 16, 32, 64 — the micro-batch sizes the
    /// serving engines dispatch) run a monomorphized kernel whose output
    /// row lives in a fixed-size register accumulator across all of a
    /// row's kept positions; other widths take a chunked general path.
    /// Both preserve the scalar reference's per-element accumulation
    /// order, so results are bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `rhs.rows()` does not match the plan's column count or
    /// `out` is not shaped `(rows, rhs.cols())`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.check_matmul_shapes(rhs, out);
        out.fill_zero();
        let width = rhs.cols();
        if width == 0 {
            return;
        }
        let (grid_rows, _) = self.grid;
        self.dispatch_width(rhs.as_slice(), out.as_mut_slice(), width, 0..grid_rows);
    }

    /// [`PatternPlan::matmul_into`] with intra-matmul row-range
    /// parallelism: the block-row space is split into at most `workers`
    /// contiguous ranges balanced by stored-value count
    /// ([`PatternPlan::row_splits`]) and each range runs on its own scoped
    /// thread over a disjoint `split_at_mut` slice of `out`. There is no
    /// synchronization on the hot path and every output element is
    /// accumulated by exactly one thread in arena order, so the result is
    /// bit-identical to [`PatternPlan::matmul_into`] for every worker
    /// count (proptest-pinned in `tests/proptest_simd.rs`).
    ///
    /// # Panics
    ///
    /// Same shape requirements as [`PatternPlan::matmul_into`].
    pub fn par_matmul_into(&self, rhs: &Matrix, out: &mut Matrix, workers: usize) {
        self.check_matmul_shapes(rhs, out);
        out.fill_zero();
        let width = rhs.cols();
        if width == 0 {
            return;
        }
        let splits = self.row_splits(workers);
        let rhs_data = rhs.as_slice();
        if splits.len() <= 1 {
            let (grid_rows, _) = self.grid;
            self.dispatch_width(rhs_data, out.as_mut_slice(), width, 0..grid_rows);
            return;
        }
        std::thread::scope(|scope| {
            let mut rest: &mut [f32] = out.as_mut_slice();
            for brs in splits {
                let range_rows = (brs.end * self.psize).min(self.rows) - brs.start * self.psize;
                let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(range_rows * width);
                rest = tail;
                scope.spawn(move || self.dispatch_width(rhs_data, chunk, width, brs));
            }
        });
    }

    /// Splits the block-row space into at most `parts` contiguous,
    /// non-empty ranges whose stored-value counts (the kernel work) are as
    /// balanced as the block-row granularity allows, via binary targets on
    /// the `block_offsets` prefix sums. Concatenated in order the ranges
    /// cover `0..grid_rows` exactly.
    pub fn row_splits(&self, parts: usize) -> Vec<Range<usize>> {
        let (grid_rows, grid_cols) = self.grid;
        if grid_rows == 0 || parts <= 1 {
            return std::iter::once(0..grid_rows).collect();
        }
        let parts = parts.min(grid_rows);
        let total = self.arena.len() as u64;
        let mut splits = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 1..=parts {
            let end = if p == parts {
                grid_rows
            } else {
                // smallest block row with at least p/parts of the values
                // strictly before it
                let target = total * p as u64 / parts as u64;
                let mut end = start;
                while end < grid_rows && u64::from(self.block_offsets[end * grid_cols]) < target {
                    end += 1;
                }
                end
            };
            if end > start {
                splits.push(start..end);
                start = end;
            }
        }
        splits
    }

    fn check_matmul_shapes(&self, rhs: &Matrix, out: &Matrix) {
        assert_eq!(self.cols, rhs.rows(), "matmul shape mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols()),
            "matmul output shape mismatch"
        );
    }

    /// Monomorphizes on the rhs width and executes the block rows `brs`
    /// into `out`, which holds exactly those rows (its row 0 is logical
    /// row `brs.start * psize`). W = 0 selects the runtime-width general
    /// kernel.
    fn dispatch_width(&self, rhs: &[f32], out: &mut [f32], width: usize, brs: Range<usize>) {
        match width {
            1 => self.execute::<1>(rhs, out, width, brs),
            4 => self.execute::<4>(rhs, out, width, brs),
            8 => self.execute::<8>(rhs, out, width, brs),
            16 => self.execute::<16>(rhs, out, width, brs),
            32 => self.execute::<32>(rhs, out, width, brs),
            64 => self.execute::<64>(rhs, out, width, brs),
            _ => self.execute::<0>(rhs, out, width, brs),
        }
    }

    /// Walks the block rows `brs` dispatching interior blocks to the
    /// branch-free kernels (compile-time width `W` when non-zero; SIMD
    /// when the plan's backend covers `W`) and edge blocks to the clamped
    /// path. In the w = 64 regime with an L1-overflowing rhs the walk
    /// switches to the block-row-tiled column-major sweep.
    fn execute<const W: usize>(
        &self,
        rhs: &[f32],
        out: &mut [f32],
        width: usize,
        brs: Range<usize>,
    ) {
        let row_base = brs.start * self.psize;
        if W == 64 && std::mem::size_of_val(rhs) > L1_BYTES {
            self.execute_tiled::<W>(rhs, out, width, brs, row_base);
            return;
        }
        let (_, grid_cols) = self.grid;
        for br in brs {
            for bc in 0..grid_cols {
                self.process_block::<W>(br, bc, rhs, out, width, row_base);
            }
        }
    }

    /// Column-major grid sweep over small block-row tiles, for the wide
    /// (w = 64) regime where the whole rhs blows L1: within a tile the
    /// same rhs block-column slice (`psize * 64` floats — 2 KB at psize 8)
    /// is applied to every block row of the tile while it is cache-hot,
    /// and the tile bounds the out working set to roughly half of L1. For
    /// any fixed output element the kept contributions still arrive in
    /// ascending block-column order, so the accumulation order per element
    /// — and therefore the result, bitwise — is unchanged.
    fn execute_tiled<const W: usize>(
        &self,
        rhs: &[f32],
        out: &mut [f32],
        width: usize,
        brs: Range<usize>,
        row_base: usize,
    ) {
        let (_, grid_cols) = self.grid;
        let tile = (L1_BYTES / 2 / (self.psize * width * std::mem::size_of::<f32>())).max(1);
        let mut t = brs.start;
        while t < brs.end {
            let t_end = brs.end.min(t + tile);
            for bc in 0..grid_cols {
                for br in t..t_end {
                    self.process_block::<W>(br, bc, rhs, out, width, row_base);
                }
            }
            t = t_end;
        }
    }

    /// Executes one block of the grid. `out` holds the block rows starting
    /// at logical row `row_base`; rhs indexing stays absolute.
    #[inline]
    fn process_block<const W: usize>(
        &self,
        br: usize,
        bc: usize,
        rhs: &[f32],
        out: &mut [f32],
        width: usize,
        row_base: usize,
    ) {
        let (_, grid_cols) = self.grid;
        let bi = br * grid_cols + bc;
        let base_r = br * self.psize;
        let base_c = bc * self.psize;
        let cp = &self.compiled[self.assignments[bi] as usize];
        let vals = self.block_values(bi);
        let local_r = base_r - row_base;
        if base_r + self.psize <= self.rows && base_c + self.psize <= self.cols {
            if W == 0 {
                self.block_full_general(cp, vals, local_r, base_c, rhs, out, width);
            } else if self.backend.covers_width(W) {
                // `covers_width` constant-folds the width test per
                // monomorphization; the backend invariant (`Avx2` only
                // after detection) makes the kernel's feature use sound
                simd::block_full::<W>(
                    &cp.row_ptr,
                    &cp.cols,
                    vals,
                    self.psize,
                    local_r,
                    base_c,
                    rhs,
                    out,
                );
            } else {
                self.block_full_fixed::<W>(cp, vals, local_r, base_c, rhs, out);
            }
        } else {
            self.block_edge(cp, vals, base_r, base_c, local_r, rhs, out, width);
        }
    }

    /// Interior-block kernel for a compile-time rhs width: the output row
    /// is copied into a `[f32; W]` register accumulator once, every kept
    /// position of the row then runs `W` unrolled multiply-adds against it
    /// (no per-element bounds checks, no output loads/stores per value),
    /// and the row is written back once. Accumulation per element stays in
    /// arena order, so the result is bit-identical to the scalar path.
    /// This is also the loop the AVX2 kernels mirror (`simd::block_full`)
    /// and the portable fallback when the backend is scalar.
    ///
    /// `local_r` is the block's first row *within `out`* (differs from the
    /// logical row during `par_matmul_into`, whose threads see only their
    /// own row-range slice).
    #[inline]
    fn block_full_fixed<const W: usize>(
        &self,
        cp: &CompiledPattern,
        vals: &[f32],
        local_r: usize,
        base_c: usize,
        rhs: &[f32],
        out: &mut [f32],
    ) {
        for r in 0..self.psize {
            let (s, e) = cp.row_range(r);
            if s == e {
                continue;
            }
            let rr = local_r + r;
            let out_row = &mut out[rr * W..(rr + 1) * W];
            let mut acc = [0.0f32; W];
            acc.copy_from_slice(out_row);
            for (&c, &v) in cp.cols[s..e].iter().zip(&vals[s..e]) {
                let cc = base_c + c as usize;
                let rhs_row = &rhs[cc * W..(cc + 1) * W];
                for (a, &b) in acc.iter_mut().zip(rhs_row) {
                    *a += v * b;
                }
            }
            out_row.copy_from_slice(&acc);
        }
    }

    /// Interior-block kernel for arbitrary rhs widths: each output row is
    /// sliced once and the inner loop is a chunked multiply-add over the
    /// rhs row. `local_r` indexes `out` as in `block_full_fixed`.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn block_full_general(
        &self,
        cp: &CompiledPattern,
        vals: &[f32],
        local_r: usize,
        base_c: usize,
        rhs: &[f32],
        out: &mut [f32],
        width: usize,
    ) {
        for r in 0..self.psize {
            let (s, e) = cp.row_range(r);
            if s == e {
                continue;
            }
            let rr = local_r + r;
            let out_row = &mut out[rr * width..(rr + 1) * width];
            for (&c, &v) in cp.cols[s..e].iter().zip(&vals[s..e]) {
                let cc = base_c + c as usize;
                let rhs_row = &rhs[cc * width..(cc + 1) * width];
                axpy(out_row, rhs_row, v);
            }
        }
    }

    /// Edge-block kernel: rows and columns are clamped to the logical
    /// matrix bounds (only the last block row/column can land here).
    /// `base_r` is the logical row (for the clamp); `local_r` indexes
    /// `out` as in `block_full_fixed`.
    #[allow(clippy::too_many_arguments)]
    fn block_edge(
        &self,
        cp: &CompiledPattern,
        vals: &[f32],
        base_r: usize,
        base_c: usize,
        local_r: usize,
        rhs: &[f32],
        out: &mut [f32],
        width: usize,
    ) {
        let h = self.psize.min(self.rows - base_r);
        let w = self.psize.min(self.cols - base_c);
        for r in 0..h {
            let (s, e) = cp.row_range(r);
            let rr = local_r + r;
            let out_row = &mut out[rr * width..(rr + 1) * width];
            for (&c, &v) in cp.cols[s..e].iter().zip(&vals[s..e]) {
                if c as usize >= w {
                    continue;
                }
                let cc = base_c + c as usize;
                let rhs_row = &rhs[cc * width..(cc + 1) * width];
                axpy(out_row, rhs_row, v);
            }
        }
    }
}

/// `out += a * x`, chunked by [`LANES`] so the compiler emits vector
/// multiply-adds for the bulk of the row. Both slices have equal length
/// (the rhs width); each output element receives exactly one add, so the
/// accumulation order per element is the same as a scalar loop.
#[inline]
fn axpy(out: &mut [f32], x: &[f32], a: f32) {
    let mut oc = out.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (o, b) in (&mut oc).zip(&mut xc) {
        for k in 0..LANES {
            o[k] += a * b[k];
        }
    }
    for (o, &b) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o += a * b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn set_of(psize: usize, sparsity: f64, count: usize, seed: u64) -> PatternSet {
        let mut rng = StdRng::seed_from_u64(seed);
        PatternSet::new(
            (0..count)
                .map(|_| PatternMask::random(psize, sparsity, &mut rng))
                .collect(),
        )
        .expect("non-empty set")
    }

    #[test]
    fn compiled_pattern_groups_positions_by_row() {
        let mask = PatternMask::new(
            3,
            vec![true, false, true, false, false, false, true, true, true],
        );
        let cp = CompiledPattern::compile(&mask);
        assert_eq!(cp.ones(), 5);
        assert_eq!(cp.row_range(0), (0, 2));
        assert_eq!(cp.row_range(1), (2, 2));
        assert_eq!(cp.row_range(2), (2, 5));
        assert_eq!(cp.cols, vec![0, 2, 0, 1, 2]);
    }

    #[test]
    fn plan_assignments_match_scalar_best_pattern() {
        let mut rng = StdRng::seed_from_u64(31);
        let dense = Matrix::xavier(13, 9, &mut rng);
        let set = set_of(4, 0.5, 3, 32);
        let plan = PatternPlan::compile(&dense, &set);
        let (grid_rows, grid_cols) = plan.block_grid();
        assert_eq!((grid_rows, grid_cols), (4, 3));
        for br in 0..grid_rows {
            for bc in 0..grid_cols {
                let block = dense.block(br * 4, bc * 4, 4, 4);
                assert_eq!(
                    plan.assignments()[br * grid_cols + bc] as usize,
                    set.best_pattern_for(&block),
                    "block ({br},{bc})"
                );
            }
        }
    }

    #[test]
    fn arena_stride_is_uniform_per_pattern() {
        let mut rng = StdRng::seed_from_u64(33);
        let dense = Matrix::xavier(12, 12, &mut rng);
        let set = set_of(4, 0.75, 2, 34);
        let plan = PatternPlan::compile(&dense, &set);
        for (bi, &a) in plan.assignments().iter().enumerate() {
            assert_eq!(
                plan.block_values(bi).len(),
                plan.compiled_patterns()[a as usize].ones()
            );
        }
        assert_eq!(plan.stored_values(), 9 * 4); // 9 blocks x 4 kept each
    }

    #[test]
    fn row_splits_cover_grid_and_balance_values() {
        let mut rng = StdRng::seed_from_u64(41);
        let dense = Matrix::xavier(64, 32, &mut rng);
        let set = set_of(4, 0.5, 3, 42);
        let plan = PatternPlan::compile(&dense, &set);
        let (grid_rows, _) = plan.block_grid();
        for parts in 1..=grid_rows + 3 {
            let splits = plan.row_splits(parts);
            assert!(!splits.is_empty());
            assert!(splits.len() <= parts.max(1));
            assert_eq!(splits[0].start, 0);
            assert_eq!(splits.last().unwrap().end, grid_rows);
            for w in splits.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
                assert!(!w[0].is_empty() && !w[1].is_empty());
            }
        }
        // with one range per block row the split is maximal
        assert_eq!(plan.row_splits(grid_rows).len(), grid_rows);
    }

    #[test]
    fn par_matmul_matches_serial_for_all_worker_counts() {
        let mut rng = StdRng::seed_from_u64(43);
        let dense = Matrix::xavier(50, 30, &mut rng);
        let set = set_of(4, 0.5, 3, 44);
        let plan = PatternPlan::compile(&dense, &set);
        for width in [1usize, 3, 8, 64] {
            let rhs = Matrix::xavier(30, width, &mut rng);
            let mut serial = Matrix::zeros(50, width);
            plan.matmul_into(&rhs, &mut serial);
            for workers in [1usize, 2, 3, 7, 64] {
                let mut par = Matrix::zeros(50, width);
                plan.par_matmul_into(&rhs, &mut par, workers);
                assert!(
                    par.approx_eq(&serial, 0.0),
                    "width {width} workers {workers} diverged"
                );
            }
        }
    }

    #[test]
    fn matmul_into_handles_zero_width_rhs() {
        let mut rng = StdRng::seed_from_u64(35);
        let dense = Matrix::xavier(8, 8, &mut rng);
        let set = set_of(4, 0.5, 2, 36);
        let plan = PatternPlan::compile(&dense, &set);
        let rhs = Matrix::zeros(8, 0);
        let mut out = Matrix::zeros(8, 0);
        plan.matmul_into(&rhs, &mut out); // must not panic
        assert_eq!(out.shape(), (8, 0));
    }
}
