//! Budget-matched comparison of Level-2 optimizers (the Table III
//! experiment, generalised): every optimizer searches the same candidate
//! pattern sets, through its own memoizing driver, at the same distinct-
//! evaluation budget, against the same seed — so the only degree of freedom
//! is the search strategy.

use crate::evaluator::AccuracyEvaluator;
use crate::search::{
    evaluate_assignment_with_reference, level2_assignment_space, level2_runs_reference,
    BackboneResult, SolutionPoint,
};
use crate::Rt3Config;
use rt3_pruning::PatternSpace;
use rt3_search::{build_optimizer, DriverConfig, OptimizerKind, SearchDriver};
use rt3_transformer::Model;
use serde::Serialize;
use std::collections::HashMap;

/// Configuration of one comparison run.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonConfig {
    /// Distinct-evaluation budget every optimizer gets (cache hits are
    /// free).
    pub budget: usize,
    /// Seed shared by every optimizer.
    pub seed: u64,
    /// The optimizers to compare.
    pub optimizers: Vec<OptimizerKind>,
    /// When the full assignment space holds at most this many assignments,
    /// an [`OptimizerKind::Exhaustive`] pass over the *whole* space (not
    /// budget-matched) is appended as the ground-truth optimum.
    pub exhaustive_optimum_limit: usize,
}

impl ComparisonConfig {
    /// The default Table III-style line-up: REINFORCE, evolutionary and
    /// bandit against the random baseline, with the exhaustive optimum for
    /// spaces up to 4096 assignments.
    pub fn new(budget: usize, seed: u64) -> Self {
        Self {
            budget,
            seed,
            optimizers: vec![
                OptimizerKind::Reinforce,
                OptimizerKind::Evolutionary,
                OptimizerKind::Bandit,
                OptimizerKind::Random,
            ],
            exhaustive_optimum_limit: 4096,
        }
    }
}

/// One optimizer's results at budget.
#[derive(Debug, Clone, Serialize)]
pub struct OptimizerReport {
    /// Stable optimizer name (`reinforce`, `evolutionary`, …).
    pub name: String,
    /// Best solution found (feasible preferred), if anything was evaluated.
    pub best: Option<SolutionPoint>,
    /// Distinct evaluations spent when the best solution was first reached.
    pub evals_to_best: usize,
    /// Proposals made inside the search loop.
    pub proposals: usize,
    /// Distinct assignments evaluated inside the search loop (≤ budget).
    pub unique_evaluations: usize,
    /// 1 when the final recommendation needed one extra evaluation.
    pub readout_evaluations: usize,
    /// Proposals answered from the memoized cache.
    pub cache_hits: usize,
    /// Fraction of lookups answered from the cache.
    pub cache_hit_rate: f64,
}

impl OptimizerReport {
    /// Reward of the best solution, `-inf` when nothing was evaluated (so
    /// comparisons never panic).
    pub fn best_reward(&self) -> f64 {
        self.best.as_ref().map_or(f64::NEG_INFINITY, |b| b.reward)
    }
}

/// The full Table III-style comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonReport {
    /// Task the accuracies refer to.
    pub task: String,
    /// Distinct-evaluation budget of every row.
    pub budget: usize,
    /// Shared optimizer seed.
    pub seed: u64,
    /// Number of V/F levels (decisions per assignment).
    pub num_levels: usize,
    /// Number of candidate pattern sets per level.
    pub num_candidates: usize,
    /// One row per compared optimizer, in configuration order.
    pub rows: Vec<OptimizerReport>,
    /// Ground-truth optimum from a full exhaustive sweep, when the space
    /// was small enough (not budget-matched).
    pub optimum: Option<OptimizerReport>,
}

impl ComparisonReport {
    /// The row of one optimizer, by stable name.
    pub fn row(&self, name: &str) -> Option<&OptimizerReport> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs every configured optimizer at the same budget over the same
/// candidate sets and collects the Table III-style report.
pub fn compare_optimizers<M: Model, E: AccuracyEvaluator>(
    model: &M,
    backbone: &BackboneResult,
    space: &PatternSpace,
    config: &Rt3Config,
    evaluator: &mut E,
    comparison: &ComparisonConfig,
) -> ComparisonReport {
    let assignment_space = level2_assignment_space(space, config);
    // the runs-normalisation reference is invariant across assignments —
    // hoist it once instead of recomputing it per evaluation (the
    // exhaustive-optimum pass alone evaluates the whole space)
    let reference = level2_runs_reference(model, backbone, space, config);
    // evaluations are deterministic per assignment, so rows share one memo:
    // each driver still charges its own budget through its private cache
    // (the per-row accounting below is untouched), but an assignment another
    // row already evaluated costs nothing to re-evaluate — which matters for
    // trained evaluators that fine-tune a model clone per evaluation
    let mut memo: HashMap<Vec<usize>, SolutionPoint> = HashMap::new();
    let mut run_kind = |kind: OptimizerKind, driver_config: DriverConfig| -> OptimizerReport {
        let mut optimizer = build_optimizer(kind, assignment_space, comparison.seed);
        let driver = SearchDriver::new(driver_config);
        let outcome = driver.run(optimizer.as_mut(), |actions| {
            if let Some(point) = memo.get(actions) {
                return point.clone();
            }
            let point = evaluate_assignment_with_reference(
                model, backbone, space, config, evaluator, actions, true, reference,
            );
            memo.insert(actions.to_vec(), point.clone());
            point
        });
        OptimizerReport {
            name: kind.name().to_string(),
            best: outcome.best().cloned(),
            evals_to_best: outcome.evals_to_best,
            proposals: outcome.proposals,
            unique_evaluations: outcome.unique_evaluations,
            readout_evaluations: outcome.readout_evaluations,
            cache_hits: outcome.cache_hits,
            cache_hit_rate: outcome.cache_hit_rate(),
        }
    };
    let rows: Vec<OptimizerReport> = comparison
        .optimizers
        .iter()
        .map(|&kind| run_kind(kind, DriverConfig::budget(comparison.budget)))
        .collect();
    let optimum = assignment_space
        .size()
        .filter(|&size| size <= comparison.exhaustive_optimum_limit)
        .map(|size| {
            run_kind(
                OptimizerKind::Exhaustive,
                DriverConfig::exact_proposals(size),
            )
        });
    ComparisonReport {
        task: evaluator.task_name(),
        budget: comparison.budget,
        seed: comparison.seed,
        num_levels: assignment_space.num_levels,
        num_candidates: assignment_space.num_candidates,
        rows,
        optimum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{SurrogateEvaluator, TaskProfile};
    use crate::search::{build_search_space, run_level1};
    use rt3_transformer::{TransformerConfig, TransformerLm};

    fn setup() -> (TransformerLm, Rt3Config, SurrogateEvaluator) {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 7);
        let config = Rt3Config::tiny_test();
        let evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
        (model, config, evaluator)
    }

    #[test]
    fn comparison_is_budget_matched_and_complete() {
        let (model, config, mut evaluator) = setup();
        let backbone = run_level1(&model, &config, &mut evaluator);
        let space = build_search_space(&model, &backbone, &config);
        let comparison = ComparisonConfig::new(12, config.seed);
        let report = compare_optimizers(
            &model,
            &backbone,
            &space,
            &config,
            &mut evaluator,
            &comparison,
        );
        assert_eq!(report.rows.len(), 4);
        for row in &report.rows {
            assert!(row.unique_evaluations <= comparison.budget, "{}", row.name);
            assert!(row.best.is_some(), "{}", row.name);
            assert!(row.evals_to_best <= row.unique_evaluations + row.readout_evaluations);
        }
        // tiny_test: 3 candidates × 3 levels = 27 assignments → optimum runs
        let optimum = report.optimum.as_ref().expect("small space");
        assert_eq!(optimum.unique_evaluations, 27);
        // nothing beats the exhaustive optimum
        for row in &report.rows {
            assert!(
                row.best_reward() <= optimum.best_reward() + 1e-12,
                "{}",
                row.name
            );
        }
    }

    #[test]
    fn comparison_is_deterministic() {
        let (model, config, mut evaluator) = setup();
        let backbone = run_level1(&model, &config, &mut evaluator);
        let space = build_search_space(&model, &backbone, &config);
        let comparison = ComparisonConfig::new(10, 99);
        let a = compare_optimizers(
            &model,
            &backbone,
            &space,
            &config,
            &mut evaluator,
            &comparison,
        );
        let b = compare_optimizers(
            &model,
            &backbone,
            &space,
            &config,
            &mut evaluator,
            &comparison,
        );
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.best_reward().to_bits(), rb.best_reward().to_bits());
            assert_eq!(ra.evals_to_best, rb.evals_to_best);
        }
    }
}
