//! Joint training of the shared backbone under multiple pattern sets
//! (Fig. 2 of the paper, component ④).
//!
//! In every step the batch loss is computed once per mask set (forward
//! propagation "goes through each pattern set"), the sub-losses are combined
//! with the per-level weights `α_i`, and a single backward pass updates the
//! shared weights. Because the masks of level *i* zero the gradient of
//! positions pruned at level *i*, a weight shared by several levels receives
//! the sum of their contributions — exactly the weighted accumulation the
//! paper describes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rt3_data::{lm_batches, MarkovCorpus};
use rt3_tensor::{Adam, Graph, Matrix, Optimizer, Var};
use rt3_transformer::{evaluate_lm, MaskSet, Model, TrainOptions, TransformerLm};
use serde::{Deserialize, Serialize};

/// Result of joint training: one score per level plus the final training
/// loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointTrainingReport {
    /// Validation score of the shared backbone under each level's masks.
    pub per_level_scores: Vec<f64>,
    /// Mean weighted loss of the last epoch.
    pub final_loss: f32,
    /// Number of gradient steps taken.
    pub steps: usize,
}

/// Jointly trains the shared language-model backbone under several mask sets
/// and returns the per-level validation scores (the "RT3 accuracy" row of
/// Table III).
///
/// # Panics
///
/// Panics if `level_masks` is empty, `weights` has a different length, or
/// the corpus is too short for one batch.
pub fn joint_train_lm(
    model: &mut TransformerLm,
    corpus: &MarkovCorpus,
    level_masks: &[MaskSet],
    weights: &[f64],
    options: &TrainOptions,
) -> JointTrainingReport {
    assert!(!level_masks.is_empty(), "at least one mask set is required");
    assert_eq!(
        level_masks.len(),
        weights.len(),
        "one weight per mask set is required"
    );
    let mut batches = lm_batches(corpus.train(), options.seq_len, options.batch_size);
    assert!(!batches.is_empty(), "corpus too short for one batch");
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut optimizer = Adam::new(options.learning_rate);
    let mut final_loss = f32::NAN;
    let mut steps = 0;
    for _ in 0..options.epochs {
        batches.shuffle(&mut rng);
        let limit = options.max_batches_per_epoch.unwrap_or(batches.len());
        let mut epoch_loss = 0.0;
        let mut used = 0;
        for batch in batches.iter().take(limit) {
            let mut g = Graph::new();
            // one binding per level: each clones the shared weights and
            // applies that level's masks
            let bindings: Vec<_> = level_masks
                .iter()
                .map(|masks| model.bind(&mut g, Some(masks)))
                .collect();
            let mut total: Option<Var> = None;
            for (binding, &alpha) in bindings.iter().zip(weights) {
                let sub_loss = model.batch_loss(&mut g, binding, batch);
                let weighted = g.scale(sub_loss, alpha as f32);
                total = Some(match total {
                    Some(acc) => g.add(acc, weighted),
                    None => weighted,
                });
            }
            let total = total.expect("at least one mask set");
            epoch_loss += g.scalar(total);
            g.backward(total);
            // accumulate gradients across bindings for each shared parameter
            let names: Vec<String> = bindings[0].names().to_vec();
            let mut grads: Vec<Matrix> = Vec::with_capacity(names.len());
            for name in &names {
                let mut grad: Option<Matrix> = None;
                for binding in &bindings {
                    let g_leaf = g.grad(binding.leaf(name));
                    grad = Some(match grad {
                        Some(mut acc) => {
                            acc.add_scaled_assign(g_leaf, 1.0);
                            acc
                        }
                        None => g_leaf.clone(),
                    });
                }
                grads.push(grad.expect("at least one binding"));
            }
            for (slot, ((name, param), grad)) in
                model.parameters_mut().into_iter().zip(grads).enumerate()
            {
                debug_assert_eq!(&name, &names[slot]);
                optimizer.step(slot, param, &grad);
            }
            used += 1;
            steps += 1;
        }
        final_loss = epoch_loss / used.max(1) as f32;
    }
    let per_level_scores = level_masks
        .iter()
        .map(|masks| evaluate_lm(model, corpus, options.seq_len, Some(masks)))
        .collect();
    JointTrainingReport {
        per_level_scores,
        final_loss,
        steps,
    }
}

/// Trains one independent copy of the model per mask set (the "UB" upper
/// bound of Table III, which requires a full model switch at run time) and
/// returns the per-level validation scores.
pub fn individually_train_lm(
    model: &TransformerLm,
    corpus: &MarkovCorpus,
    level_masks: &[MaskSet],
    options: &TrainOptions,
) -> Vec<f64> {
    level_masks
        .iter()
        .map(|masks| {
            let mut copy = model.clone();
            let report = rt3_transformer::train_lm(&mut copy, corpus, options, Some(masks));
            report.metric
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt3_data::CorpusConfig;
    use rt3_pruning::{block_prune_model, BlockPruningConfig, PruneCriterion};
    use rt3_transformer::TransformerConfig;

    fn quick_options() -> TrainOptions {
        TrainOptions {
            epochs: 1,
            learning_rate: 5e-3,
            batch_size: 4,
            seq_len: 8,
            max_batches_per_epoch: Some(6),
            seed: 1,
        }
    }

    fn two_mask_sets(model: &TransformerLm) -> Vec<MaskSet> {
        let light = block_prune_model(
            model,
            &BlockPruningConfig {
                num_blocks: 2,
                criterion: PruneCriterion::Fraction(0.25),
            },
        );
        let heavy = block_prune_model(
            model,
            &BlockPruningConfig {
                num_blocks: 2,
                criterion: PruneCriterion::Fraction(0.6),
            },
        );
        vec![light, heavy]
    }

    #[test]
    fn joint_training_returns_one_score_per_level_and_makes_progress() {
        let corpus = MarkovCorpus::generate(&CorpusConfig::tiny());
        let mut model = TransformerLm::new(TransformerConfig::tiny(48), 2);
        let masks = two_mask_sets(&model);
        let before: Vec<f64> = masks
            .iter()
            .map(|m| evaluate_lm(&model, &corpus, 8, Some(m)))
            .collect();
        let report = joint_train_lm(&mut model, &corpus, &masks, &[0.5, 0.5], &quick_options());
        assert_eq!(report.per_level_scores.len(), 2);
        assert!(report.steps > 0);
        assert!(report.final_loss.is_finite());
        // at least one level should improve over the untrained model
        let improved = report
            .per_level_scores
            .iter()
            .zip(&before)
            .any(|(after, before)| after >= before);
        assert!(improved, "joint training should not degrade every level");
    }

    #[test]
    fn individual_training_returns_one_score_per_mask_set() {
        let corpus = MarkovCorpus::generate(&CorpusConfig::tiny());
        let model = TransformerLm::new(TransformerConfig::tiny(48), 3);
        let masks = two_mask_sets(&model);
        let scores = individually_train_lm(&model, &corpus, &masks, &quick_options());
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    #[should_panic(expected = "one weight per mask set")]
    fn weight_count_must_match_mask_sets() {
        let corpus = MarkovCorpus::generate(&CorpusConfig::tiny());
        let mut model = TransformerLm::new(TransformerConfig::tiny(48), 2);
        let masks = two_mask_sets(&model);
        let _ = joint_train_lm(&mut model, &corpus, &masks, &[1.0], &quick_options());
    }
}
