//! Baselines and paper-table experiments: the Table II motivation study, the
//! Table IV ablation, the Fig. 3 heuristic baseline, the Fig. 5 BP
//! evaluation and the switch-time comparison behind Table III's "Interrupt"
//! rows.

use crate::config::Rt3Config;
use crate::evaluator::{AccuracyEvaluator, PruningSpec, SurrogateEvaluator, TaskProfile};
use crate::search::{
    build_search_space, evaluate_assignment, run_level1, run_level1_random, run_level2_search,
    BackboneResult, SolutionPoint,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt3_data::GlueTask;
use rt3_hardware::{
    number_of_runs, simulate_battery_lifetime, simulate_fixed_level, DvfsGovernor,
    ExecutionProfile, MemoryModel, ModelWorkload, PowerModel, SimulationReport, VfLevel,
};
use rt3_pruning::{combined_masks_for_model, random_pattern_set, PatternSpace};
use rt3_sparse::{PatternSet, SparseFormat};
use rt3_transformer::Model;
use serde::{Deserialize, Serialize};

/// One row of the Table II motivation experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MotivationRow {
    /// Approach label (E1/E2/E3).
    pub approach: &'static str,
    /// Battery-discharge simulation outcome.
    pub report: SimulationReport,
    /// Improvement over E1's number of runs.
    pub improvement: f64,
}

/// Reproduces the Table II motivation experiment: E1 (no reconfiguration),
/// E2 (DVFS only — same model at every level) and E3 (DVFS + software
/// reconfiguration — a sparser model per level).
pub fn run_motivation_experiment(
    config: &Rt3Config,
    base_sparsity: f64,
    per_level_sparsities: &[f64],
) -> Vec<MotivationRow> {
    let predictor = config.predictor;
    let power = PowerModel::cortex_a7();
    let governor = &config.governor;
    let top_level = *governor.levels().last().expect("non-empty governor");
    let latency_at = |sparsity: f64, level: &VfLevel| {
        let workload = ModelWorkload::from_config(
            &config.workload_config,
            sparsity,
            config.seq_len,
            SparseFormat::BlockPruned,
        );
        predictor.latency_ms(&workload, level)
    };
    // E1: always the top level, one model
    let e1_profile = ExecutionProfile {
        latency_ms: latency_at(base_sparsity, &top_level),
        power_w: power.power_w(&top_level),
    };
    let e1 = simulate_fixed_level(
        &top_level,
        config.energy_budget_j,
        e1_profile,
        config.timing_constraint_ms,
    );
    // E2: DVFS, same model at every level
    let e2_profiles: Vec<ExecutionProfile> = governor
        .levels()
        .iter()
        .map(|l| ExecutionProfile {
            latency_ms: latency_at(base_sparsity, l),
            power_w: power.power_w(l),
        })
        .collect();
    let e2 = simulate_battery_lifetime(
        governor,
        config.energy_budget_j,
        &e2_profiles,
        config.timing_constraint_ms,
    );
    // E3: DVFS + per-level sparsity (software reconfiguration)
    assert_eq!(
        per_level_sparsities.len(),
        governor.levels().len(),
        "one sparsity per governor level is required"
    );
    let e3_profiles: Vec<ExecutionProfile> = governor
        .levels()
        .iter()
        .zip(per_level_sparsities)
        .map(|(l, &s)| ExecutionProfile {
            latency_ms: latency_at(s, l),
            power_w: power.power_w(l),
        })
        .collect();
    let e3 = simulate_battery_lifetime(
        governor,
        config.energy_budget_j,
        &e3_profiles,
        config.timing_constraint_ms,
    );
    let e1_runs = e1.runs;
    vec![
        MotivationRow {
            approach: "E1",
            improvement: 1.0,
            report: e1,
        },
        MotivationRow {
            approach: "E2",
            improvement: e2.improvement_over(e1_runs),
            report: e2,
        },
        MotivationRow {
            approach: "E3",
            improvement: e3.improvement_over(e1_runs),
            report: e3,
        },
    ]
}

/// The ablation variants of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AblationVariant {
    /// Original model, no pruning, no reconfiguration.
    NoOpt,
    /// Random block pruning only.
    RandomBpOnly,
    /// Random block pruning followed by random pattern pruning.
    RandomBpRandomPp,
    /// Random block pruning followed by importance-guided pattern pruning.
    RandomBpGuidedPp,
    /// Importance-guided block pruning only.
    BpOnly,
    /// The full RT3 pipeline (BP + RL-searched PP).
    Rt3,
}

impl AblationVariant {
    /// All variants in the column order of Table IV.
    pub fn all() -> [AblationVariant; 6] {
        [
            AblationVariant::NoOpt,
            AblationVariant::RandomBpOnly,
            AblationVariant::RandomBpRandomPp,
            AblationVariant::RandomBpGuidedPp,
            AblationVariant::BpOnly,
            AblationVariant::Rt3,
        ]
    }

    /// Column label used in Table IV.
    pub fn label(&self) -> &'static str {
        match self {
            AblationVariant::NoOpt => "No-Opt",
            AblationVariant::RandomBpOnly => "rBP only",
            AblationVariant::RandomBpRandomPp => "rBP+rPP",
            AblationVariant::RandomBpGuidedPp => "rBP+PP",
            AblationVariant::BpOnly => "BP only",
            AblationVariant::Rt3 => "RT3",
        }
    }
}

/// One column of Table IV.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Which variant this row describes.
    pub variant: AblationVariant,
    /// Average sparsity across the sub-models.
    pub average_sparsity: f64,
    /// Total number of runs within the energy budget.
    pub number_of_runs: f64,
    /// Improvement over the No-Opt run count.
    pub improvement: f64,
    /// Average score across the sub-models.
    pub average_accuracy: f64,
    /// Score loss relative to No-Opt.
    pub accuracy_loss: f64,
}

/// Runs the full Table IV ablation for one task profile using the surrogate
/// evaluator (the paper's table reports three tasks; call this once per
/// task).
pub fn run_ablation<M: Model>(
    model: &M,
    config: &Rt3Config,
    profile: TaskProfile,
) -> Vec<AblationRow> {
    // The minimum-accuracy floor A_m of Eq. (1) must sit below the task's
    // achievable score range, otherwise the normalised accuracy term is
    // meaningless for low-score tasks such as RTE.
    let mut config = config.clone();
    config.reward.min_accuracy = (profile.base_score * 0.6).min(config.reward.min_accuracy);
    let config = &config;
    let mut evaluator = SurrogateEvaluator::new(profile);
    let unpruned = evaluator.unpruned_score();
    let predictor = config.predictor;
    let power = PowerModel::cortex_a7();
    let mut levels: Vec<VfLevel> = config.governor.levels().to_vec();
    levels.reverse(); // M1 = highest frequency
    let budget_per_level = config.energy_budget_j / levels.len() as f64;
    let runs_for = |sparsities: &[f64]| -> f64 {
        levels
            .iter()
            .zip(sparsities)
            .map(|(level, &s)| {
                let workload = ModelWorkload::from_config(
                    &config.workload_config,
                    s,
                    config.seq_len,
                    SparseFormat::BlockPruned,
                );
                let latency = predictor.latency_ms(&workload, level);
                let energy = power.energy_per_inference_j(level, latency);
                number_of_runs(budget_per_level, energy)
            })
            .sum()
    };

    // shared ingredients
    let guided_backbone = run_level1(model, config, &mut evaluator);
    let random_backbone =
        run_level1_random(model, config, &mut evaluator, guided_backbone.sparsity);
    let space = build_search_space(model, &guided_backbone, config);
    let prunable = model.prunable_parameter_names();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xab1a);

    let mut rows = Vec::new();
    let no_opt_runs = runs_for(&vec![0.0; levels.len()]);
    rows.push(AblationRow {
        variant: AblationVariant::NoOpt,
        average_sparsity: 0.0,
        number_of_runs: no_opt_runs,
        improvement: 1.0,
        average_accuracy: unpruned,
        accuracy_loss: 0.0,
    });

    let push_row = |variant: AblationVariant,
                    sparsities: Vec<f64>,
                    accuracies: Vec<f64>,
                    rows: &mut Vec<AblationRow>| {
        let avg_sparsity = sparsities.iter().sum::<f64>() / sparsities.len() as f64;
        let avg_accuracy = accuracies.iter().sum::<f64>() / accuracies.len() as f64;
        let runs = runs_for(&sparsities);
        rows.push(AblationRow {
            variant,
            average_sparsity: avg_sparsity,
            number_of_runs: runs,
            improvement: if no_opt_runs > 0.0 {
                runs / no_opt_runs
            } else {
                0.0
            },
            average_accuracy: avg_accuracy,
            accuracy_loss: unpruned - avg_accuracy,
        });
    };

    // rBP only / BP only: one model, no level-2 pruning
    for (variant, backbone) in [
        (AblationVariant::RandomBpOnly, &random_backbone),
        (AblationVariant::BpOnly, &guided_backbone),
    ] {
        let sparsities = vec![backbone.sparsity; levels.len()];
        let accuracies = vec![backbone.accuracy; levels.len()];
        push_row(variant, sparsities, accuracies, &mut rows);
    }

    // variants with level-2 pruning on top of the random backbone
    for (variant, guided_pp) in [
        (AblationVariant::RandomBpRandomPp, false),
        (AblationVariant::RandomBpGuidedPp, true),
    ] {
        let mut sparsities = Vec::new();
        let mut accuracies = Vec::new();
        for candidate in pick_per_level_candidates(&space, levels.len()) {
            let set: PatternSet = if guided_pp {
                candidate.set.clone()
            } else {
                random_pattern_set(
                    config.pattern_space.pattern_size,
                    candidate.sparsity,
                    config.pattern_space.patterns_per_set,
                    &mut rng,
                )
            };
            let masks = combined_masks_for_model(model, &random_backbone.masks, &prunable, &set);
            let sparsity = masks.overall_sparsity();
            let spec = PruningSpec {
                sparsity,
                level1_guided: false,
                level2: Some(guided_pp),
            };
            accuracies.push(evaluator.evaluate(&masks, &spec));
            sparsities.push(sparsity);
        }
        push_row(variant, sparsities, accuracies, &mut rows);
    }

    // full RT3: guided BP + RL-searched PP
    let outcome = run_level2_search(model, &guided_backbone, &space, config, &mut evaluator);
    if let Some(best) = outcome.best {
        push_row(
            AblationVariant::Rt3,
            best.sparsities.clone(),
            best.accuracies.clone(),
            &mut rows,
        );
    }
    // keep Table IV's column order
    rows.sort_by_key(|r| {
        AblationVariant::all()
            .iter()
            .position(|v| *v == r.variant)
            .unwrap_or(usize::MAX)
    });
    rows
}

/// Picks one candidate per level spread across the space (densest for the
/// fastest level, sparsest for the slowest) — the heuristic baseline of
/// Fig. 3(b)(c) and the fixed assignment used by the non-RL ablation rows.
fn pick_per_level_candidates(
    space: &PatternSpace,
    levels: usize,
) -> Vec<rt3_pruning::CandidatePatternSet> {
    (0..levels)
        .map(|i| {
            let idx = if levels == 1 {
                0
            } else {
                i * (space.len() - 1) / (levels - 1)
            };
            space.candidates()[idx].clone()
        })
        .collect()
}

/// The heuristic baseline of Fig. 3: for every level, pick the candidate
/// whose predicted latency just satisfies the timing constraint (no RL).
pub fn run_heuristic_baseline<M: Model, E: AccuracyEvaluator>(
    model: &M,
    backbone: &BackboneResult,
    space: &PatternSpace,
    config: &Rt3Config,
    evaluator: &mut E,
) -> SolutionPoint {
    let predictor = config.predictor;
    let mut levels: Vec<VfLevel> = config.governor.levels().to_vec();
    levels.reverse();
    let actions: Vec<usize> = levels
        .iter()
        .map(|level| {
            // choose the *densest* candidate that still meets the constraint
            let mut choice = space.len() - 1;
            for (idx, candidate) in space.candidates().iter().enumerate() {
                let workload = ModelWorkload::from_config(
                    &config.workload_config,
                    candidate.sparsity,
                    config.seq_len,
                    SparseFormat::BlockPruned,
                );
                if predictor.latency_ms(&workload, level) <= config.timing_constraint_ms {
                    choice = idx;
                    break;
                }
            }
            choice
        })
        .collect();
    evaluate_assignment(model, backbone, space, config, evaluator, &actions, true)
}

/// One bar pair of the Fig. 5 BP evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpEvaluationRow {
    /// Task label ("WikiText-2" or a GLUE task).
    pub task: String,
    /// Score of the original model.
    pub original_score: f64,
    /// Score after block-structured pruning.
    pub bp_score: f64,
    /// Compression ratio achieved by BP (1 / kept fraction).
    pub compression_ratio: f64,
}

/// Reproduces Fig. 5: original vs BP score on the nine GLUE tasks plus the
/// WikiText-2 LM task, using each task's surrogate profile and the
/// compression ratios reported in the figure.
pub fn run_bp_evaluation() -> Vec<BpEvaluationRow> {
    // compression ratios annotated in Fig. 5, per task
    let glue_ratios: &[(GlueTask, f64)] = &[
        (GlueTask::Mnli, 1.7),
        (GlueTask::Qqp, 2.0),
        (GlueTask::Qnli, 1.7),
        (GlueTask::Sst2, 1.7),
        (GlueTask::Cola, 1.2),
        (GlueTask::StsB, 1.7),
        (GlueTask::Mrpc, 1.2),
        (GlueTask::Rte, 2.0),
        (GlueTask::Wnli, 2.8),
    ];
    let mut rows: Vec<BpEvaluationRow> = glue_ratios
        .iter()
        .map(|&(task, ratio)| {
            let profile = TaskProfile::glue(task);
            let sparsity = 1.0 - 1.0 / ratio;
            let bp_score = profile.score(&PruningSpec {
                sparsity,
                level1_guided: true,
                level2: None,
            });
            BpEvaluationRow {
                task: task.name().to_string(),
                original_score: profile.base_score,
                bp_score,
                compression_ratio: ratio,
            }
        })
        .collect();
    let wikitext = TaskProfile::wikitext2();
    let ratio = 2.0;
    rows.push(BpEvaluationRow {
        task: "WikiText-2".to_string(),
        original_score: wikitext.base_score,
        bp_score: wikitext.score(&PruningSpec {
            sparsity: 1.0 - 1.0 / ratio,
            level1_guided: true,
            level2: None,
        }),
        compression_ratio: ratio,
    });
    rows
}

/// Switch-time comparison behind the "Interrupt" rows of Table III: RT3 swaps
/// a pattern set while the upper bound reloads a whole model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SwitchComparison {
    /// RT3 pattern-set switch time in milliseconds.
    pub rt3_switch_ms: f64,
    /// Upper-bound full model reload time in milliseconds.
    pub upper_bound_switch_ms: f64,
    /// Speed-up of RT3 over the upper bound.
    pub speedup: f64,
}

/// Computes the switch-time comparison for a model with `model_parameters`
/// weights and pattern sets of `pattern_size`.
pub fn switch_time_comparison(
    pattern_size: usize,
    patterns_per_set: usize,
    model_parameters: usize,
) -> SwitchComparison {
    let memory = MemoryModel::odroid_xu3();
    let set = random_pattern_set(
        pattern_size,
        0.5,
        patterns_per_set,
        &mut StdRng::seed_from_u64(1),
    );
    let blocks = model_parameters / (pattern_size * pattern_size).max(1);
    let switch = memory.pattern_switch_cost(&set, blocks);
    let reload = memory.full_model_reload_cost(model_parameters * 4);
    SwitchComparison {
        rt3_switch_ms: switch.time_ms,
        upper_bound_switch_ms: reload.time_ms,
        speedup: reload.time_ms / switch.time_ms,
    }
}

/// Convenience: the default governor used by the paper-style experiments.
pub fn paper_governor() -> DvfsGovernor {
    DvfsGovernor::paper_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt3_transformer::{TransformerConfig, TransformerLm};

    fn tiny_model() -> TransformerLm {
        TransformerLm::new(TransformerConfig::tiny(32), 5)
    }

    fn fast_config() -> Rt3Config {
        let mut cfg = Rt3Config::tiny_test();
        // keep the battery simulation short
        cfg.energy_budget_j = 50.0;
        cfg
    }

    #[test]
    fn motivation_experiment_reproduces_table_two_shape() {
        let mut config = Rt3Config::wikitext_default();
        config.energy_budget_j = 300.0;
        config.timing_constraint_ms = 115.0;
        // base model just meets the deadline at the top level; per-level
        // sparsities keep every level under it
        let rows = run_motivation_experiment(&config, 0.55, &[0.85, 0.75, 0.55]);
        assert_eq!(rows.len(), 3);
        let e1 = &rows[0];
        let e2 = &rows[1];
        let e3 = &rows[2];
        assert!(e1.report.constraint_satisfied);
        assert!(
            e2.report.runs > e1.report.runs,
            "E2 must extend battery life"
        );
        assert!(
            !e2.report.constraint_satisfied,
            "E2 must violate the deadline at low frequency"
        );
        assert!(
            e3.report.constraint_satisfied,
            "E3 must meet every deadline"
        );
        assert!(e3.report.runs > e2.report.runs);
        assert!(e3.improvement > 1.5);
    }

    #[test]
    fn ablation_reproduces_table_four_ordering() {
        let model = tiny_model();
        let config = fast_config();
        let rows = run_ablation(&model, &config, TaskProfile::wikitext2());
        assert_eq!(rows.len(), 6);
        let by_variant = |v: AblationVariant| {
            rows.iter()
                .find(|r| r.variant == v)
                .unwrap_or_else(|| panic!("missing {:?}", v))
        };
        let no_opt = by_variant(AblationVariant::NoOpt);
        let rbp = by_variant(AblationVariant::RandomBpOnly);
        let rbp_rpp = by_variant(AblationVariant::RandomBpRandomPp);
        let rbp_pp = by_variant(AblationVariant::RandomBpGuidedPp);
        let bp = by_variant(AblationVariant::BpOnly);
        let rt3 = by_variant(AblationVariant::Rt3);
        // accuracy ordering: No-Opt best; BP beats rBP; PP beats rPP; RT3
        // close to BP-only despite much higher sparsity
        assert!(no_opt.average_accuracy >= bp.average_accuracy);
        assert!(bp.average_accuracy > rbp.average_accuracy);
        assert!(rbp_pp.average_accuracy > rbp_rpp.average_accuracy);
        assert!(rt3.average_accuracy > rbp_rpp.average_accuracy);
        // hardware ordering: everything beats No-Opt; the PP variants beat
        // BP-only because they are sparser
        assert!(bp.improvement > 1.2);
        assert!(rt3.improvement > bp.improvement);
        assert!(rbp_rpp.improvement > 1.0);
        // sparsity ordering
        assert!(rt3.average_sparsity > bp.average_sparsity);
    }

    #[test]
    fn heuristic_baseline_is_feasible_but_not_better_than_search() {
        let model = tiny_model();
        let mut config = fast_config();
        config.episodes = 25;
        let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
        let backbone = run_level1(&model, &config, &mut evaluator);
        let space = build_search_space(&model, &backbone, &config);
        let heuristic = run_heuristic_baseline(&model, &backbone, &space, &config, &mut evaluator);
        assert!(heuristic.meets_constraint);
        let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
        let best = outcome.best.expect("search should find a feasible point");
        // the search's chosen solution must not be strictly dominated by the
        // heuristic in the (accuracy, runs) objective space
        let dominated = heuristic.weighted_accuracy > best.weighted_accuracy + 1e-9
            && heuristic.number_of_runs > best.number_of_runs + 1e-9;
        assert!(
            !dominated,
            "heuristic (acc {:.3}, runs {:.0}) strictly dominates the searched solution (acc {:.3}, runs {:.0})",
            heuristic.weighted_accuracy,
            heuristic.number_of_runs,
            best.weighted_accuracy,
            best.number_of_runs
        );
    }

    #[test]
    fn bp_evaluation_covers_all_ten_tasks_with_small_loss() {
        let rows = run_bp_evaluation();
        assert_eq!(rows.len(), 10);
        for row in &rows {
            assert!(row.bp_score <= row.original_score);
            assert!(row.compression_ratio >= 1.2);
            let loss = row.original_score - row.bp_score;
            assert!(loss < 0.10, "{}: loss {:.3} too large", row.task, loss);
        }
        // average loss should be small, echoing the paper's 1.74% average
        let avg_loss: f64 = rows
            .iter()
            .map(|r| r.original_score - r.bp_score)
            .sum::<f64>()
            / rows.len() as f64;
        assert!(avg_loss < 0.05, "average loss {:.3}", avg_loss);
    }

    #[test]
    fn switch_comparison_shows_three_orders_of_magnitude() {
        // DistilBERT-scale parameters
        let cmp = switch_time_comparison(100, 4, 66_000_000);
        assert!(cmp.rt3_switch_ms < 60.0);
        assert!(cmp.speedup > 1000.0);
    }
}
