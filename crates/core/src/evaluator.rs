//! Accuracy evaluators: how the search learns the accuracy of a pruned
//! sub-model.
//!
//! Two interchangeable implementations stand behind the same trait:
//!
//! * [`TrainedLmEvaluator`] / [`TrainedClassifierEvaluator`] really fine-tune
//!   the (small) model under the candidate masks — the faithful but slow
//!   path, used by the examples and integration tests;
//! * [`SurrogateEvaluator`] uses an analytic accuracy-vs-sparsity curve per
//!   task, calibrated to the operating points reported in the paper, so the
//!   full table sweeps finish in seconds on a CPU (see DESIGN.md for the
//!   substitution rationale). The curve distinguishes importance-guided
//!   pruning from the random baselines, which is what the ablation study
//!   needs.

use rt3_data::{GlueTask, MarkovCorpus, TaskDataset};
use rt3_transformer::{
    evaluate_classifier, evaluate_lm, train_classifier, train_lm, MaskSet, SequenceClassifier,
    TrainOptions, TransformerLm,
};
use serde::{Deserialize, Serialize};

/// Describes how a mask set was produced, so surrogate evaluators can model
/// the quality difference between guided and random pruning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruningSpec {
    /// Overall sparsity of the evaluated masks, in `[0, 1]`.
    pub sparsity: f64,
    /// Whether Level-1 pruning was importance-guided (BP) or random (rBP).
    pub level1_guided: bool,
    /// Whether Level-2 pattern pruning was applied, and if so whether it was
    /// importance-guided (PP) or random (rPP).
    pub level2: Option<bool>,
}

impl PruningSpec {
    /// Spec for an unpruned model.
    pub fn unpruned() -> Self {
        Self {
            sparsity: 0.0,
            level1_guided: true,
            level2: None,
        }
    }
}

/// Produces the task score of the backbone model under a candidate mask set.
pub trait AccuracyEvaluator {
    /// Score of the unpruned model (`A_o`'s upper reference, "No-Opt").
    fn unpruned_score(&mut self) -> f64;

    /// Score of the model under `masks`. `spec` carries the sparsity and
    /// pruning-quality information surrogate implementations need; trained
    /// implementations may ignore it.
    fn evaluate(&mut self, masks: &MaskSet, spec: &PruningSpec) -> f64;

    /// Human-readable name of the underlying task (for reports).
    fn task_name(&self) -> String;
}

/// Analytic accuracy-vs-sparsity profile of one task.
///
/// `score(s) = base − sensitivity · s^exponent · quality`, where `quality`
/// is 1 for fully guided pruning and grows when Level 1 and/or Level 2 are
/// random. Constants are calibrated so the guided curve passes near the
/// operating points reported in the paper (Tables III/IV, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TaskProfile {
    /// Unpruned score.
    pub base_score: f64,
    /// Loss scale.
    pub sensitivity: f64,
    /// Loss exponent (how sharply the task degrades at high sparsity).
    pub exponent: f64,
    /// Multiplier applied to the loss when Level-1 pruning is random.
    pub random_level1_factor: f64,
    /// Multiplier applied to the loss when Level-2 pruning is random.
    pub random_level2_factor: f64,
    /// Task label.
    pub name: &'static str,
}

impl TaskProfile {
    /// WikiText-2 next-word accuracy profile (paper: 97.45% unpruned, 0.64%
    /// loss at 64% BP sparsity, ~1% loss at 75% RT3 sparsity).
    pub fn wikitext2() -> Self {
        Self {
            base_score: 0.9745,
            sensitivity: 0.021,
            exponent: 2.6,
            random_level1_factor: 2.8,
            random_level2_factor: 3.5,
            name: "WikiText-2",
        }
    }

    /// RTE accuracy profile (paper: 59.20% unpruned, no loss at 49% BP
    /// sparsity, ~4.9% loss at 68% RT3 sparsity).
    pub fn rte() -> Self {
        Self {
            base_score: 0.592,
            sensitivity: 0.47,
            exponent: 5.9,
            random_level1_factor: 2.0,
            random_level2_factor: 2.5,
            name: "RTE",
        }
    }

    /// STS-B Spearman profile (paper: 86.50 unpruned, 2.8 points at 40% BP
    /// sparsity, ~8.8 points at 49% RT3 sparsity).
    pub fn stsb() -> Self {
        Self {
            base_score: 0.865,
            sensitivity: 6.6,
            exponent: 6.0,
            random_level1_factor: 3.0,
            random_level2_factor: 2.0,
            name: "STS-B",
        }
    }

    /// Profile for any GLUE task, with base scores near published DistilBERT
    /// numbers; used by the Fig. 5 reproduction.
    pub fn glue(task: GlueTask) -> Self {
        match task {
            GlueTask::Rte => Self::rte(),
            GlueTask::StsB => Self::stsb(),
            GlueTask::Mnli => Self::generic("MNLI", 0.82, 0.10, 3.0),
            GlueTask::Qqp => Self::generic("QQP", 0.88, 0.08, 3.0),
            GlueTask::Qnli => Self::generic("QNLI", 0.89, 0.09, 3.0),
            GlueTask::Sst2 => Self::generic("SST-2", 0.91, 0.07, 3.0),
            GlueTask::Cola => Self::generic("CoLA", 0.51, 0.30, 3.5),
            GlueTask::Mrpc => Self::generic("MRPC", 0.89, 0.12, 3.2),
            GlueTask::Wnli => Self::generic("WNLI", 0.56, 0.20, 4.0),
        }
    }

    fn generic(name: &'static str, base: f64, sensitivity: f64, exponent: f64) -> Self {
        Self {
            base_score: base,
            sensitivity,
            exponent,
            random_level1_factor: 2.5,
            random_level2_factor: 3.0,
            name,
        }
    }

    /// Score predicted for a pruning specification.
    pub fn score(&self, spec: &PruningSpec) -> f64 {
        let mut quality = 1.0;
        if !spec.level1_guided {
            quality *= self.random_level1_factor;
        }
        if spec.level2 == Some(false) {
            quality *= self.random_level2_factor;
        }
        let loss = self.sensitivity * spec.sparsity.max(0.0).powf(self.exponent) * quality;
        (self.base_score - loss).max(0.0)
    }
}

/// Surrogate evaluator built on a [`TaskProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SurrogateEvaluator {
    profile: TaskProfile,
}

impl SurrogateEvaluator {
    /// Creates a surrogate for the given task profile.
    pub fn new(profile: TaskProfile) -> Self {
        Self { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &TaskProfile {
        &self.profile
    }
}

impl AccuracyEvaluator for SurrogateEvaluator {
    fn unpruned_score(&mut self) -> f64 {
        self.profile.base_score
    }

    fn evaluate(&mut self, masks: &MaskSet, spec: &PruningSpec) -> f64 {
        // prefer the measured sparsity of the actual masks when available
        let sparsity = if masks.is_empty() {
            spec.sparsity
        } else {
            masks.overall_sparsity()
        };
        self.profile.score(&PruningSpec { sparsity, ..*spec })
    }

    fn task_name(&self) -> String {
        self.profile.name.to_string()
    }
}

/// Evaluator that really fine-tunes the language model under each mask set.
#[derive(Debug, Clone)]
pub struct TrainedLmEvaluator {
    model: TransformerLm,
    corpus: MarkovCorpus,
    options: TrainOptions,
}

impl TrainedLmEvaluator {
    /// Creates an evaluator that fine-tunes a copy of `model` on `corpus`
    /// for every candidate mask set.
    pub fn new(model: TransformerLm, corpus: MarkovCorpus, options: TrainOptions) -> Self {
        Self {
            model,
            corpus,
            options,
        }
    }
}

impl AccuracyEvaluator for TrainedLmEvaluator {
    fn unpruned_score(&mut self) -> f64 {
        evaluate_lm(&self.model, &self.corpus, self.options.seq_len, None)
    }

    fn evaluate(&mut self, masks: &MaskSet, _spec: &PruningSpec) -> f64 {
        let mut candidate = self.model.clone();
        let report = train_lm(&mut candidate, &self.corpus, &self.options, Some(masks));
        report.metric
    }

    fn task_name(&self) -> String {
        "WikiText-2 (trained)".to_string()
    }
}

/// Evaluator that really fine-tunes the sequence classifier on a synthetic
/// GLUE-style task under each mask set.
#[derive(Debug, Clone)]
pub struct TrainedClassifierEvaluator {
    model: SequenceClassifier,
    dataset: TaskDataset,
    options: TrainOptions,
}

impl TrainedClassifierEvaluator {
    /// Creates an evaluator that fine-tunes a copy of `model` on `dataset`
    /// for every candidate mask set.
    pub fn new(model: SequenceClassifier, dataset: TaskDataset, options: TrainOptions) -> Self {
        Self {
            model,
            dataset,
            options,
        }
    }
}

impl AccuracyEvaluator for TrainedClassifierEvaluator {
    fn unpruned_score(&mut self) -> f64 {
        evaluate_classifier(&self.model, &self.dataset, None)
    }

    fn evaluate(&mut self, masks: &MaskSet, _spec: &PruningSpec) -> f64 {
        let mut candidate = self.model.clone();
        let report = train_classifier(&mut candidate, &self.dataset, &self.options, Some(masks));
        report.metric
    }

    fn task_name(&self) -> String {
        format!("{} (trained)", self.dataset.task())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_score_decreases_with_sparsity() {
        let profile = TaskProfile::wikitext2();
        let scores: Vec<f64> = [0.0, 0.4, 0.7, 0.9]
            .iter()
            .map(|&s| {
                profile.score(&PruningSpec {
                    sparsity: s,
                    level1_guided: true,
                    level2: Some(true),
                })
            })
            .collect();
        for w in scores.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn surrogate_matches_paper_operating_points_approximately() {
        let wikitext = TaskProfile::wikitext2();
        // BP only: 64.26% sparsity, 0.64% loss in the paper
        let bp_only = wikitext.score(&PruningSpec {
            sparsity: 0.6426,
            level1_guided: true,
            level2: None,
        });
        let loss = wikitext.base_score - bp_only;
        assert!((0.002..0.015).contains(&loss), "BP-only loss {loss}");
        // RT3: 75.24% sparsity, 0.95% loss
        let rt3 = wikitext.score(&PruningSpec {
            sparsity: 0.7524,
            level1_guided: true,
            level2: Some(true),
        });
        let loss = wikitext.base_score - rt3;
        assert!((0.004..0.025).contains(&loss), "RT3 loss {loss}");
    }

    #[test]
    fn random_pruning_loses_more_than_guided_pruning() {
        for profile in [
            TaskProfile::wikitext2(),
            TaskProfile::rte(),
            TaskProfile::stsb(),
        ] {
            let guided = profile.score(&PruningSpec {
                sparsity: 0.5,
                level1_guided: true,
                level2: Some(true),
            });
            let random1 = profile.score(&PruningSpec {
                sparsity: 0.5,
                level1_guided: false,
                level2: Some(true),
            });
            let random_both = profile.score(&PruningSpec {
                sparsity: 0.5,
                level1_guided: false,
                level2: Some(false),
            });
            assert!(guided > random1, "{}", profile.name);
            assert!(random1 > random_both, "{}", profile.name);
        }
    }

    #[test]
    fn glue_profiles_exist_for_all_tasks() {
        for task in GlueTask::all() {
            let p = TaskProfile::glue(task);
            assert!(p.base_score > 0.3 && p.base_score <= 1.0, "{}", p.name);
        }
    }

    #[test]
    fn surrogate_evaluator_uses_measured_mask_sparsity() {
        use rt3_tensor::Matrix;
        let mut eval = SurrogateEvaluator::new(TaskProfile::wikitext2());
        let mut masks = MaskSet::new();
        masks.insert("w", Matrix::zeros(4, 4)); // fully pruned
        let spec = PruningSpec {
            sparsity: 0.0, // contradicts the masks; the masks win
            level1_guided: true,
            level2: None,
        };
        let score = eval.evaluate(&masks, &spec);
        assert!(score < eval.unpruned_score());
    }
}
