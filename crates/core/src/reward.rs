//! The reward function of the RL search — Eq. (1) of the paper.

use crate::config::RewardParams;
use serde::{Deserialize, Serialize};

/// Which branch of Eq. (1) produced the reward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardCase {
    /// At least one sub-model missed the timing constraint: `R = -1 + R_runs`
    /// and no fine-tuning is performed.
    DeadlineMiss,
    /// All deadlines met and accuracy decreases monotonically towards lower
    /// V/F levels (`cond = True`).
    Monotone,
    /// All deadlines met but the accuracy ordering is violated
    /// (`cond = False`): the penalty is applied.
    PenaltyApplied,
}

/// Result of evaluating Eq. (1) for one episode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardBreakdown {
    /// The scalar reward handed to the controller.
    pub reward: f64,
    /// The weighted accuracy `A_w`.
    pub weighted_accuracy: f64,
    /// The normalised number-of-runs term `R_runs` in `[0, 1]`.
    pub runs_term: f64,
    /// Which branch of the formula applied.
    pub case: RewardCase,
}

/// Evaluates Eq. (1).
///
/// * `accuracies` — accuracy of each sub-model, ordered from the
///   highest-frequency level (M1) to the lowest (Mn);
/// * `latencies_ms` — predicted latency of each sub-model at its own level;
/// * `backbone_accuracy` — `A_o`, the accuracy of the Level-1 output model;
/// * `runs_term` — `R_runs`, already normalised to `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices have different lengths or do not match the number of
/// level weights in `params`.
pub fn compute_reward(
    params: &RewardParams,
    backbone_accuracy: f64,
    accuracies: &[f64],
    latencies_ms: &[f64],
    runs_term: f64,
    timing_constraint_ms: f64,
) -> RewardBreakdown {
    assert_eq!(accuracies.len(), latencies_ms.len(), "length mismatch");
    assert_eq!(
        accuracies.len(),
        params.level_weights.len(),
        "one accuracy per level weight"
    );
    let runs_term = runs_term.clamp(0.0, 1.0);
    let weighted_accuracy: f64 = accuracies
        .iter()
        .zip(&params.level_weights)
        .map(|(a, w)| a * w)
        .sum();
    // Case 1: any deadline miss.
    if latencies_ms.iter().any(|&l| l > timing_constraint_ms) {
        return RewardBreakdown {
            reward: -1.0 + runs_term,
            weighted_accuracy,
            runs_term,
            case: RewardCase::DeadlineMiss,
        };
    }
    // cond: accuracy must not increase towards lower V/F levels.
    let monotone = accuracies.windows(2).all(|w| w[0] >= w[1]);
    let denom = (backbone_accuracy - params.min_accuracy).max(1e-9);
    let normalised_accuracy = (weighted_accuracy - params.min_accuracy) / denom;
    let (reward, case) = if monotone {
        (normalised_accuracy + runs_term, RewardCase::Monotone)
    } else {
        (
            normalised_accuracy - params.penalty + runs_term,
            RewardCase::PenaltyApplied,
        )
    };
    RewardBreakdown {
        reward,
        weighted_accuracy,
        runs_term,
        case,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RewardParams {
        RewardParams::uniform(3, 0.8, 0.3)
    }

    #[test]
    fn deadline_miss_returns_negative_reward_without_accuracy_term() {
        let b = compute_reward(
            &params(),
            0.97,
            &[0.95, 0.94, 0.93],
            &[90.0, 120.0, 80.0],
            0.4,
            100.0,
        );
        assert_eq!(b.case, RewardCase::DeadlineMiss);
        assert!((b.reward - (-0.6)).abs() < 1e-9);
    }

    #[test]
    fn monotone_accuracies_get_the_full_reward() {
        let b = compute_reward(
            &params(),
            0.97,
            &[0.96, 0.95, 0.92],
            &[90.0, 85.0, 70.0],
            0.5,
            100.0,
        );
        assert_eq!(b.case, RewardCase::Monotone);
        assert!(b.reward > 0.5);
        assert!((b.weighted_accuracy - (0.96 + 0.95 + 0.92) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_accuracy_ordering_is_penalised() {
        let good = compute_reward(
            &params(),
            0.97,
            &[0.96, 0.95, 0.92],
            &[90.0, 85.0, 70.0],
            0.5,
            100.0,
        );
        let bad = compute_reward(
            &params(),
            0.97,
            &[0.92, 0.95, 0.96],
            &[90.0, 85.0, 70.0],
            0.5,
            100.0,
        );
        assert_eq!(bad.case, RewardCase::PenaltyApplied);
        assert!(bad.reward < good.reward);
        assert!((good.reward - bad.reward - 0.3).abs() < 0.1);
    }

    #[test]
    fn higher_runs_term_increases_reward_in_every_case() {
        for latencies in [&[90.0, 85.0, 70.0][..], &[90.0, 120.0, 70.0][..]] {
            let low = compute_reward(&params(), 0.97, &[0.95, 0.94, 0.93], latencies, 0.1, 100.0);
            let high = compute_reward(&params(), 0.97, &[0.95, 0.94, 0.93], latencies, 0.9, 100.0);
            assert!(high.reward > low.reward);
        }
    }

    #[test]
    fn runs_term_is_clamped_to_unit_interval() {
        let b = compute_reward(
            &params(),
            0.97,
            &[0.9, 0.9, 0.9],
            &[10.0, 10.0, 10.0],
            7.0,
            100.0,
        );
        assert!(b.runs_term <= 1.0);
    }
}
