//! Configuration of the end-to-end RT3 framework.

use rt3_hardware::{DvfsGovernor, PerformancePredictor};
use rt3_pruning::{BlockPruningConfig, PatternSpaceConfig};
use rt3_transformer::TransformerConfig;
use serde::{Deserialize, Serialize};

/// Parameters of the reward function, Eq. (1) of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardParams {
    /// Per-level accuracy weights `α_i` (must sum to 1; one per V/F level,
    /// ordered from the highest-frequency level to the lowest).
    pub level_weights: Vec<f64>,
    /// `A_m`: the pre-set lowest acceptable accuracy.
    pub min_accuracy: f64,
    /// `pen`: penalty applied when the accuracy ordering across levels is
    /// violated (`cond = False`).
    pub penalty: f64,
}

impl RewardParams {
    /// Equal weights over `levels` sub-models with a minimum accuracy floor.
    pub fn uniform(levels: usize, min_accuracy: f64, penalty: f64) -> Self {
        Self {
            level_weights: vec![1.0 / levels as f64; levels],
            min_accuracy,
            penalty,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.level_weights.is_empty() {
            return Err("at least one level weight is required".into());
        }
        let sum: f64 = self.level_weights.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("level weights must sum to 1, got {sum}"));
        }
        if !(0.0..1.0).contains(&self.min_accuracy) {
            return Err("min_accuracy must be in [0, 1)".into());
        }
        if self.penalty < 0.0 {
            return Err("penalty must be non-negative".into());
        }
        Ok(())
    }
}

/// Full configuration of an RT3 run: the problem definition of Section II-C
/// (timing constraint `T`, energy budget `E`, V/F levels `L`) plus the
/// hyper-parameters of both optimisation levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rt3Config {
    /// Real-time latency constraint `T` in milliseconds.
    pub timing_constraint_ms: f64,
    /// Battery energy budget `E` in joules.
    pub energy_budget_j: f64,
    /// The DVFS governor (selected V/F levels and step-down thresholds).
    pub governor: DvfsGovernor,
    /// Level-1 block-structured pruning configuration.
    pub block_pruning: BlockPruningConfig,
    /// Level-2 pattern search-space configuration.
    pub pattern_space: PatternSpaceConfig,
    /// Number of candidate sparsity ratios explored (`θ × N` in the paper);
    /// candidates are spread between the backbone sparsity and ~0.95.
    pub candidate_sparsities: usize,
    /// Number of RL episodes.
    pub episodes: usize,
    /// Reward parameters (Eq. 1).
    pub reward: RewardParams,
    /// Sequence length used by the latency predictor.
    pub seq_len: usize,
    /// Model shape used by the latency predictor (may be the full-size paper
    /// shape even when the trained model is smaller).
    pub workload_config: TransformerConfig,
    /// The latency predictor calibration (single core for the small
    /// Transformer, full cluster for DistilBERT-scale models).
    pub predictor: PerformancePredictor,
    /// Master RNG seed.
    pub seed: u64,
}

impl Rt3Config {
    /// A configuration mirroring the paper's WikiText-2 experiment at
    /// reduced model scale: three V/F levels {l3, l4, l6}, 104 ms timing
    /// constraint, and the full-size Transformer shape for latency
    /// prediction.
    pub fn wikitext_default() -> Self {
        let governor = DvfsGovernor::paper_default();
        let levels = governor.levels().len();
        Self {
            timing_constraint_ms: 104.0,
            energy_budget_j: 200_000.0,
            governor,
            block_pruning: BlockPruningConfig::default(),
            pattern_space: PatternSpaceConfig::default(),
            candidate_sparsities: 6,
            episodes: 30,
            reward: RewardParams::uniform(levels, 0.80, 0.3),
            seq_len: 24,
            workload_config: TransformerConfig {
                vocab_size: 28_785,
                hidden_dim: 800,
                num_heads: 8,
                ffn_dim: 1600,
                num_encoder_layers: 2,
                num_decoder_layers: 1,
                max_seq_len: 64,
                dropout: 0.0,
            },
            predictor: PerformancePredictor::cortex_a7(),
            seed: 0x52_54_33,
        }
    }

    /// A configuration mirroring the DistilBERT GLUE experiments (RTE: 200 ms
    /// constraint).
    pub fn distilbert_default(timing_constraint_ms: f64) -> Self {
        let mut cfg = Self::wikitext_default();
        cfg.timing_constraint_ms = timing_constraint_ms;
        cfg.workload_config = TransformerConfig::distilbert_full(30_522);
        cfg.seq_len = 64;
        cfg.predictor = PerformancePredictor::cortex_a7_cluster();
        cfg
    }

    /// A small configuration for tests: few episodes, few candidates.
    pub fn tiny_test() -> Self {
        let mut cfg = Self::wikitext_default();
        cfg.episodes = 6;
        cfg.candidate_sparsities = 3;
        cfg.pattern_space.pattern_size = 4;
        cfg.pattern_space.patterns_per_set = 2;
        cfg.workload_config = TransformerConfig::paper_transformer(256);
        cfg
    }

    /// Number of V/F levels (= number of sub-models searched).
    pub fn num_levels(&self) -> usize {
        self.governor.levels().len()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.timing_constraint_ms <= 0.0 {
            return Err("timing constraint must be positive".into());
        }
        if self.energy_budget_j <= 0.0 {
            return Err("energy budget must be positive".into());
        }
        if self.candidate_sparsities == 0 {
            return Err("at least one candidate sparsity is required".into());
        }
        if self.episodes == 0 {
            return Err("at least one episode is required".into());
        }
        if self.reward.level_weights.len() != self.num_levels() {
            return Err(format!(
                "{} level weights provided for {} V/F levels",
                self.reward.level_weights.len(),
                self.num_levels()
            ));
        }
        self.reward.validate()?;
        self.block_pruning.validate()?;
        self.pattern_space.validate()?;
        self.workload_config.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configurations_validate() {
        assert!(Rt3Config::wikitext_default().validate().is_ok());
        assert!(Rt3Config::distilbert_default(200.0).validate().is_ok());
        assert!(Rt3Config::tiny_test().validate().is_ok());
    }

    #[test]
    fn paper_workload_shape_matches_the_reported_dimensions() {
        let cfg = Rt3Config::wikitext_default();
        // the paper mentions weights as large as 28785 x 800
        assert_eq!(cfg.workload_config.vocab_size, 28_785);
        assert_eq!(cfg.workload_config.hidden_dim, 800);
        assert_eq!(cfg.num_levels(), 3);
    }

    #[test]
    fn reward_params_must_sum_to_one() {
        let mut p = RewardParams::uniform(3, 0.8, 0.3);
        assert!(p.validate().is_ok());
        p.level_weights[0] = 0.9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn mismatched_weight_count_is_rejected() {
        let mut cfg = Rt3Config::wikitext_default();
        cfg.reward.level_weights = vec![0.5, 0.5];
        assert!(cfg.validate().is_err());
    }
}
