//! Pareto-frontier extraction over the explored solutions (Fig. 3a).

use serde::{Deserialize, Serialize};

/// A point in the (weighted accuracy, number of runs) objective space.
pub trait ParetoPoint {
    /// First objective (maximised): weighted accuracy.
    fn accuracy_objective(&self) -> f64;
    /// Second objective (maximised): number of runs.
    fn runs_objective(&self) -> f64;
}

/// A plain objective pair, for callers that only have the two scalars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectivePair {
    /// Weighted accuracy.
    pub accuracy: f64,
    /// Number of runs.
    pub runs: f64,
}

impl ParetoPoint for ObjectivePair {
    fn accuracy_objective(&self) -> f64 {
        self.accuracy
    }

    fn runs_objective(&self) -> f64 {
        self.runs
    }
}

/// Returns the indices of the Pareto-optimal points (maximising both
/// objectives). A point is kept if no other point is at least as good in
/// both objectives and strictly better in one.
pub fn pareto_front_indices<P: ParetoPoint>(points: &[P]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let q_at_least_as_good = q.accuracy_objective() >= p.accuracy_objective()
                && q.runs_objective() >= p.runs_objective();
            let q_strictly_better = q.accuracy_objective() > p.accuracy_objective()
                || q.runs_objective() > p.runs_objective();
            if q_at_least_as_good && q_strictly_better {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

/// Returns `true` if every point of `inner` is dominated by or equal to some
/// point of `outer` — used to verify that the loose-constraint frontier
/// covers the tight-constraint frontier (Fig. 3a's observation).
pub fn frontier_covers<P: ParetoPoint, Q: ParetoPoint>(outer: &[P], inner: &[Q]) -> bool {
    inner.iter().all(|p| {
        outer.iter().any(|q| {
            q.accuracy_objective() >= p.accuracy_objective() - 1e-9
                && q.runs_objective() >= p.runs_objective() - 1e-9
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(accuracy: f64, runs: f64) -> ObjectivePair {
        ObjectivePair { accuracy, runs }
    }

    #[test]
    fn dominated_points_are_excluded() {
        let points = vec![pt(0.9, 1.0), pt(0.8, 2.0), pt(0.7, 1.5), pt(0.85, 0.5)];
        let front = pareto_front_indices(&points);
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn identical_points_are_both_kept() {
        let points = vec![pt(0.9, 1.0), pt(0.9, 1.0)];
        let front = pareto_front_indices(&points);
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn single_point_is_its_own_front() {
        let points = vec![pt(0.5, 0.5)];
        assert_eq!(pareto_front_indices(&points), vec![0]);
    }

    #[test]
    fn loose_frontier_covers_tight_frontier() {
        let loose = vec![pt(0.95, 2.0), pt(0.9, 3.0)];
        let tight = vec![pt(0.93, 1.8), pt(0.88, 2.5)];
        assert!(frontier_covers(&loose, &tight));
        assert!(!frontier_covers(&tight, &loose));
    }
}
