//! # rt3-core
//!
//! The RT3 framework — the primary contribution of "Dancing along Battery:
//! Enabling Transformer with Run-time Reconfigurability on Mobile Devices"
//! (DAC 2021) — wired end-to-end on top of the substrate crates:
//!
//! 1. **Level 1** ([`run_level1`]): block-structured pruning produces the
//!    fixed backbone model and its accuracy `A_o`.
//! 2. **Level 2** ([`build_search_space`], [`run_level2_search`]): an RNN
//!    RL controller picks one candidate pattern set per V/F level; latency,
//!    number-of-runs and accuracy feed the Eq. (1) reward
//!    ([`compute_reward`]); the explored solutions form the Fig. 3 Pareto
//!    frontier. The controller is one `rt3-search` [`Optimizer`] among
//!    several — [`run_level2_search_with`] runs the same search under any
//!    of them, and [`compare_optimizers`] races them at equal evaluation
//!    budget (Table III, generalised).
//! 3. **Joint training** ([`joint_train_lm`]): the shared backbone is
//!    fine-tuned under all selected pattern sets at once (Fig. 2), against
//!    the individually trained upper bound ([`individually_train_lm`]).
//! 4. **Baselines & experiments** ([`run_motivation_experiment`],
//!    [`run_ablation`], [`run_heuristic_baseline`], [`run_bp_evaluation`],
//!    [`switch_time_comparison`]) regenerate Tables II–IV and Figs. 3–5.
//!
//! Accuracy comes from an [`AccuracyEvaluator`]: either real fine-tuning of
//! the small Transformer models ([`TrainedLmEvaluator`]) or the calibrated
//! analytic surrogate ([`SurrogateEvaluator`]) used for full table sweeps
//! (see DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use rt3_core::{run_level1, Rt3Config, SurrogateEvaluator, TaskProfile};
//! use rt3_transformer::{TransformerConfig, TransformerLm};
//!
//! let model = TransformerLm::new(TransformerConfig::tiny(32), 0);
//! let config = Rt3Config::tiny_test();
//! let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
//! let backbone = run_level1(&model, &config, &mut evaluator);
//! assert!(backbone.sparsity > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod compare;
mod config;
mod evaluator;
mod joint;
mod pareto;
mod reward;
mod search;

pub use baselines::{
    paper_governor, run_ablation, run_bp_evaluation, run_heuristic_baseline,
    run_motivation_experiment, switch_time_comparison, AblationRow, AblationVariant,
    BpEvaluationRow, MotivationRow, SwitchComparison,
};
pub use compare::{compare_optimizers, ComparisonConfig, ComparisonReport, OptimizerReport};
pub use config::{RewardParams, Rt3Config};
pub use evaluator::{
    AccuracyEvaluator, PruningSpec, SurrogateEvaluator, TaskProfile, TrainedClassifierEvaluator,
    TrainedLmEvaluator,
};
pub use joint::{individually_train_lm, joint_train_lm, JointTrainingReport};
pub use pareto::{frontier_covers, pareto_front_indices, ObjectivePair, ParetoPoint};
pub use reward::{compute_reward, RewardBreakdown, RewardCase};
pub use search::{
    build_search_space, candidate_sparsities, constraint_guided_sparsities, evaluate_assignment,
    evaluate_assignment_with_reference, level2_assignment_space, level2_runs_reference, run_level1,
    run_level1_random, run_level2_search, run_level2_search_with, BackboneResult, SearchOutcome,
    SolutionPoint,
};
// the optimizer vocabulary Level-2 callers need, re-exported so downstream
// code can stay on the `rt3-core` facade
pub use rt3_search::{build_optimizer, AssignmentSpace, Optimizer, OptimizerKind};
