//! The two optimisation levels of RT3.
//!
//! * [`run_level1`] applies block-structured pruning to the model, evaluates
//!   the backbone and freezes it (the paper's component ①).
//! * [`run_level2_search`] runs the Level-2 search over the shrunken pattern
//!   search space (components ②–④): an optimizer proposes one candidate
//!   pattern set per V/F level, the performance predictor supplies latency
//!   and number-of-runs, the accuracy evaluator supplies the software
//!   metric, and Eq. (1) turns them into the reward. The paper's RL
//!   controller is the default optimizer; [`run_level2_search_with`] accepts
//!   any [`rt3_search::Optimizer`] (evolutionary, bandit, random,
//!   exhaustive) over the same candidate sets, driven through the
//!   budget-matched memoizing [`rt3_search::SearchDriver`].

use crate::config::Rt3Config;
use crate::evaluator::{AccuracyEvaluator, PruningSpec};
use crate::pareto::{pareto_front_indices, ParetoPoint};
use crate::reward::{compute_reward, RewardCase};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rt3_hardware::{number_of_runs, ModelWorkload, PowerModel};
use rt3_pruning::{
    block_prune_model, combined_masks_for_model, generate_pattern_space, random_block_prune_model,
    PatternSpace,
};
use rt3_search::{AssignmentSpace, DriverConfig, Fitness, Optimizer, Reinforce, SearchDriver};
use rt3_sparse::SparseFormat;
use rt3_transformer::{MaskSet, Model};
use serde::{Deserialize, Serialize};

/// Output of Level 1: the frozen backbone masks and their evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackboneResult {
    /// Per-parameter keep masks of the backbone model `C`.
    pub masks: MaskSet,
    /// Overall sparsity of the backbone.
    pub sparsity: f64,
    /// Task score of the backbone (`A_o` in Eq. (1)).
    pub accuracy: f64,
    /// Task score of the original, unpruned model.
    pub unpruned_accuracy: f64,
    /// Whether Level 1 used importance-guided BP (`true`) or the random rBP
    /// baseline (`false`).
    pub guided: bool,
}

/// Runs Level 1 (block-structured pruning) and evaluates the backbone.
pub fn run_level1<M: Model, E: AccuracyEvaluator>(
    model: &M,
    config: &Rt3Config,
    evaluator: &mut E,
) -> BackboneResult {
    let masks = block_prune_model(model, &config.block_pruning);
    let sparsity = masks.overall_sparsity();
    let unpruned_accuracy = evaluator.unpruned_score();
    let spec = PruningSpec {
        sparsity,
        level1_guided: true,
        level2: None,
    };
    let accuracy = evaluator.evaluate(&masks, &spec);
    BackboneResult {
        masks,
        sparsity,
        accuracy,
        unpruned_accuracy,
        guided: true,
    }
}

/// Runs the random Level-1 baseline (rBP) at approximately the same sparsity
/// as the guided pass would reach.
pub fn run_level1_random<M: Model, E: AccuracyEvaluator>(
    model: &M,
    config: &Rt3Config,
    evaluator: &mut E,
    prune_fraction: f64,
) -> BackboneResult {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5bad);
    let masks = random_block_prune_model(
        model,
        config.block_pruning.num_blocks,
        prune_fraction,
        &mut rng,
    );
    let sparsity = masks.overall_sparsity();
    let unpruned_accuracy = evaluator.unpruned_score();
    let spec = PruningSpec {
        sparsity,
        level1_guided: false,
        level2: None,
    };
    let accuracy = evaluator.evaluate(&masks, &spec);
    BackboneResult {
        masks,
        sparsity,
        accuracy,
        unpruned_accuracy,
        guided: false,
    }
}

/// One explored solution: a full assignment of pattern sets to V/F levels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolutionPoint {
    /// Chosen candidate index per level (ordered from the highest-frequency
    /// level, M1, to the lowest, Mn).
    pub actions: Vec<usize>,
    /// Combined (backbone ∧ pattern) sparsity per level.
    pub sparsities: Vec<f64>,
    /// Predicted latency per level in milliseconds.
    pub latencies_ms: Vec<f64>,
    /// Task score per level.
    pub accuracies: Vec<f64>,
    /// Weighted accuracy `A_w`.
    pub weighted_accuracy: f64,
    /// Total number of runs within the energy budget.
    pub number_of_runs: f64,
    /// Reward assigned by Eq. (1).
    pub reward: f64,
    /// Whether every level met the timing constraint.
    pub meets_constraint: bool,
}

impl ParetoPoint for SolutionPoint {
    fn accuracy_objective(&self) -> f64 {
        self.weighted_accuracy
    }

    fn runs_objective(&self) -> f64 {
        self.number_of_runs
    }
}

impl Fitness for SolutionPoint {
    fn reward(&self) -> f64 {
        self.reward
    }

    fn meets_constraint(&self) -> bool {
        self.meets_constraint
    }
}

/// Outcome of the Level-2 RL search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The best feasible solution found (highest reward among solutions that
    /// meet the timing constraint), if any.
    pub best: Option<SolutionPoint>,
    /// Every explored solution, in episode order.
    pub history: Vec<SolutionPoint>,
    /// Indices into `history` of the Pareto-optimal feasible solutions.
    pub pareto_indices: Vec<usize>,
    /// The candidate pattern-set sparsities that were available to the
    /// controller.
    pub candidate_sparsities: Vec<f64>,
}

impl SearchOutcome {
    /// The Pareto-optimal solutions themselves.
    pub fn pareto_front(&self) -> Vec<&SolutionPoint> {
        self.pareto_indices
            .iter()
            .map(|&i| &self.history[i])
            .collect()
    }
}

/// Evaluates one assignment of candidate pattern sets to V/F levels.
#[allow(clippy::too_many_arguments)]
fn evaluate_solution<M: Model, E: AccuracyEvaluator>(
    model: &M,
    backbone: &BackboneResult,
    space: &PatternSpace,
    config: &Rt3Config,
    evaluator: &mut E,
    actions: &[usize],
    level2_guided: bool,
    max_runs_reference: f64,
) -> SolutionPoint {
    let predictor = config.predictor;
    let power = PowerModel::cortex_a7();
    let prunable = model.prunable_parameter_names();
    // levels ordered high frequency -> low frequency (M1 first, as in the paper)
    let mut levels: Vec<_> = config.governor.levels().to_vec();
    levels.reverse();
    let mut sparsities = Vec::with_capacity(actions.len());
    let mut latencies = Vec::with_capacity(actions.len());
    let mut accuracies = Vec::with_capacity(actions.len());
    let mut total_runs = 0.0;
    let budget_per_level = config.energy_budget_j / actions.len() as f64;
    for (slot, (&action, level)) in actions.iter().zip(levels.iter()).enumerate() {
        let candidate = &space.candidates()[action];
        let masks = combined_masks_for_model(model, &backbone.masks, &prunable, &candidate.set);
        let sparsity = masks.overall_sparsity();
        let workload = ModelWorkload::from_config(
            &config.workload_config,
            sparsity,
            config.seq_len,
            SparseFormat::BlockPruned,
        );
        let latency = predictor.latency_ms(&workload, level);
        let energy = power.energy_per_inference_j(level, latency);
        total_runs += number_of_runs(budget_per_level, energy);
        let spec = PruningSpec {
            sparsity,
            level1_guided: backbone.guided,
            level2: Some(level2_guided),
        };
        let accuracy = evaluator.evaluate(&masks, &spec);
        let _ = slot;
        sparsities.push(sparsity);
        latencies.push(latency);
        accuracies.push(accuracy);
    }
    let runs_term = if max_runs_reference > 0.0 {
        total_runs / max_runs_reference
    } else {
        0.0
    };
    let breakdown = compute_reward(
        &config.reward,
        backbone.accuracy,
        &accuracies,
        &latencies,
        runs_term,
        config.timing_constraint_ms,
    );
    SolutionPoint {
        actions: actions.to_vec(),
        sparsities,
        latencies_ms: latencies,
        accuracies,
        weighted_accuracy: breakdown.weighted_accuracy,
        number_of_runs: total_runs,
        reward: breakdown.reward,
        meets_constraint: breakdown.case != RewardCase::DeadlineMiss,
    }
}

/// Upper bound on the number of runs: every level uses the sparsest
/// candidate. Used to normalise `R_runs` into `[0, 1]`.
fn max_runs_reference<M: Model>(
    model: &M,
    backbone: &BackboneResult,
    space: &PatternSpace,
    config: &Rt3Config,
) -> f64 {
    let predictor = config.predictor;
    let power = PowerModel::cortex_a7();
    let prunable = model.prunable_parameter_names();
    let sparsest = space
        .candidates()
        .last()
        .expect("pattern space is never empty");
    let masks = combined_masks_for_model(model, &backbone.masks, &prunable, &sparsest.set);
    let sparsity = masks.overall_sparsity();
    let mut levels: Vec<_> = config.governor.levels().to_vec();
    levels.reverse();
    let budget_per_level = config.energy_budget_j / levels.len() as f64;
    levels
        .iter()
        .map(|level| {
            let workload = ModelWorkload::from_config(
                &config.workload_config,
                sparsity,
                config.seq_len,
                SparseFormat::BlockPruned,
            );
            let latency = predictor.latency_ms(&workload, level);
            let energy = power.energy_per_inference_j(level, latency);
            number_of_runs(budget_per_level, energy)
        })
        .sum()
}

/// Generates a uniform candidate sparsity grid between the backbone sparsity
/// and 0.95 (a simple fallback used by tests and ablations).
pub fn candidate_sparsities(backbone_sparsity: f64, count: usize) -> Vec<f64> {
    assert!(count > 0, "at least one candidate sparsity is required");
    let low = backbone_sparsity.clamp(0.05, 0.9);
    let high = 0.95;
    (0..count)
        .map(|i| {
            if count == 1 {
                (low + high) / 2.0
            } else {
                low + (high - low) * i as f64 / (count - 1) as f64
            }
        })
        .collect()
}

/// The paper's constraint-guided candidate selection (component ③): for every
/// selected V/F level, find the smallest pattern sparsity whose predicted
/// latency meets the timing constraint `T` (starting from a nearly dense
/// pattern), then gradually tighten the constraint to fill
/// `config.candidate_sparsities` ratios in total.
pub fn constraint_guided_sparsities(config: &Rt3Config) -> Vec<f64> {
    let predictor = config.predictor;
    let low = 0.05;
    let latency_at = |sparsity: f64, level: &rt3_hardware::VfLevel| {
        let workload = ModelWorkload::from_config(
            &config.workload_config,
            sparsity,
            config.seq_len,
            SparseFormat::BlockPruned,
        );
        predictor.latency_ms(&workload, level)
    };
    // minimal sparsity meeting T at each level (bisection over [low, 0.97])
    let mut candidates: Vec<f64> = Vec::new();
    for level in config.governor.levels() {
        let needed = if latency_at(low, level) <= config.timing_constraint_ms {
            low
        } else if latency_at(0.97, level) > config.timing_constraint_ms {
            0.97
        } else {
            let (mut lo, mut hi) = (low, 0.97);
            for _ in 0..24 {
                let mid = 0.5 * (lo + hi);
                if latency_at(mid, level) <= config.timing_constraint_ms {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            hi
        };
        candidates.push(needed);
    }
    // gradually tighten: add slightly sparser variants until θ·N distinct
    // ratios exist
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-3);
    let mut step = 0.04;
    while candidates.len() < config.candidate_sparsities {
        let base = *candidates.last().expect("at least one candidate");
        let next = (base + step).min(0.97);
        if (next - base).abs() < 1e-3 {
            break;
        }
        candidates.push(next);
        step = 0.04;
    }
    candidates.truncate(config.candidate_sparsities.max(1));
    candidates
}

/// Builds the shrunken pattern search space for a backbone (component ③),
/// using the constraint-guided sparsity ratios.
pub fn build_search_space<M: Model>(
    model: &M,
    backbone: &BackboneResult,
    config: &Rt3Config,
) -> PatternSpace {
    let sparsities = constraint_guided_sparsities(config);
    let _ = backbone.sparsity;
    generate_pattern_space(model, &backbone.masks, &sparsities, &config.pattern_space)
}

/// The Level-2 assignment space of a pattern search space under `config`:
/// one decision per V/F level, each over the shared candidate sets.
pub fn level2_assignment_space(space: &PatternSpace, config: &Rt3Config) -> AssignmentSpace {
    AssignmentSpace::new(config.num_levels(), space.len())
}

/// Runs the Level-2 search (components ②–④) with the paper's RL controller
/// and returns the explored history, the Pareto frontier and the best
/// feasible solution.
///
/// This is a thin wrapper over [`run_level2_search_with`] with a
/// [`Reinforce`] optimizer at the controller hyper-parameters this function
/// has always used; `tests/golden_level2.rs` pins the outcome bit-identical
/// to the pre-`rt3-search` implementation.
pub fn run_level2_search<M: Model, E: AccuracyEvaluator>(
    model: &M,
    backbone: &BackboneResult,
    space: &PatternSpace,
    config: &Rt3Config,
    evaluator: &mut E,
) -> SearchOutcome {
    let mut optimizer = Reinforce::for_space(level2_assignment_space(space, config), config.seed);
    run_level2_search_with(&mut optimizer, model, backbone, space, config, evaluator)
}

/// Runs the Level-2 search with any [`Optimizer`] over the candidate
/// pattern sets.
///
/// The optimizer runs for exactly `config.episodes` proposals (the
/// episode-count semantics of the original RL loop) through the memoizing
/// [`SearchDriver`], followed by one evaluation of its final
/// recommendation; every proposal lands in the history whether or not it
/// repeats an assignment, so `history.len() == config.episodes + 1`
/// whenever the optimizer recommends something.
///
/// # Panics
///
/// Panics when the configuration is invalid or when the optimizer's
/// [`AssignmentSpace`] does not match `space`/`config`.
pub fn run_level2_search_with<M: Model, E: AccuracyEvaluator>(
    optimizer: &mut dyn Optimizer,
    model: &M,
    backbone: &BackboneResult,
    space: &PatternSpace,
    config: &Rt3Config,
    evaluator: &mut E,
) -> SearchOutcome {
    config.validate().expect("invalid RT3 configuration");
    assert_eq!(
        optimizer.space(),
        level2_assignment_space(space, config),
        "optimizer space does not match the pattern search space"
    );
    let reference = max_runs_reference(model, backbone, space, config);
    let driver = SearchDriver::new(DriverConfig::exact_proposals(config.episodes));
    let outcome = driver.run(optimizer, |actions| {
        evaluate_solution(
            model, backbone, space, config, evaluator, actions, true, reference,
        )
    });
    let history = outcome.history;
    let feasible: Vec<usize> = history
        .iter()
        .enumerate()
        .filter(|(_, p)| p.meets_constraint)
        .map(|(i, _)| i)
        .collect();
    let best = feasible
        .iter()
        .max_by(|&&a, &&b| {
            history[a]
                .reward
                .partial_cmp(&history[b].reward)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|&i| history[i].clone());
    let feasible_points: Vec<SolutionPoint> =
        feasible.iter().map(|&i| history[i].clone()).collect();
    let front_local = pareto_front_indices(&feasible_points);
    let pareto_indices: Vec<usize> = front_local.into_iter().map(|i| feasible[i]).collect();
    SearchOutcome {
        best,
        history,
        pareto_indices,
        candidate_sparsities: space.candidates().iter().map(|c| c.sparsity).collect(),
    }
}

/// The `R_runs` normalisation reference of a search space — invariant
/// across assignments, so callers evaluating many assignments (the
/// comparison harness, convergence benches) should compute it once and
/// pass it to [`evaluate_assignment_with_reference`].
pub fn level2_runs_reference<M: Model>(
    model: &M,
    backbone: &BackboneResult,
    space: &PatternSpace,
    config: &Rt3Config,
) -> f64 {
    max_runs_reference(model, backbone, space, config)
}

/// Evaluates a single externally chosen assignment (used by the heuristic and
/// random baselines); `level2_guided = false` marks the rPP baseline.
pub fn evaluate_assignment<M: Model, E: AccuracyEvaluator>(
    model: &M,
    backbone: &BackboneResult,
    space: &PatternSpace,
    config: &Rt3Config,
    evaluator: &mut E,
    actions: &[usize],
    level2_guided: bool,
) -> SolutionPoint {
    let reference = max_runs_reference(model, backbone, space, config);
    evaluate_assignment_with_reference(
        model,
        backbone,
        space,
        config,
        evaluator,
        actions,
        level2_guided,
        reference,
    )
}

/// Like [`evaluate_assignment`], but with a hoisted
/// [`level2_runs_reference`] so repeated evaluations skip the per-call
/// reference recomputation.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_assignment_with_reference<M: Model, E: AccuracyEvaluator>(
    model: &M,
    backbone: &BackboneResult,
    space: &PatternSpace,
    config: &Rt3Config,
    evaluator: &mut E,
    actions: &[usize],
    level2_guided: bool,
    reference: f64,
) -> SolutionPoint {
    evaluate_solution(
        model,
        backbone,
        space,
        config,
        evaluator,
        actions,
        level2_guided,
        reference,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{SurrogateEvaluator, TaskProfile};
    use rt3_transformer::{TransformerConfig, TransformerLm};

    fn setup() -> (TransformerLm, Rt3Config, SurrogateEvaluator) {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 7);
        let config = Rt3Config::tiny_test();
        let evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
        (model, config, evaluator)
    }

    #[test]
    fn level1_produces_a_sparse_backbone_with_small_accuracy_loss() {
        let (model, config, mut evaluator) = setup();
        let backbone = run_level1(&model, &config, &mut evaluator);
        assert!(backbone.sparsity > 0.3);
        assert!(backbone.accuracy < backbone.unpruned_accuracy);
        assert!(backbone.unpruned_accuracy - backbone.accuracy < 0.05);
    }

    #[test]
    fn random_level1_loses_more_accuracy_than_guided() {
        let (model, config, mut evaluator) = setup();
        let guided = run_level1(&model, &config, &mut evaluator);
        let random = run_level1_random(&model, &config, &mut evaluator, 0.5);
        assert!(random.accuracy < guided.accuracy);
    }

    #[test]
    fn candidate_sparsity_grid_is_increasing_and_bounded() {
        let grid = candidate_sparsities(0.6, 5);
        assert_eq!(grid.len(), 5);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert!(grid[0] >= 0.6 - 1e-9 && *grid.last().unwrap() <= 0.95 + 1e-9);
    }

    #[test]
    fn search_finds_a_feasible_solution_and_pareto_front() {
        let (model, config, mut evaluator) = setup();
        let backbone = run_level1(&model, &config, &mut evaluator);
        let space = build_search_space(&model, &backbone, &config);
        let outcome = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
        assert_eq!(outcome.history.len(), config.episodes + 1);
        let best = outcome
            .best
            .clone()
            .expect("a feasible solution should exist");
        assert!(best.meets_constraint);
        assert_eq!(best.accuracies.len(), config.num_levels());
        assert!(!outcome.pareto_indices.is_empty());
        // every pareto point is feasible and not dominated by the best
        for p in outcome.pareto_front() {
            assert!(p.meets_constraint);
        }
    }

    #[test]
    fn tighter_constraint_never_increases_the_best_accuracy() {
        let (model, mut config, mut evaluator) = setup();
        let backbone = run_level1(&model, &config, &mut evaluator);
        let space = build_search_space(&model, &backbone, &config);
        config.timing_constraint_ms = 120.0;
        let loose = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
        config.timing_constraint_ms = 60.0;
        let tight = run_level2_search(&model, &backbone, &space, &config, &mut evaluator);
        let loose_best = loose.best.map(|b| b.weighted_accuracy).unwrap_or(0.0);
        let tight_best = tight.best.map(|b| b.weighted_accuracy).unwrap_or(0.0);
        assert!(tight_best <= loose_best + 1e-6);
    }
}
