//! Golden regression suite for the Level-2 search: `run_level2_search` is
//! played with fixed seeds and its full [`SearchOutcome`] — every explored
//! assignment, every reward (compared as raw IEEE-754 bits), the Pareto
//! indices and the winning solution — is pinned against values captured
//! from the pre-`rt3-search` implementation, so routing the RL controller
//! through the `Optimizer` trait and the memoized `SearchDriver` cannot
//! drift the search by even one ULP.
//!
//! The values depend only on deterministic computation (the vendored
//! splitmix64 `StdRng` and IEEE-754 arithmetic), so they are stable across
//! machines. If an *intentional* behaviour change moves them, re-run with
//! `GOLDEN_PRINT=1` (`GOLDEN_PRINT=1 cargo test -p rt3-core --test
//! golden_level2 -- --nocapture`) and update the table — in the same change
//! that explains why.

use rt3_core::{
    build_search_space, run_level1, run_level2_search, Rt3Config, SearchOutcome,
    SurrogateEvaluator, TaskProfile,
};
use rt3_transformer::{TransformerConfig, TransformerLm};

/// One pinned history entry: the proposed assignment and the exact reward.
struct GoldenPoint {
    actions: &'static [usize],
    reward_bits: u64,
}

/// The pinned outcome of one seeded search.
struct GoldenRun {
    seed: u64,
    best_actions: &'static [usize],
    best_reward_bits: u64,
    pareto_indices: &'static [usize],
    history: &'static [GoldenPoint],
}

fn run_search(seed: u64) -> SearchOutcome {
    let model = TransformerLm::new(TransformerConfig::tiny(32), 13);
    let mut config = Rt3Config::tiny_test();
    config.seed = seed;
    let mut evaluator = SurrogateEvaluator::new(TaskProfile::wikitext2());
    let backbone = run_level1(&model, &config, &mut evaluator);
    let space = build_search_space(&model, &backbone, &config);
    run_level2_search(&model, &backbone, &space, &config, &mut evaluator)
}

fn print_run(seed: u64, outcome: &SearchOutcome) {
    let best = outcome.best.as_ref().expect("feasible best");
    println!("GoldenRun {{");
    println!("    seed: {seed:#x},");
    println!("    best_actions: &{:?},", best.actions);
    println!("    best_reward_bits: {:#018x},", best.reward.to_bits());
    println!("    pareto_indices: &{:?},", outcome.pareto_indices);
    println!("    history: &[");
    for p in &outcome.history {
        println!(
            "        GoldenPoint {{ actions: &{:?}, reward_bits: {:#018x} }},",
            p.actions,
            p.reward.to_bits()
        );
    }
    println!("    ],");
    println!("}},");
}

fn check_run(golden: &GoldenRun) {
    let outcome = run_search(golden.seed);
    if std::env::var("GOLDEN_PRINT").is_ok() {
        print_run(golden.seed, &outcome);
        return;
    }
    let seed = golden.seed;
    assert_eq!(
        outcome.history.len(),
        golden.history.len(),
        "seed {seed:#x}: history length"
    );
    for (i, (got, want)) in outcome.history.iter().zip(golden.history).enumerate() {
        assert_eq!(
            got.actions, want.actions,
            "seed {seed:#x}: actions of history[{i}]"
        );
        assert_eq!(
            got.reward.to_bits(),
            want.reward_bits,
            "seed {seed:#x}: reward bits of history[{i}] (got {})",
            got.reward
        );
    }
    assert_eq!(
        outcome.pareto_indices, golden.pareto_indices,
        "seed {seed:#x}: pareto indices"
    );
    let best = outcome.best.expect("a feasible solution should exist");
    assert_eq!(
        best.actions, golden.best_actions,
        "seed {seed:#x}: best actions"
    );
    assert_eq!(
        best.reward.to_bits(),
        golden.best_reward_bits,
        "seed {seed:#x}: best reward bits (got {})",
        best.reward
    );
    assert!(best.meets_constraint, "seed {seed:#x}: best is feasible");
}

#[test]
fn level2_search_reproduces_the_pre_refactor_outcome() {
    for golden in golden_runs() {
        check_run(&golden);
    }
}

fn golden_runs() -> Vec<GoldenRun> {
    vec![
        GoldenRun {
            seed: 0x0,
            best_actions: &[1, 0, 2],
            best_reward_bits: 0x3fffab9a24be3604,
            pareto_indices: &[0, 1, 2, 3, 4, 5, 6],
            history: &[
                GoldenPoint {
                    actions: &[1, 0, 2],
                    reward_bits: 0x3fffab9a24be3604,
                },
                GoldenPoint {
                    actions: &[2, 2, 0],
                    reward_bits: 0x3ffaf84e4fc9e123,
                },
                GoldenPoint {
                    actions: &[0, 1, 1],
                    reward_bits: 0x3fff7f8bd28a2434,
                },
                GoldenPoint {
                    actions: &[1, 1, 1],
                    reward_bits: 0x3fff7f8bd28a2434,
                },
                GoldenPoint {
                    actions: &[1, 1, 1],
                    reward_bits: 0x3fff7f8bd28a2434,
                },
                GoldenPoint {
                    actions: &[1, 1, 1],
                    reward_bits: 0x3fff7f8bd28a2434,
                },
                GoldenPoint {
                    actions: &[1, 1, 1],
                    reward_bits: 0x3fff7f8bd28a2434,
                },
            ],
        },
        // the default `Rt3Config` seed: duplicate proposals late in the run
        // exercise the memoized-cache path of the refactored driver
        GoldenRun {
            seed: 0x52_54_33,
            best_actions: &[2, 0, 2],
            best_reward_bits: 0x3ffafcd274cb4f30,
            pareto_indices: &[1, 2, 3, 4, 5, 6],
            history: &[
                GoldenPoint {
                    actions: &[2, 2, 0],
                    reward_bits: 0x3ffaf84e4fc9e123,
                },
                GoldenPoint {
                    actions: &[2, 0, 2],
                    reward_bits: 0x3ffafcd274cb4f30,
                },
                GoldenPoint {
                    actions: &[2, 0, 2],
                    reward_bits: 0x3ffafcd274cb4f30,
                },
                GoldenPoint {
                    actions: &[2, 1, 2],
                    reward_bits: 0x3ffafcd274cb4f30,
                },
                GoldenPoint {
                    actions: &[2, 0, 2],
                    reward_bits: 0x3ffafcd274cb4f30,
                },
                GoldenPoint {
                    actions: &[2, 0, 2],
                    reward_bits: 0x3ffafcd274cb4f30,
                },
                GoldenPoint {
                    actions: &[2, 0, 2],
                    reward_bits: 0x3ffafcd274cb4f30,
                },
            ],
        },
        // distinct assignments share one reward bit-pattern here, so `best`
        // pins the tie-breaking order of the feasible argmax (last maximum)
        GoldenRun {
            seed: 0xdac21,
            best_actions: &[1, 1, 1],
            best_reward_bits: 0x3fff7f8bd28a2434,
            pareto_indices: &[0, 1, 2, 3, 4, 6],
            history: &[
                GoldenPoint {
                    actions: &[0, 2, 0],
                    reward_bits: 0x3ffada4932effb2e,
                },
                GoldenPoint {
                    actions: &[0, 0, 0],
                    reward_bits: 0x3fff7f8bd28a2434,
                },
                GoldenPoint {
                    actions: &[1, 1, 1],
                    reward_bits: 0x3fff7f8bd28a2434,
                },
                GoldenPoint {
                    actions: &[1, 1, 1],
                    reward_bits: 0x3fff7f8bd28a2434,
                },
                GoldenPoint {
                    actions: &[0, 0, 0],
                    reward_bits: 0x3fff7f8bd28a2434,
                },
                GoldenPoint {
                    actions: &[2, 1, 1],
                    reward_bits: 0x3ffad0c422973d5f,
                },
                GoldenPoint {
                    actions: &[1, 1, 1],
                    reward_bits: 0x3fff7f8bd28a2434,
                },
            ],
        },
    ]
}
