//! Dense row-major `f32` matrix used throughout the RT3 reproduction.
//!
//! The matrix is deliberately simple: a contiguous `Vec<f32>` with explicit
//! `rows`/`cols`. All higher-level behaviour (autograd, sparsity, pruning)
//! is layered on top of this type.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use rt3_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.shape(), (2, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.iter_mut().for_each(|x| *x = value);
        m
    }

    /// Creates an identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Creates a matrix with elements drawn uniformly from `[-limit, limit]`.
    pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, limit: f32, rng: &mut R) -> Self {
        let mut m = Self::zeros(rows, cols);
        for x in m.data.iter_mut() {
            *x = rng.gen_range(-limit..=limit);
        }
        m
    }

    /// Creates a matrix using Xavier/Glorot uniform initialisation, the
    /// standard initialisation for the Transformer weights pruned by RT3.
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0_f32 / (rows + cols) as f32).sqrt();
        Self::uniform(rows, cols, limit, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise combination of two equally shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip<F: FnMut(f32, f32) -> f32>(&self, other: &Matrix, mut f: F) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Adds `other * scale` to `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * scale;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// l2 norm of row `r`.
    pub fn row_l2_norm(&self, r: usize) -> f32 {
        self.row(r).iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// l2 norm of column `c`.
    pub fn col_l2_norm(&self, c: usize) -> f32 {
        assert!(c < self.cols, "column out of bounds");
        (0..self.rows)
            .map(|r| {
                let v = self.get(r, c);
                v * v
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Fraction of elements that are exactly zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.count_nonzero() as f64 / self.data.len() as f64
    }

    /// Extracts a rectangular sub-matrix starting at `(row, col)` with the
    /// given shape, clamped to the matrix bounds (partial blocks at the edge
    /// are returned with their true, smaller shape).
    pub fn block(&self, row: usize, col: usize, height: usize, width: usize) -> Matrix {
        let h = height.min(self.rows.saturating_sub(row));
        let w = width.min(self.cols.saturating_sub(col));
        Matrix::from_fn(h, w, |i, j| self.get(row + i, col + j))
    }

    /// Writes `block` back into the matrix at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, row: usize, col: usize, block: &Matrix) {
        assert!(row + block.rows <= self.rows && col + block.cols <= self.cols);
        for i in 0..block.rows {
            for j in 0..block.cols {
                self.set(row + i, col + j, block.get(i, j));
            }
        }
    }

    /// Concatenates matrices horizontally (all must have equal row counts).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let rows = parts[0].rows;
        let total: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, total);
        let mut offset = 0;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols row mismatch");
            for i in 0..rows {
                for j in 0..p.cols {
                    out.set(i, offset + j, p.get(i, j));
                }
            }
            offset += p.cols;
        }
        out
    }

    /// Concatenates matrices vertically (all must have equal column counts).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows requires at least one part");
        let cols = parts[0].cols;
        let total: usize = parts.iter().map(|p| p.rows).sum();
        let mut out = Matrix::zeros(total, cols);
        let mut offset = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows column mismatch");
            for i in 0..p.rows {
                for j in 0..cols {
                    out.set(offset + i, j, p.get(i, j));
                }
            }
            offset += p.rows;
        }
        out
    }

    /// Columns `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "invalid column range");
        Matrix::from_fn(self.rows, end - start, |i, j| self.get(i, start + j))
    }

    /// Rows `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "invalid row range");
        Matrix::from_fn(end - start, self.cols, |i, j| self.get(start + i, j))
    }

    /// Index of the maximum element of row `r` (first occurrence on ties).
    pub fn row_argmax(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Returns `true` if all elements of two matrices differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                write!(f, "{:8.4}", self.get(i, j))?;
                if j + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.map(|x| x * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_has_expected_shape_and_values() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(5, 5, &mut rng);
        let id = Matrix::identity(5);
        assert!(m.matmul(&id).approx_eq(&m, 1e-6));
        assert!(id.matmul(&m).approx_eq(&m, 1e-6));
    }

    #[test]
    fn matmul_matches_hand_computed_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert!(t.transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn sparsity_counts_zero_fraction() {
        let mut m = Matrix::filled(2, 2, 1.0);
        assert_eq!(m.sparsity(), 0.0);
        m.set(0, 0, 0.0);
        m.set(1, 1, 0.0);
        assert!((m.sparsity() - 0.5).abs() < 1e-9);
        assert_eq!(m.count_nonzero(), 2);
    }

    #[test]
    fn row_and_col_norms() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((m.row_l2_norm(0) - 3.0).abs() < 1e-6);
        assert!((m.col_l2_norm(1) - 4.0).abs() < 1e-6);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn block_extraction_and_writeback_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::xavier(6, 6, &mut rng);
        let b = m.block(2, 2, 3, 3);
        assert_eq!(b.shape(), (3, 3));
        let mut copy = Matrix::zeros(6, 6);
        copy.set_block(2, 2, &b);
        assert_eq!(copy.get(3, 3), m.get(3, 3));
        // partial block at the edge is clamped
        let edge = m.block(5, 5, 3, 3);
        assert_eq!(edge.shape(), (1, 1));
    }

    #[test]
    fn concat_and_slice_cols_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0], vec![6.0]]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert!(c.slice_cols(0, 2).approx_eq(&a, 0.0));
        assert!(c.slice_cols(2, 3).approx_eq(&b, 0.0));
    }

    #[test]
    fn concat_rows_stacks_vertically() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.get(2, 1), 6.0);
        assert!(c.slice_rows(1, 3).approx_eq(&b, 0.0));
    }

    #[test]
    fn row_argmax_returns_first_maximum() {
        let m = Matrix::from_rows(&[vec![0.0, 3.0, 3.0, 1.0]]);
        assert_eq!(m.row_argmax(0), 1);
    }

    #[test]
    fn operator_overloads() {
        let a = Matrix::filled(2, 2, 2.0);
        let b = Matrix::filled(2, 2, 1.0);
        assert!((&a + &b).approx_eq(&Matrix::filled(2, 2, 3.0), 0.0));
        assert!((&a - &b).approx_eq(&Matrix::filled(2, 2, 1.0), 0.0));
        assert!((&a * 3.0).approx_eq(&Matrix::filled(2, 2, 6.0), 0.0));
    }

    #[test]
    fn matrix_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Matrix>();
    }
}
