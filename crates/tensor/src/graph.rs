//! Tape-based reverse-mode automatic differentiation.
//!
//! The RT3 framework fine-tunes a shared backbone Transformer under multiple
//! pruning masks (Fig. 2 of the paper). That joint training is expressed on
//! top of this small autograd engine: a [`Graph`] records every operation of
//! a forward pass, [`Graph::backward`] then propagates gradients from a
//! scalar loss back to every leaf.
//!
//! A [`Var`] is a cheap copyable handle into the graph's tape. Parameters are
//! introduced with [`Graph::leaf`], constants (inputs, masks) with
//! [`Graph::constant`]; after `backward` the gradient of any variable can be
//! read with [`Graph::grad`].
//!
//! # Examples
//!
//! ```
//! use rt3_tensor::{Graph, Matrix};
//!
//! let mut g = Graph::new();
//! let w = g.leaf(Matrix::from_rows(&[vec![2.0]]));
//! let x = g.constant(Matrix::from_rows(&[vec![3.0]]));
//! let y = g.mul(w, x);
//! let loss = g.sum_all(y);
//! g.backward(loss);
//! assert_eq!(g.grad(w).get(0, 0), 3.0);
//! ```

use crate::matrix::Matrix;
use rand::Rng;

/// Handle to a node in a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// Raw index of the node in the tape (useful for debugging).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Leaf parameter or constant input; no backward propagation beyond it.
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    MulConst(Var, Matrix),
    Scale(Var, f32),
    AddRowBroadcast(Var, Var),
    MatMul(Var, Var),
    Transpose(Var),
    Relu(Var),
    Gelu(Var),
    Tanh(Var),
    Sigmoid(Var),
    SoftmaxRows(Var),
    LayerNormRows {
        input: Var,
        gamma: Var,
        beta: Var,
        normalized: Matrix,
        inv_std: Vec<f32>,
    },
    Gather {
        table: Var,
        indices: Vec<usize>,
    },
    ConcatCols(Vec<Var>),
    SliceCols {
        input: Var,
        start: usize,
    },
    SliceRows {
        input: Var,
        start: usize,
    },
    SumAll(Var),
    MeanAll(Var),
    Dropout {
        input: Var,
        mask: Matrix,
    },
    CrossEntropyLogits {
        logits: Var,
        targets: Vec<usize>,
        softmax: Matrix,
    },
    MseLoss {
        pred: Var,
        target: Matrix,
    },
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    grad: Matrix,
    op: Op,
    requires_grad: bool,
}

/// Reverse-mode autodiff tape.
///
/// See the [module documentation](self) for an overview and example.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.nodes.push(Node {
            value,
            grad,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    /// Registers a trainable leaf (gradients will be accumulated for it).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Registers a constant input (no gradient is accumulated for it).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Value of a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of a variable, valid after [`Graph::backward`].
    pub fn grad(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].grad
    }

    /// Element-wise sum of two variables.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x + y);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Add(a, b), rg)
    }

    /// Element-wise difference `a - b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x - y);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Sub(a, b), rg)
    }

    /// Element-wise (Hadamard) product of two variables.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x * y);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Mul(a, b), rg)
    }

    /// Element-wise product with a constant matrix (used to apply pruning
    /// masks to weights: the mask never receives a gradient).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul_const(&mut self, a: Var, mask: &Matrix) -> Var {
        let value = self.nodes[a.0].value.zip(mask, |x, y| x * y);
        let rg = self.requires(a);
        self.push(value, Op::MulConst(a, mask.clone()), rg)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.nodes[a.0].value.map(|x| x * s);
        let rg = self.requires(a);
        self.push(value, Op::Scale(a, s), rg)
    }

    /// Adds a `1 x cols` bias row to every row of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x a.cols()`.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let am = &self.nodes[a.0].value;
        let bm = &self.nodes[bias.0].value;
        assert_eq!(bm.rows(), 1, "bias must be a single row");
        assert_eq!(bm.cols(), am.cols(), "bias width mismatch");
        let mut value = am.clone();
        for i in 0..value.rows() {
            for j in 0..value.cols() {
                let v = value.get(i, j) + bm.get(0, j);
                value.set(i, j, v);
            }
        }
        let rg = self.requires(a) || self.requires(bias);
        self.push(value, Op::AddRowBroadcast(a, bias), rg)
    }

    /// Matrix product `a * b`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::MatMul(a, b), rg)
    }

    /// Transpose of `a`.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.transpose();
        let rg = self.requires(a);
        self.push(value, Op::Transpose(a), rg)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| x.max(0.0));
        let rg = self.requires(a);
        self.push(value, Op::Relu(a), rg)
    }

    /// Gaussian error linear unit (tanh approximation), the Transformer FFN
    /// activation used by BERT-family models.
    pub fn gelu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(gelu_scalar);
        let rg = self.requires(a);
        self.push(value, Op::Gelu(a), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| x.tanh());
        let rg = self.requires(a);
        self.push(value, Op::Tanh(a), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        let rg = self.requires(a);
        self.push(value, Op::Sigmoid(a), rg)
    }

    /// Row-wise numerically stable softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let value = softmax_rows_matrix(&self.nodes[a.0].value);
        let rg = self.requires(a);
        self.push(value, Op::SoftmaxRows(a), rg)
    }

    /// Row-wise layer normalisation with learnable `gamma` and `beta`
    /// (each `1 x cols`).
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` are not `1 x a.cols()`.
    pub fn layer_norm_rows(&mut self, a: Var, gamma: Var, beta: Var) -> Var {
        const EPS: f32 = 1e-5;
        let input = self.nodes[a.0].value.clone();
        let gm = &self.nodes[gamma.0].value;
        let bm = &self.nodes[beta.0].value;
        assert_eq!(gm.rows(), 1, "gamma must be a single row");
        assert_eq!(bm.rows(), 1, "beta must be a single row");
        assert_eq!(gm.cols(), input.cols(), "gamma width mismatch");
        assert_eq!(bm.cols(), input.cols(), "beta width mismatch");
        let mut normalized = Matrix::zeros(input.rows(), input.cols());
        let mut inv_std = Vec::with_capacity(input.rows());
        let mut value = Matrix::zeros(input.rows(), input.cols());
        for i in 0..input.rows() {
            let row = input.row(i);
            let mean = row.iter().sum::<f32>() / row.len() as f32;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / row.len() as f32;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std.push(istd);
            for j in 0..input.cols() {
                let n = (input.get(i, j) - mean) * istd;
                normalized.set(i, j, n);
                value.set(i, j, n * gm.get(0, j) + bm.get(0, j));
            }
        }
        let rg = self.requires(a) || self.requires(gamma) || self.requires(beta);
        self.push(
            value,
            Op::LayerNormRows {
                input: a,
                gamma,
                beta,
                normalized,
                inv_std,
            },
            rg,
        )
    }

    /// Gathers rows of `table` at `indices` (embedding lookup).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&mut self, table: Var, indices: &[usize]) -> Var {
        let t = &self.nodes[table.0].value;
        for &i in indices {
            assert!(i < t.rows(), "gather index {} out of bounds", i);
        }
        let value = Matrix::from_fn(indices.len(), t.cols(), |i, j| t.get(indices[i], j));
        let rg = self.requires(table);
        self.push(
            value,
            Op::Gather {
                table,
                indices: indices.to_vec(),
            },
            rg,
        )
    }

    /// Horizontal concatenation of variables with equal row counts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let mats: Vec<&Matrix> = parts.iter().map(|v| &self.nodes[v.0].value).collect();
        let value = Matrix::concat_cols(&mats);
        let rg = parts.iter().any(|&p| self.requires(p));
        self.push(value, Op::ConcatCols(parts.to_vec()), rg)
    }

    /// Columns `[start, end)` of `a`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let value = self.nodes[a.0].value.slice_cols(start, end);
        let rg = self.requires(a);
        self.push(value, Op::SliceCols { input: a, start }, rg)
    }

    /// Rows `[start, end)` of `a`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn slice_rows(&mut self, a: Var, start: usize, end: usize) -> Var {
        let value = self.nodes[a.0].value.slice_rows(start, end);
        let rg = self.requires(a);
        self.push(value, Op::SliceRows { input: a, start }, rg)
    }

    /// Sum of all elements as a `1 x 1` matrix.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_rows(&[vec![self.nodes[a.0].value.sum()]]);
        let rg = self.requires(a);
        self.push(value, Op::SumAll(a), rg)
    }

    /// Mean of all elements as a `1 x 1` matrix.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_rows(&[vec![self.nodes[a.0].value.mean()]]);
        let rg = self.requires(a);
        self.push(value, Op::MeanAll(a), rg)
    }

    /// Inverted dropout with keep-probability `1 - p`; active only when
    /// `training` is `true`, otherwise the identity.
    pub fn dropout<R: Rng + ?Sized>(&mut self, a: Var, p: f32, training: bool, rng: &mut R) -> Var {
        if !training || p <= 0.0 {
            return a;
        }
        let keep = 1.0 - p;
        let src = &self.nodes[a.0].value;
        let mask = Matrix::from_fn(src.rows(), src.cols(), |_, _| {
            if rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let value = src.zip(&mask, |x, m| x * m);
        let rg = self.requires(a);
        self.push(value, Op::Dropout { input: a, mask }, rg)
    }

    /// Softmax cross-entropy between `logits` (one row per example) and the
    /// target class indices; returns the mean loss as a `1 x 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.rows()` or a target is out of range.
    pub fn cross_entropy_logits(&mut self, logits: Var, targets: &[usize]) -> Var {
        let lm = &self.nodes[logits.0].value;
        assert_eq!(targets.len(), lm.rows(), "one target per logits row");
        for &t in targets {
            assert!(t < lm.cols(), "target class {} out of range", t);
        }
        let softmax = softmax_rows_matrix(lm);
        let n = targets.len() as f32;
        let mut loss = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            loss -= softmax.get(i, t).max(1e-12).ln();
        }
        let value = Matrix::from_rows(&[vec![loss / n]]);
        let rg = self.requires(logits);
        self.push(
            value,
            Op::CrossEntropyLogits {
                logits,
                targets: targets.to_vec(),
                softmax,
            },
            rg,
        )
    }

    /// Mean-squared error between `pred` and a constant `target`; returns the
    /// mean loss as a `1 x 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse_loss(&mut self, pred: Var, target: &Matrix) -> Var {
        let pm = &self.nodes[pred.0].value;
        assert_eq!(pm.shape(), target.shape(), "mse shape mismatch");
        let n = pm.len() as f32;
        let loss = pm
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f32>()
            / n;
        let value = Matrix::from_rows(&[vec![loss]]);
        let rg = self.requires(pred);
        self.push(
            value,
            Op::MseLoss {
                pred,
                target: target.clone(),
            },
            rg,
        )
    }

    /// Scalar value of a `1 x 1` variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is not `1 x 1`.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar() requires a 1x1 variable");
        m.get(0, 0)
    }

    fn requires(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Runs reverse-mode differentiation from the scalar variable `loss`.
    ///
    /// All gradients stored in the tape are reset, then gradients are
    /// propagated from `loss` to every reachable node; read them with
    /// [`Graph::grad`]. To differentiate a weighted combination of several
    /// sub-losses (the multi-pattern joint loss of Fig. 2), combine them
    /// in-graph with [`Graph::scale`] and [`Graph::add`] and call `backward`
    /// once on the combined scalar.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `1 x 1` variable.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar loss"
        );
        for node in self.nodes.iter_mut() {
            node.grad.fill_zero();
        }
        self.nodes[loss.0].grad.set(0, 0, 1.0);
        for idx in (0..=loss.0).rev() {
            if !self.nodes[idx].requires_grad {
                continue;
            }
            let grad = self.nodes[idx].grad.clone();
            if grad.as_slice().iter().all(|&g| g == 0.0) {
                continue;
            }
            let op = self.nodes[idx].op.clone();
            match op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    self.accumulate(a, &grad);
                    self.accumulate(b, &grad);
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, &grad);
                    let neg = grad.map(|x| -x);
                    self.accumulate(b, &neg);
                }
                Op::Mul(a, b) => {
                    let ga = grad.zip(&self.nodes[b.0].value, |g, y| g * y);
                    let gb = grad.zip(&self.nodes[a.0].value, |g, x| g * x);
                    self.accumulate(a, &ga);
                    self.accumulate(b, &gb);
                }
                Op::MulConst(a, mask) => {
                    let ga = grad.zip(&mask, |g, m| g * m);
                    self.accumulate(a, &ga);
                }
                Op::Scale(a, s) => {
                    let ga = grad.map(|g| g * s);
                    self.accumulate(a, &ga);
                }
                Op::AddRowBroadcast(a, bias) => {
                    self.accumulate(a, &grad);
                    let mut gb = Matrix::zeros(1, grad.cols());
                    for i in 0..grad.rows() {
                        for j in 0..grad.cols() {
                            let v = gb.get(0, j) + grad.get(i, j);
                            gb.set(0, j, v);
                        }
                    }
                    self.accumulate(bias, &gb);
                }
                Op::MatMul(a, b) => {
                    let bt = self.nodes[b.0].value.transpose();
                    let at = self.nodes[a.0].value.transpose();
                    let ga = grad.matmul(&bt);
                    let gb = at.matmul(&grad);
                    self.accumulate(a, &ga);
                    self.accumulate(b, &gb);
                }
                Op::Transpose(a) => {
                    let ga = grad.transpose();
                    self.accumulate(a, &ga);
                }
                Op::Relu(a) => {
                    let ga = grad.zip(&self.nodes[a.0].value, |g, x| if x > 0.0 { g } else { 0.0 });
                    self.accumulate(a, &ga);
                }
                Op::Gelu(a) => {
                    let ga = grad.zip(&self.nodes[a.0].value, |g, x| g * gelu_grad_scalar(x));
                    self.accumulate(a, &ga);
                }
                Op::Tanh(a) => {
                    let ga = grad.zip(&self.nodes[idx].value, |g, y| g * (1.0 - y * y));
                    self.accumulate(a, &ga);
                }
                Op::Sigmoid(a) => {
                    let ga = grad.zip(&self.nodes[idx].value, |g, y| g * y * (1.0 - y));
                    self.accumulate(a, &ga);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[idx].value;
                    let mut ga = Matrix::zeros(y.rows(), y.cols());
                    for i in 0..y.rows() {
                        let dot: f32 = (0..y.cols()).map(|j| grad.get(i, j) * y.get(i, j)).sum();
                        for j in 0..y.cols() {
                            ga.set(i, j, y.get(i, j) * (grad.get(i, j) - dot));
                        }
                    }
                    self.accumulate(a, &ga);
                }
                Op::LayerNormRows {
                    input,
                    gamma,
                    beta,
                    normalized,
                    inv_std,
                } => {
                    let cols = normalized.cols() as f32;
                    let gm = self.nodes[gamma.0].value.clone();
                    let mut g_input = Matrix::zeros(normalized.rows(), normalized.cols());
                    let mut g_gamma = Matrix::zeros(1, normalized.cols());
                    let mut g_beta = Matrix::zeros(1, normalized.cols());
                    #[allow(clippy::needless_range_loop)]
                    for i in 0..normalized.rows() {
                        // dL/dxhat per element
                        let dxhat: Vec<f32> = (0..normalized.cols())
                            .map(|j| grad.get(i, j) * gm.get(0, j))
                            .collect();
                        let sum_dxhat: f32 = dxhat.iter().sum();
                        let sum_dxhat_xhat: f32 = dxhat
                            .iter()
                            .enumerate()
                            .map(|(j, d)| d * normalized.get(i, j))
                            .sum();
                        #[allow(clippy::needless_range_loop)]
                        for j in 0..normalized.cols() {
                            let xhat = normalized.get(i, j);
                            let gi = inv_std[i] / cols
                                * (cols * dxhat[j] - sum_dxhat - xhat * sum_dxhat_xhat);
                            g_input.set(i, j, gi);
                            let gg = g_gamma.get(0, j) + grad.get(i, j) * xhat;
                            g_gamma.set(0, j, gg);
                            let gb = g_beta.get(0, j) + grad.get(i, j);
                            g_beta.set(0, j, gb);
                        }
                    }
                    self.accumulate(input, &g_input);
                    self.accumulate(gamma, &g_gamma);
                    self.accumulate(beta, &g_beta);
                }
                Op::Gather { table, indices } => {
                    let t_shape = self.nodes[table.0].value.shape();
                    let mut gt = Matrix::zeros(t_shape.0, t_shape.1);
                    for (i, &row) in indices.iter().enumerate() {
                        for j in 0..t_shape.1 {
                            let v = gt.get(row, j) + grad.get(i, j);
                            gt.set(row, j, v);
                        }
                    }
                    self.accumulate(table, &gt);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let w = self.nodes[p.0].value.cols();
                        let gp = grad.slice_cols(offset, offset + w);
                        self.accumulate(p, &gp);
                        offset += w;
                    }
                }
                Op::SliceCols { input, start } => {
                    let shape = self.nodes[input.0].value.shape();
                    let mut gi = Matrix::zeros(shape.0, shape.1);
                    gi.set_block(0, start, &grad);
                    self.accumulate(input, &gi);
                }
                Op::SliceRows { input, start } => {
                    let shape = self.nodes[input.0].value.shape();
                    let mut gi = Matrix::zeros(shape.0, shape.1);
                    gi.set_block(start, 0, &grad);
                    self.accumulate(input, &gi);
                }
                Op::SumAll(a) => {
                    let g = grad.get(0, 0);
                    let shape = self.nodes[a.0].value.shape();
                    let ga = Matrix::filled(shape.0, shape.1, g);
                    self.accumulate(a, &ga);
                }
                Op::MeanAll(a) => {
                    let shape = self.nodes[a.0].value.shape();
                    let g = grad.get(0, 0) / (shape.0 * shape.1) as f32;
                    let ga = Matrix::filled(shape.0, shape.1, g);
                    self.accumulate(a, &ga);
                }
                Op::Dropout { input, mask } => {
                    let gi = grad.zip(&mask, |g, m| g * m);
                    self.accumulate(input, &gi);
                }
                Op::CrossEntropyLogits {
                    logits,
                    targets,
                    softmax,
                } => {
                    let g = grad.get(0, 0);
                    let n = targets.len() as f32;
                    let mut gl = softmax.clone();
                    for (i, &t) in targets.iter().enumerate() {
                        let v = gl.get(i, t) - 1.0;
                        gl.set(i, t, v);
                    }
                    gl.scale_assign(g / n);
                    self.accumulate(logits, &gl);
                }
                Op::MseLoss { pred, target } => {
                    let g = grad.get(0, 0);
                    let n = target.len() as f32;
                    let gp = self.nodes[pred.0]
                        .value
                        .zip(&target, |p, t| 2.0 * (p - t) * g / n);
                    self.accumulate(pred, &gp);
                }
            }
        }
    }

    fn accumulate(&mut self, v: Var, grad: &Matrix) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        self.nodes[v.0].grad.add_scaled_assign(grad, 1.0);
    }
}

/// Row-wise numerically stable softmax of a plain matrix (shared by the
/// forward op and the fused cross-entropy loss).
pub fn softmax_rows_matrix(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for i in 0..m.rows() {
        let row = m.row(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (j, e) in exps.iter().enumerate() {
            out.set(i, j, e / sum);
        }
    }
    out
}

fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_grad_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let inner = SQRT_2_OVER_PI * (x + 0.044715 * x * x * x);
    let tanh_inner = inner.tanh();
    let sech2 = 1.0 - tanh_inner * tanh_inner;
    0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_mul_gradients() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[vec![2.0, 3.0]]));
        let b = g.leaf(Matrix::from_rows(&[vec![4.0, 5.0]]));
        let s = g.mul(a, b);
        let loss = g.sum_all(s);
        g.backward(loss);
        assert_eq!(g.grad(a).row(0), &[4.0, 5.0]);
        assert_eq!(g.grad(b).row(0), &[2.0, 3.0]);
    }

    #[test]
    fn matmul_gradients_match_analytic_form() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = g.leaf(Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        g.backward(loss);
        // dL/dA = ones * B^T
        assert_eq!(g.grad(a).row(0), &[11.0, 15.0]);
        assert_eq!(g.grad(a).row(1), &[11.0, 15.0]);
        // dL/dB = A^T * ones
        assert_eq!(g.grad(b).row(0), &[4.0, 4.0]);
        assert_eq!(g.grad(b).row(1), &[6.0, 6.0]);
    }

    #[test]
    fn constants_do_not_accumulate_gradients() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::filled(1, 2, 2.0));
        let mask = g.constant(Matrix::from_rows(&[vec![1.0, 0.0]]));
        let masked = g.mul(a, mask);
        let loss = g.sum_all(masked);
        g.backward(loss);
        assert_eq!(g.grad(a).row(0), &[1.0, 0.0]);
        assert!(g.grad(mask).as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mask_through_mul_const_blocks_gradient() {
        let mut g = Graph::new();
        let w = g.leaf(Matrix::filled(2, 2, 3.0));
        let mask = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let masked = g.mul_const(w, &mask);
        let loss = g.sum_all(masked);
        g.backward(loss);
        assert_eq!(g.grad(w).get(0, 0), 1.0);
        assert_eq!(g.grad(w).get(0, 1), 0.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![-1.0, 0.0, 1.0],
        ]));
        let s = g.softmax_rows(a);
        for i in 0..2 {
            let sum: f32 = g.value(s).row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_decreases_for_correct_logit() {
        let mut g = Graph::new();
        let good = g.leaf(Matrix::from_rows(&[vec![5.0, 0.0]]));
        let l_good = g.cross_entropy_logits(good, &[0]);
        let bad = g.leaf(Matrix::from_rows(&[vec![0.0, 5.0]]));
        let l_bad = g.cross_entropy_logits(bad, &[0]);
        assert!(g.scalar(l_good) < g.scalar(l_bad));
    }

    #[test]
    fn gather_rows_scatters_gradient_back() {
        let mut g = Graph::new();
        let table = g.leaf(Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 2.0],
        ]));
        let e = g.gather_rows(table, &[2, 2, 0]);
        let loss = g.sum_all(e);
        g.backward(loss);
        assert_eq!(g.grad(table).row(2), &[2.0, 2.0]);
        assert_eq!(g.grad(table).row(0), &[1.0, 1.0]);
        assert_eq!(g.grad(table).row(1), &[0.0, 0.0]);
    }

    #[test]
    fn layer_norm_output_is_normalised() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]));
        let gamma = g.leaf(Matrix::filled(1, 4, 1.0));
        let beta = g.leaf(Matrix::zeros(1, 4));
        let y = g.layer_norm_rows(x, gamma, beta);
        let row = g.value(y).row(0);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-2);
    }

    #[test]
    fn dropout_disabled_in_eval_mode() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = Graph::new();
        let x = g.leaf(Matrix::filled(4, 4, 1.0));
        let y = g.dropout(x, 0.5, false, &mut rng);
        assert_eq!(x.index(), y.index());
    }

    #[test]
    fn mse_loss_gradient_points_towards_target() {
        let mut g = Graph::new();
        let pred = g.leaf(Matrix::from_rows(&[vec![2.0]]));
        let target = Matrix::from_rows(&[vec![5.0]]);
        let loss = g.mse_loss(pred, &target);
        g.backward(loss);
        assert!(g.grad(pred).get(0, 0) < 0.0);
        assert!((g.scalar(loss) - 9.0).abs() < 1e-5);
    }

    #[test]
    fn weighted_sum_of_sub_losses_accumulates_in_graph() {
        // Mirrors the weighted multi-pattern-set loss of Fig. 2: the total
        // loss is built in-graph and differentiated once.
        let mut g = Graph::new();
        let w = g.leaf(Matrix::from_rows(&[vec![1.0]]));
        let x = g.constant(Matrix::from_rows(&[vec![2.0]]));
        let y1 = g.mul(w, x);
        let l1 = g.sum_all(y1);
        let y2 = g.mul(w, x);
        let l2 = g.sum_all(y2);
        let l1_weighted = g.scale(l1, 0.5);
        let l2_weighted = g.scale(l2, 0.5);
        let total = g.add(l1_weighted, l2_weighted);
        g.backward(total);
        assert_eq!(g.grad(w).get(0, 0), 2.0);
    }

    #[test]
    fn second_backward_resets_previous_gradients() {
        let mut g = Graph::new();
        let w = g.leaf(Matrix::from_rows(&[vec![1.0]]));
        let x = g.constant(Matrix::from_rows(&[vec![2.0]]));
        let y = g.mul(w, x);
        let l = g.sum_all(y);
        g.backward(l);
        g.backward(l);
        assert_eq!(g.grad(w).get(0, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "backward requires a scalar loss")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::zeros(2, 2));
        g.backward(a);
    }
}
