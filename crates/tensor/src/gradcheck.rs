//! Finite-difference gradient checking utilities.
//!
//! Used by the test suites of `rt3-tensor` and `rt3-transformer` to verify
//! that every analytic backward rule in [`crate::Graph`] matches a central
//! finite-difference estimate.

use crate::matrix::Matrix;

/// Result of comparing an analytic gradient against a numeric estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference over all elements.
    pub max_abs_error: f32,
    /// Largest relative difference over all elements.
    pub max_rel_error: f32,
    /// Number of elements compared.
    pub elements: usize,
}

impl GradCheckReport {
    /// Returns `true` if both error measures are under `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_error <= tol || self.max_rel_error <= tol
    }
}

/// Estimates `d f / d param` with central differences and compares against
/// `analytic`.
///
/// `f` must be a deterministic scalar function of the parameter matrix.
/// `epsilon` is the perturbation size (1e-2 to 1e-3 works well for `f32`).
///
/// # Panics
///
/// Panics if `analytic` and `param` shapes differ.
pub fn check_gradient<F>(
    param: &Matrix,
    analytic: &Matrix,
    epsilon: f32,
    mut f: F,
) -> GradCheckReport
where
    F: FnMut(&Matrix) -> f32,
{
    assert_eq!(
        param.shape(),
        analytic.shape(),
        "analytic gradient shape mismatch"
    );
    let mut max_abs: f32 = 0.0;
    let mut max_rel: f32 = 0.0;
    for i in 0..param.rows() {
        for j in 0..param.cols() {
            let mut plus = param.clone();
            plus.set(i, j, param.get(i, j) + epsilon);
            let mut minus = param.clone();
            minus.set(i, j, param.get(i, j) - epsilon);
            let numeric = (f(&plus) - f(&minus)) / (2.0 * epsilon);
            let a = analytic.get(i, j);
            let abs = (numeric - a).abs();
            let rel = abs / numeric.abs().max(a.abs()).max(1e-6);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    GradCheckReport {
        max_abs_error: max_abs,
        max_rel_error: max_rel,
        elements: param.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_op<F>(rows: usize, cols: usize, tol: f32, build: F)
    where
        F: Fn(&mut Graph, crate::graph::Var) -> crate::graph::Var,
    {
        let mut rng = StdRng::seed_from_u64(42);
        let param = Matrix::xavier(rows, cols, &mut rng);
        let mut g = Graph::new();
        let w = g.leaf(param.clone());
        let loss = build(&mut g, w);
        g.backward(loss);
        let analytic = g.grad(w).clone();
        let report = check_gradient(&param, &analytic, 1e-2, |p| {
            let mut g = Graph::new();
            let w = g.leaf(p.clone());
            let loss = build(&mut g, w);
            g.scalar(loss)
        });
        assert!(report.passes(tol), "gradient check failed: {:?}", report);
    }

    #[test]
    fn relu_gradient_matches_finite_differences() {
        check_op(3, 4, 1e-2, |g, w| {
            let y = g.relu(w);
            g.sum_all(y)
        });
    }

    #[test]
    fn gelu_gradient_matches_finite_differences() {
        check_op(3, 4, 2e-2, |g, w| {
            let y = g.gelu(w);
            g.sum_all(y)
        });
    }

    #[test]
    fn tanh_and_sigmoid_gradients_match_finite_differences() {
        check_op(2, 5, 1e-2, |g, w| {
            let t = g.tanh(w);
            let s = g.sigmoid(t);
            g.sum_all(s)
        });
    }

    #[test]
    fn softmax_cross_entropy_gradient_matches_finite_differences() {
        check_op(4, 5, 1e-2, |g, w| g.cross_entropy_logits(w, &[0, 2, 4, 1]));
    }

    #[test]
    fn matmul_chain_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let other = Matrix::xavier(4, 3, &mut rng);
        let other2 = other.clone();
        let mut rng2 = StdRng::seed_from_u64(42);
        let param = Matrix::xavier(3, 4, &mut rng2);
        let mut g = Graph::new();
        let w = g.leaf(param.clone());
        let c = g.constant(other.clone());
        let y = g.matmul(w, c);
        let loss = g.mean_all(y);
        g.backward(loss);
        let analytic = g.grad(w).clone();
        let report = check_gradient(&param, &analytic, 1e-2, |p| {
            let mut g = Graph::new();
            let w = g.leaf(p.clone());
            let c = g.constant(other2.clone());
            let y = g.matmul(w, c);
            let loss = g.mean_all(y);
            g.scalar(loss)
        });
        assert!(report.passes(1e-2), "{:?}", report);
    }

    #[test]
    fn layer_norm_gradient_matches_finite_differences() {
        check_op(2, 6, 3e-2, |g, w| {
            let gamma = g.constant(Matrix::filled(1, 6, 1.2));
            let beta = g.constant(Matrix::filled(1, 6, 0.1));
            let y = g.layer_norm_rows(w, gamma, beta);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        });
    }

    #[test]
    fn softmax_attention_like_composition_matches_finite_differences() {
        check_op(3, 3, 2e-2, |g, w| {
            let t = g.transpose(w);
            let scores = g.matmul(w, t);
            let scaled = g.scale(scores, 0.57);
            let attn = g.softmax_rows(scaled);
            let out = g.matmul(attn, w);
            let sq = g.mul(out, out);
            g.mean_all(sq)
        });
    }
}
