//! Gradient-descent optimizers used to train and fine-tune the Transformer
//! backbone during RT3's joint training (component ④ of the framework).

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A gradient-based parameter update rule.
///
/// Each trainable matrix is identified by a stable `slot` index chosen by the
/// caller (e.g. the position of the parameter in the model's parameter list),
/// so optimizers can keep per-parameter state such as momentum buffers.
///
/// # Examples
///
/// ```
/// use rt3_tensor::{Matrix, Optimizer, Sgd};
///
/// let mut opt = Sgd::new(0.1);
/// let mut w = Matrix::from_rows(&[vec![1.0]]);
/// let grad = Matrix::from_rows(&[vec![2.0]]);
/// opt.step(0, &mut w, &grad);
/// assert!((w.get(0, 0) - 0.8).abs() < 1e-6);
/// ```
pub trait Optimizer {
    /// Applies one update to `param` given its gradient.
    ///
    /// # Panics
    ///
    /// Implementations panic if `param` and `grad` shapes differ.
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (used by warm-up / decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and no momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// Creates SGD with momentum in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive or `momentum` is out of range.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "optimizer shape mismatch");
        if self.momentum == 0.0 {
            param.add_scaled_assign(grad, -self.lr);
            return;
        }
        let v = self
            .velocity
            .entry(slot)
            .or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        v.scale_assign(self.momentum);
        v.add_scaled_assign(grad, 1.0);
        param.add_scaled_assign(v, -self.lr);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba), the fine-tuning optimizer used for the
/// Transformer experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step_count: HashMap<usize, u64>,
    first_moment: HashMap<usize, Matrix>,
    second_moment: HashMap<usize, Matrix>,
}

impl Adam {
    /// Creates Adam with the standard `beta1 = 0.9`, `beta2 = 0.999`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Creates Adam with explicit betas.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or the betas are out of `[0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            step_count: HashMap::new(),
            first_moment: HashMap::new(),
            second_moment: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "optimizer shape mismatch");
        let t = self.step_count.entry(slot).or_insert(0);
        *t += 1;
        let t = *t;
        let m = self
            .first_moment
            .entry(slot)
            .or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        m.scale_assign(self.beta1);
        m.add_scaled_assign(grad, 1.0 - self.beta1);
        let v = self
            .second_moment
            .entry(slot)
            .or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        let grad_sq = grad.map(|g| g * g);
        v.scale_assign(self.beta2);
        v.add_scaled_assign(&grad_sq, 1.0 - self.beta2);

        let m = &self.first_moment[&slot];
        let v = &self.second_moment[&slot];
        let bias1 = 1.0 - self.beta1.powi(t as i32);
        let bias2 = 1.0 - self.beta2.powi(t as i32);
        let lr = self.lr;
        let eps = self.eps;
        let update = m.zip(v, |mi, vi| {
            let m_hat = mi / bias1;
            let v_hat = vi / bias2;
            lr * m_hat / (v_hat.sqrt() + eps)
        });
        param.add_scaled_assign(&update, -1.0);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut opt = Sgd::new(0.5);
        let mut w = Matrix::from_rows(&[vec![1.0, -1.0]]);
        let g = Matrix::from_rows(&[vec![1.0, -1.0]]);
        opt.step(0, &mut w, &g);
        assert_eq!(w.row(0), &[0.5, -0.5]);
    }

    #[test]
    fn sgd_momentum_accelerates_repeated_direction() {
        let mut plain = Sgd::new(0.1);
        let mut momentum = Sgd::with_momentum(0.1, 0.9);
        let g = Matrix::from_rows(&[vec![1.0]]);
        let mut w_plain = Matrix::from_rows(&[vec![0.0]]);
        let mut w_mom = Matrix::from_rows(&[vec![0.0]]);
        for _ in 0..5 {
            plain.step(0, &mut w_plain, &g);
            momentum.step(0, &mut w_mom, &g);
        }
        assert!(w_mom.get(0, 0) < w_plain.get(0, 0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimise f(w) = (w - 3)^2
        let mut opt = Adam::new(0.1);
        let mut w = Matrix::from_rows(&[vec![0.0]]);
        for _ in 0..500 {
            let grad = Matrix::from_rows(&[vec![2.0 * (w.get(0, 0) - 3.0)]]);
            opt.step(0, &mut w, &grad);
        }
        assert!((w.get(0, 0) - 3.0).abs() < 0.05, "w = {}", w.get(0, 0));
    }

    #[test]
    fn learning_rate_can_be_rescheduled() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn sgd_rejects_non_positive_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "optimizer shape mismatch")]
    fn step_rejects_mismatched_shapes() {
        let mut opt = Sgd::new(0.1);
        let mut w = Matrix::zeros(2, 2);
        let g = Matrix::zeros(1, 2);
        opt.step(0, &mut w, &g);
    }
}
