//! # rt3-tensor
//!
//! Dense matrix type, reverse-mode autograd and optimizers — the numerical
//! substrate under the RT3 reproduction ("Dancing along Battery: Enabling
//! Transformer with Run-time Reconfigurability on Mobile Devices", DAC 2021).
//!
//! The paper prunes and fine-tunes Transformer weight matrices; everything in
//! this crate exists so those operations can run without any external deep
//! learning framework:
//!
//! * [`Matrix`] — dense row-major `f32` matrix with the block/row/column
//!   accessors the pruning algorithms need.
//! * [`Graph`] / [`Var`] — tape-based automatic differentiation for training
//!   the backbone model under weight masks.
//! * [`Sgd`] / [`Adam`] — optimizers used during fine-tuning.
//! * [`check_gradient`] — finite-difference verification used by tests.
//!
//! # Examples
//!
//! Train a one-parameter model with the full stack:
//!
//! ```
//! use rt3_tensor::{Adam, Graph, Matrix, Optimizer};
//!
//! let mut w = Matrix::from_rows(&[vec![0.0]]);
//! let mut opt = Adam::new(0.05);
//! for _ in 0..200 {
//!     let mut g = Graph::new();
//!     let wv = g.leaf(w.clone());
//!     let target = Matrix::from_rows(&[vec![2.0]]);
//!     let loss = g.mse_loss(wv, &target);
//!     g.backward(loss);
//!     let grad = g.grad(wv).clone();
//!     opt.step(0, &mut w, &grad);
//! }
//! assert!((w.get(0, 0) - 2.0).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gradcheck;
mod graph;
mod matrix;
mod optim;

pub use gradcheck::{check_gradient, GradCheckReport};
pub use graph::{softmax_rows_matrix, Graph, Var};
pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};
