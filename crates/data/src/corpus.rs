//! Synthetic "WikiText-like" language-modelling corpus.
//!
//! The paper evaluates the small Transformer on WikiText-2 next-word
//! prediction. That dataset is not redistributable here, so this module
//! generates a deterministic Markov-chain corpus over a synthetic
//! vocabulary: token transition probabilities are sparse and skewed, which
//! gives the corpus learnable local structure (a trained model beats the
//! unigram baseline by a wide margin) while remaining fully reproducible
//! from a seed. See DESIGN.md for the substitution rationale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the synthetic corpus generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Vocabulary size (including the `<unk>` token at id 0).
    pub vocab_size: usize,
    /// Number of training tokens to generate.
    pub train_tokens: usize,
    /// Number of validation tokens to generate.
    pub valid_tokens: usize,
    /// Number of successor tokens each token can transition to.
    pub branching: usize,
    /// RNG seed controlling both the chain and the sampled text.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            vocab_size: 256,
            train_tokens: 20_000,
            valid_tokens: 2_000,
            branching: 4,
            seed: 0x5eed,
        }
    }
}

impl CorpusConfig {
    /// A small configuration suitable for unit tests.
    pub fn tiny() -> Self {
        Self {
            vocab_size: 48,
            train_tokens: 2_000,
            valid_tokens: 400,
            branching: 3,
            seed: 7,
        }
    }
}

/// A generated language-modelling corpus: train/validation token streams over
/// a shared synthetic vocabulary.
///
/// # Examples
///
/// ```
/// use rt3_data::{CorpusConfig, MarkovCorpus};
///
/// let corpus = MarkovCorpus::generate(&CorpusConfig::tiny());
/// assert_eq!(corpus.train().len(), 2_000);
/// assert!(corpus.train().iter().all(|&t| t < corpus.vocab_size()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovCorpus {
    vocab_size: usize,
    train: Vec<usize>,
    valid: Vec<usize>,
}

impl MarkovCorpus {
    /// Generates a corpus from the configuration. The same configuration
    /// always produces the same corpus.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size < 2` or `branching == 0`.
    pub fn generate(config: &CorpusConfig) -> Self {
        assert!(
            config.vocab_size >= 2,
            "vocabulary must have at least 2 tokens"
        );
        assert!(config.branching > 0, "branching must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Build a sparse, skewed transition table: each token can be followed
        // by `branching` successors with geometric-ish probabilities.
        let branching = config.branching.min(config.vocab_size - 1);
        let transitions: Vec<Vec<(usize, f64)>> = (0..config.vocab_size)
            .map(|_| {
                let mut succ = Vec::with_capacity(branching);
                let mut remaining = 1.0;
                for k in 0..branching {
                    let next = rng.gen_range(0..config.vocab_size);
                    let p = if k + 1 == branching {
                        remaining
                    } else {
                        remaining * rng.gen_range(0.4..0.8)
                    };
                    succ.push((next, p));
                    remaining -= p;
                }
                succ
            })
            .collect();
        let sample_stream = |len: usize, rng: &mut StdRng| -> Vec<usize> {
            let mut out = Vec::with_capacity(len);
            let mut current = rng.gen_range(0..config.vocab_size);
            for _ in 0..len {
                out.push(current);
                let r: f64 = rng.gen();
                let mut acc = 0.0;
                let mut next = transitions[current][0].0;
                for &(tok, p) in &transitions[current] {
                    acc += p;
                    if r <= acc {
                        next = tok;
                        break;
                    }
                }
                current = next;
            }
            out
        };
        let train = sample_stream(config.train_tokens, &mut rng);
        let valid = sample_stream(config.valid_tokens, &mut rng);
        Self {
            vocab_size: config.vocab_size,
            train,
            valid,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Training token stream.
    pub fn train(&self) -> &[usize] {
        &self.train
    }

    /// Validation token stream.
    pub fn valid(&self) -> &[usize] {
        &self.valid
    }

    /// Accuracy of always predicting the most frequent token — the unigram
    /// floor a trained model must beat.
    pub fn unigram_baseline_accuracy(&self) -> f64 {
        let mut counts = vec![0usize; self.vocab_size];
        for &t in &self.valid {
            counts[t] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        if self.valid.is_empty() {
            0.0
        } else {
            max as f64 / self.valid.len() as f64
        }
    }
}

/// A batch of language-modelling sequences: inputs and next-token targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LmBatch {
    /// Input token sequences, each of the configured sequence length.
    pub inputs: Vec<Vec<usize>>,
    /// Target token sequences (inputs shifted by one).
    pub targets: Vec<Vec<usize>>,
}

impl LmBatch {
    /// Number of sequences in the batch.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` if the batch holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Splits a token stream into fixed-length language-modelling batches.
///
/// Sequences are non-overlapping windows of `seq_len + 1` tokens; the first
/// `seq_len` are the input and the last `seq_len` the target. Any remainder
/// shorter than `seq_len + 1` is dropped.
///
/// # Panics
///
/// Panics if `seq_len == 0` or `batch_size == 0`.
///
/// # Examples
///
/// ```
/// use rt3_data::lm_batches;
///
/// let stream: Vec<usize> = (0..10).collect();
/// let batches = lm_batches(&stream, 3, 2);
/// assert_eq!(batches[0].inputs[0], vec![0, 1, 2]);
/// assert_eq!(batches[0].targets[0], vec![1, 2, 3]);
/// ```
pub fn lm_batches(stream: &[usize], seq_len: usize, batch_size: usize) -> Vec<LmBatch> {
    assert!(seq_len > 0, "sequence length must be positive");
    assert!(batch_size > 0, "batch size must be positive");
    let mut sequences = Vec::new();
    let mut start = 0;
    while start + seq_len < stream.len() {
        let input = stream[start..start + seq_len].to_vec();
        let target = stream[start + 1..start + seq_len + 1].to_vec();
        sequences.push((input, target));
        start += seq_len;
    }
    sequences
        .chunks(batch_size)
        .map(|chunk| LmBatch {
            inputs: chunk.iter().map(|(i, _)| i.clone()).collect(),
            targets: chunk.iter().map(|(_, t)| t.clone()).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let config = CorpusConfig::tiny();
        let a = MarkovCorpus::generate(&config);
        let b = MarkovCorpus::generate(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_corpora() {
        let mut config = CorpusConfig::tiny();
        let a = MarkovCorpus::generate(&config);
        config.seed += 1;
        let b = MarkovCorpus::generate(&config);
        assert_ne!(a.train(), b.train());
    }

    #[test]
    fn tokens_stay_in_vocabulary() {
        let corpus = MarkovCorpus::generate(&CorpusConfig::tiny());
        assert!(corpus.train().iter().all(|&t| t < corpus.vocab_size()));
        assert!(corpus.valid().iter().all(|&t| t < corpus.vocab_size()));
    }

    #[test]
    fn corpus_has_learnable_structure() {
        // A bigram oracle (predict the most frequent successor seen in
        // training) must clearly beat the unigram baseline; otherwise the
        // corpus would be pure noise and useless as a WikiText stand-in.
        let corpus = MarkovCorpus::generate(&CorpusConfig::tiny());
        let v = corpus.vocab_size();
        let mut bigram = vec![vec![0usize; v]; v];
        for w in corpus.train().windows(2) {
            bigram[w[0]][w[1]] += 1;
        }
        let predict = |prev: usize| -> usize {
            bigram[prev]
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        let valid = corpus.valid();
        let correct = valid.windows(2).filter(|w| predict(w[0]) == w[1]).count();
        let bigram_acc = correct as f64 / (valid.len() - 1) as f64;
        let unigram_acc = corpus.unigram_baseline_accuracy();
        assert!(
            bigram_acc > unigram_acc + 0.15,
            "bigram {:.3} should beat unigram {:.3}",
            bigram_acc,
            unigram_acc
        );
    }

    #[test]
    fn lm_batches_shift_targets_by_one() {
        let stream: Vec<usize> = (0..20).collect();
        let batches = lm_batches(&stream, 4, 3);
        for batch in &batches {
            for (input, target) in batch.inputs.iter().zip(&batch.targets) {
                for k in 0..input.len() {
                    assert_eq!(target[k], input[k] + 1);
                }
            }
        }
    }

    #[test]
    fn lm_batches_drop_short_remainder() {
        let stream: Vec<usize> = (0..10).collect();
        let batches = lm_batches(&stream, 4, 8);
        let total: usize = batches.iter().map(LmBatch::len).sum();
        assert_eq!(total, 2);
    }

    #[test]
    #[should_panic(expected = "sequence length must be positive")]
    fn lm_batches_reject_zero_seq_len() {
        let _ = lm_batches(&[1, 2, 3], 0, 1);
    }
}
