//! Synthetic GLUE-style task generators.
//!
//! The paper evaluates DistilBERT on the nine GLUE tasks. Those datasets are
//! not available here, so each task is replaced by a *synthetic* counterpart
//! with a planted, learnable decision rule over a synthetic vocabulary:
//!
//! * single-sentence classification (SST-2, CoLA): class-indicative keyword
//!   tokens are injected into otherwise random sequences;
//! * sentence-pair classification (MRPC, QQP, QNLI, RTE, WNLI, MNLI): the
//!   label is determined by the degree of token overlap between the two
//!   segments (entailment/paraphrase ⇔ high overlap);
//! * similarity regression (STS-B): the target score is proportional to the
//!   Jaccard overlap of the two segments, scaled to `[0, 5]`.
//!
//! Tasks differ in how much signal is injected, which mirrors the spread of
//! scores across GLUE tasks in the paper's Fig. 5.

use crate::metrics::MetricKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Token id reserved for the segment separator in sentence-pair tasks.
pub const SEP_TOKEN: usize = 1;

/// The nine GLUE tasks plus the WikiText-style LM task used in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GlueTask {
    /// Multi-genre natural language inference (3-way classification).
    Mnli,
    /// Quora question pairs (binary, F1).
    Qqp,
    /// Question answering NLI (binary, accuracy).
    Qnli,
    /// Stanford sentiment treebank (binary, accuracy).
    Sst2,
    /// Corpus of linguistic acceptability (binary, Matthews correlation).
    Cola,
    /// Semantic textual similarity benchmark (regression, Spearman).
    StsB,
    /// Microsoft research paraphrase corpus (binary, F1).
    Mrpc,
    /// Recognising textual entailment (binary, accuracy).
    Rte,
    /// Winograd NLI (binary, accuracy).
    Wnli,
}

impl GlueTask {
    /// All nine tasks, in the order of the paper's Fig. 5.
    pub fn all() -> [GlueTask; 9] {
        [
            GlueTask::Mnli,
            GlueTask::Qqp,
            GlueTask::Qnli,
            GlueTask::Sst2,
            GlueTask::Cola,
            GlueTask::StsB,
            GlueTask::Mrpc,
            GlueTask::Rte,
            GlueTask::Wnli,
        ]
    }

    /// Canonical short name.
    pub fn name(&self) -> &'static str {
        match self {
            GlueTask::Mnli => "MNLI",
            GlueTask::Qqp => "QQP",
            GlueTask::Qnli => "QNLI",
            GlueTask::Sst2 => "SST-2",
            GlueTask::Cola => "CoLA",
            GlueTask::StsB => "STS-B",
            GlueTask::Mrpc => "MRPC",
            GlueTask::Rte => "RTE",
            GlueTask::Wnli => "WNLI",
        }
    }

    /// The metric reported for this task, following the GLUE conventions the
    /// paper uses.
    pub fn metric(&self) -> MetricKind {
        match self {
            GlueTask::Cola => MetricKind::MatthewsCorrelation,
            GlueTask::Qqp | GlueTask::Mrpc => MetricKind::F1,
            GlueTask::StsB => MetricKind::SpearmanCorrelation,
            _ => MetricKind::Accuracy,
        }
    }

    /// Number of classes, or `None` for the regression task.
    pub fn num_classes(&self) -> Option<usize> {
        match self {
            GlueTask::StsB => None,
            GlueTask::Mnli => Some(3),
            _ => Some(2),
        }
    }

    /// Returns `true` for the regression task (STS-B).
    pub fn is_regression(&self) -> bool {
        matches!(self, GlueTask::StsB)
    }

    /// Returns `true` for sentence-pair tasks.
    pub fn is_sentence_pair(&self) -> bool {
        !matches!(self, GlueTask::Sst2 | GlueTask::Cola)
    }

    /// How many class-indicative keyword tokens are injected per example.
    /// Larger values make the synthetic task easier; the spread mirrors the
    /// relative difficulty of the real GLUE tasks (WNLI/RTE hard, SST-2
    /// easy).
    fn signal_tokens(&self) -> usize {
        match self {
            GlueTask::Sst2 | GlueTask::Qqp | GlueTask::Qnli => 4,
            GlueTask::Mnli | GlueTask::Mrpc | GlueTask::Cola | GlueTask::StsB => 3,
            GlueTask::Rte => 2,
            GlueTask::Wnli => 1,
        }
    }
}

impl std::fmt::Display for GlueTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Label of a synthetic example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Label {
    /// Classification target.
    Class(usize),
    /// Regression target (STS-B score in `[0, 5]`).
    Score(f32),
}

impl Label {
    /// The class index.
    ///
    /// # Panics
    ///
    /// Panics if the label is a regression score.
    pub fn class(&self) -> usize {
        match self {
            Label::Class(c) => *c,
            Label::Score(_) => panic!("label is a regression score, not a class"),
        }
    }

    /// The regression score.
    ///
    /// # Panics
    ///
    /// Panics if the label is a class.
    pub fn score(&self) -> f32 {
        match self {
            Label::Score(s) => *s,
            Label::Class(_) => panic!("label is a class, not a regression score"),
        }
    }
}

/// One synthetic example: a token sequence (pair tasks contain a
/// [`SEP_TOKEN`]) and its label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Token ids of fixed length [`TaskConfig::seq_len`].
    pub tokens: Vec<usize>,
    /// Ground-truth label.
    pub label: Label,
}

/// Configuration for synthetic task generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskConfig {
    /// Vocabulary size (ids `0` and [`SEP_TOKEN`] are reserved).
    pub vocab_size: usize,
    /// Fixed sequence length of every example.
    pub seq_len: usize,
    /// Number of training examples.
    pub train_examples: usize,
    /// Number of development (evaluation) examples.
    pub dev_examples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TaskConfig {
    fn default() -> Self {
        Self {
            vocab_size: 128,
            seq_len: 24,
            train_examples: 600,
            dev_examples: 200,
            seed: 0x61_u64,
        }
    }
}

impl TaskConfig {
    /// Small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            vocab_size: 64,
            seq_len: 12,
            train_examples: 160,
            dev_examples: 80,
            seed: 11,
        }
    }
}

/// A generated synthetic task: train and dev splits plus task metadata.
///
/// # Examples
///
/// ```
/// use rt3_data::{GlueTask, TaskConfig, TaskDataset};
///
/// let ds = TaskDataset::generate(GlueTask::Rte, &TaskConfig::tiny());
/// assert_eq!(ds.task(), GlueTask::Rte);
/// assert_eq!(ds.train().len(), 160);
/// assert!(ds.dev().iter().all(|e| e.tokens.len() == 12));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDataset {
    task: GlueTask,
    vocab_size: usize,
    seq_len: usize,
    train: Vec<Example>,
    dev: Vec<Example>,
}

impl TaskDataset {
    /// Generates the synthetic dataset for `task`. The same configuration
    /// always yields the same dataset.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size < 8` or `seq_len < 4`.
    pub fn generate(task: GlueTask, config: &TaskConfig) -> Self {
        assert!(config.vocab_size >= 8, "vocabulary too small");
        assert!(config.seq_len >= 4, "sequence length too small");
        let mut rng = StdRng::seed_from_u64(config.seed ^ task_seed(task));
        // class-indicative keyword pools (disjoint per class)
        let classes = task.num_classes().unwrap_or(2);
        let pool_size = 6;
        let mut keywords: Vec<Vec<usize>> = Vec::with_capacity(classes);
        let mut available: Vec<usize> = (2..config.vocab_size).collect();
        available.shuffle(&mut rng);
        for c in 0..classes {
            keywords.push(available[c * pool_size..(c + 1) * pool_size].to_vec());
        }
        let make_split = |n: usize, rng: &mut StdRng| -> Vec<Example> {
            (0..n)
                .map(|_| generate_example(task, config, &keywords, rng))
                .collect()
        };
        let train = make_split(config.train_examples, &mut rng);
        let dev = make_split(config.dev_examples, &mut rng);
        Self {
            task,
            vocab_size: config.vocab_size,
            seq_len: config.seq_len,
            train,
            dev,
        }
    }

    /// The task this dataset was generated for.
    pub fn task(&self) -> GlueTask {
        self.task
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Fixed sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Training examples.
    pub fn train(&self) -> &[Example] {
        &self.train
    }

    /// Development (evaluation) examples.
    pub fn dev(&self) -> &[Example] {
        &self.dev
    }

    /// Majority-class accuracy (or score variance for STS-B) — the floor a
    /// trained model must beat.
    pub fn majority_baseline(&self) -> f64 {
        if self.task.is_regression() {
            return 0.0;
        }
        let classes = self.task.num_classes().unwrap_or(2);
        let mut counts = vec![0usize; classes];
        for e in &self.dev {
            counts[e.label.class()] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        if self.dev.is_empty() {
            0.0
        } else {
            max as f64 / self.dev.len() as f64
        }
    }
}

fn task_seed(task: GlueTask) -> u64 {
    match task {
        GlueTask::Mnli => 101,
        GlueTask::Qqp => 102,
        GlueTask::Qnli => 103,
        GlueTask::Sst2 => 104,
        GlueTask::Cola => 105,
        GlueTask::StsB => 106,
        GlueTask::Mrpc => 107,
        GlueTask::Rte => 108,
        GlueTask::Wnli => 109,
    }
}

fn generate_example(
    task: GlueTask,
    config: &TaskConfig,
    keywords: &[Vec<usize>],
    rng: &mut StdRng,
) -> Example {
    let random_token = |rng: &mut StdRng| rng.gen_range(2..config.vocab_size);
    if task.is_regression() {
        // STS-B: two segments with controlled overlap; score = 5 * overlap.
        let seg_len = (config.seq_len - 1) / 2;
        let overlap_frac: f32 = rng.gen();
        let shared = ((seg_len as f32) * overlap_frac).round() as usize;
        let first: Vec<usize> = (0..seg_len).map(|_| random_token(rng)).collect();
        let mut second: Vec<usize> = first.iter().take(shared).cloned().collect();
        while second.len() < seg_len {
            second.push(random_token(rng));
        }
        second.shuffle(rng);
        let mut tokens = first;
        tokens.push(SEP_TOKEN);
        tokens.extend(second);
        tokens.resize(config.seq_len, SEP_TOKEN);
        let score = 5.0 * shared as f32 / seg_len as f32;
        return Example {
            tokens,
            label: Label::Score(score),
        };
    }
    let classes = task.num_classes().unwrap_or(2);
    let class = rng.gen_range(0..classes);
    let signal = task.signal_tokens();
    if task.is_sentence_pair() {
        // pair task: class 1 (or the "entailment" class 0 for MNLI-style
        // 3-way) is indicated both by keyword injection and token overlap.
        let seg_len = (config.seq_len - 1) / 2;
        let first: Vec<usize> = (0..seg_len).map(|_| random_token(rng)).collect();
        let mut second: Vec<usize> = Vec::with_capacity(seg_len);
        // overlap proportional to class index (higher class = more overlap)
        let overlap = (seg_len * class) / classes.max(1);
        second.extend(first.iter().take(overlap).cloned());
        while second.len() < seg_len {
            second.push(random_token(rng));
        }
        // inject class keywords into the second segment
        for k in 0..signal.min(seg_len) {
            let pos = rng.gen_range(0..seg_len);
            second[pos] = keywords[class][k % keywords[class].len()];
        }
        let mut tokens = first;
        tokens.push(SEP_TOKEN);
        tokens.extend(second);
        tokens.resize(config.seq_len, SEP_TOKEN);
        Example {
            tokens,
            label: Label::Class(class),
        }
    } else {
        // single-sentence task: random tokens with injected class keywords
        let mut tokens: Vec<usize> = (0..config.seq_len).map(|_| random_token(rng)).collect();
        for k in 0..signal.min(config.seq_len) {
            let pos = rng.gen_range(0..config.seq_len);
            tokens[pos] = keywords[class][k % keywords[class].len()];
        }
        Example {
            tokens,
            label: Label::Class(class),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tasks_have_consistent_metadata() {
        for task in GlueTask::all() {
            if task.is_regression() {
                assert_eq!(task.num_classes(), None);
                assert_eq!(task.metric(), MetricKind::SpearmanCorrelation);
            } else {
                assert!(task.num_classes().unwrap_or(0) >= 2);
            }
            assert!(!task.name().is_empty());
        }
        assert_eq!(GlueTask::Mnli.num_classes(), Some(3));
        assert_eq!(GlueTask::Cola.metric(), MetricKind::MatthewsCorrelation);
        assert_eq!(GlueTask::Qqp.metric(), MetricKind::F1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TaskDataset::generate(GlueTask::Sst2, &TaskConfig::tiny());
        let b = TaskDataset::generate(GlueTask::Sst2, &TaskConfig::tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn different_tasks_get_different_data() {
        let a = TaskDataset::generate(GlueTask::Sst2, &TaskConfig::tiny());
        let b = TaskDataset::generate(GlueTask::Cola, &TaskConfig::tiny());
        assert_ne!(a.train(), b.train());
    }

    #[test]
    fn examples_have_fixed_length_and_valid_tokens() {
        for task in GlueTask::all() {
            let ds = TaskDataset::generate(task, &TaskConfig::tiny());
            for e in ds.train().iter().chain(ds.dev()) {
                assert_eq!(e.tokens.len(), 12);
                assert!(e.tokens.iter().all(|&t| t < ds.vocab_size()));
            }
        }
    }

    #[test]
    fn pair_tasks_contain_separator() {
        let ds = TaskDataset::generate(GlueTask::Rte, &TaskConfig::tiny());
        assert!(ds.train().iter().all(|e| e.tokens.contains(&SEP_TOKEN)));
    }

    #[test]
    fn stsb_scores_are_in_range() {
        let ds = TaskDataset::generate(GlueTask::StsB, &TaskConfig::tiny());
        for e in ds.train() {
            let s = e.label.score();
            assert!((0.0..=5.0).contains(&s));
        }
    }

    #[test]
    fn classification_labels_are_in_range() {
        for task in GlueTask::all() {
            if task.is_regression() {
                continue;
            }
            let classes = task.num_classes().unwrap();
            let ds = TaskDataset::generate(task, &TaskConfig::tiny());
            assert!(ds.train().iter().all(|e| e.label.class() < classes));
        }
    }

    #[test]
    fn keyword_signal_makes_task_learnable_without_a_model() {
        // A simple keyword-counting classifier must beat the majority
        // baseline on SST-2-like data; otherwise the planted rule is broken.
        let config = TaskConfig {
            train_examples: 400,
            dev_examples: 200,
            ..TaskConfig::tiny()
        };
        let ds = TaskDataset::generate(GlueTask::Sst2, &config);
        // learn keyword association from training split
        let mut token_class_counts = vec![[0usize; 2]; ds.vocab_size()];
        for e in ds.train() {
            for &t in &e.tokens {
                token_class_counts[t][e.label.class()] += 1;
            }
        }
        let mut correct = 0;
        for e in ds.dev() {
            let mut votes = [0i64; 2];
            for &t in &e.tokens {
                let counts = token_class_counts[t];
                if counts[0] + counts[1] > 0 {
                    votes[0] += counts[0] as i64 - counts[1] as i64;
                    votes[1] += counts[1] as i64 - counts[0] as i64;
                }
            }
            let pred = if votes[1] > votes[0] { 1 } else { 0 };
            if pred == e.label.class() {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.dev().len() as f64;
        assert!(
            acc > ds.majority_baseline() + 0.1,
            "keyword classifier accuracy {:.3} vs baseline {:.3}",
            acc,
            ds.majority_baseline()
        );
    }

    #[test]
    #[should_panic(expected = "label is a class")]
    fn score_accessor_panics_on_class_label() {
        let _ = Label::Class(1).score();
    }
}
