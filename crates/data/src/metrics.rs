//! Evaluation metrics following the GLUE conventions used in the paper:
//! accuracy (SST-2, QNLI, RTE, WNLI), F1 (QQP, MRPC), Matthews correlation
//! (CoLA) and Spearman correlation (STS-B), plus next-word prediction
//! accuracy for the WikiText-style language-modelling task.

use serde::{Deserialize, Serialize};

/// Which scalar metric a task reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Fraction of exactly correct predictions.
    Accuracy,
    /// Binary F1 score of the positive class.
    F1,
    /// Matthews correlation coefficient.
    MatthewsCorrelation,
    /// Spearman rank correlation.
    SpearmanCorrelation,
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            MetricKind::Accuracy => "accuracy",
            MetricKind::F1 => "f1",
            MetricKind::MatthewsCorrelation => "mcc",
            MetricKind::SpearmanCorrelation => "spearman",
        };
        f.write_str(name)
    }
}

/// Classification accuracy in `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use rt3_data::accuracy;
///
/// assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Binary F1 score treating class `1` as positive.
///
/// Returns 0.0 when there are no predicted or actual positives.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn f1_score(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let tp = predictions
        .iter()
        .zip(labels)
        .filter(|(&p, &l)| p == 1 && l == 1)
        .count() as f64;
    let fp = predictions
        .iter()
        .zip(labels)
        .filter(|(&p, &l)| p == 1 && l == 0)
        .count() as f64;
    let fn_ = predictions
        .iter()
        .zip(labels)
        .filter(|(&p, &l)| p == 0 && l == 1)
        .count() as f64;
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fn_);
    2.0 * precision * recall / (precision + recall)
}

/// Matthews correlation coefficient for binary classification, in `[-1, 1]`.
///
/// Returns 0.0 when any marginal is empty (the usual convention).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn matthews_correlation(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut tp = 0.0f64;
    let mut tn = 0.0f64;
    let mut fp = 0.0f64;
    let mut fn_ = 0.0f64;
    for (&p, &l) in predictions.iter().zip(labels) {
        match (p, l) {
            (1, 1) => tp += 1.0,
            (0, 0) => tn += 1.0,
            (1, 0) => fp += 1.0,
            (0, 1) => fn_ += 1.0,
            _ => {}
        }
    }
    let denom = (tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_);
    if denom == 0.0 {
        return 0.0;
    }
    (tp * tn - fp * fn_) / denom.sqrt()
}

/// Spearman rank correlation between two score vectors, in `[-1, 1]`.
///
/// Ties receive averaged ranks. Returns 0.0 for fewer than two samples or
/// zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson_correlation(&ra, &rb)
}

/// Pearson correlation between two vectors, in `[-1, 1]`.
///
/// Returns 0.0 for fewer than two samples or zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len() as f64;
    if a.len() < 2 {
        return 0.0;
    }
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - mean_a) * (y - mean_b);
        var_a += (x - mean_a) * (x - mean_a);
        var_b += (y - mean_b) * (y - mean_b);
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

fn ranks(values: &[f64]) -> Vec<f64> {
    let mut indexed: Vec<(usize, f64)> = values.iter().cloned().enumerate().collect();
    indexed.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut result = vec![0.0; values.len()];
    let mut i = 0;
    while i < indexed.len() {
        let mut j = i;
        while j + 1 < indexed.len() && indexed[j + 1].1 == indexed[i].1 {
            j += 1;
        }
        // average rank for ties (1-based ranks)
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for item in indexed.iter().take(j + 1).skip(i) {
            result[item.0] = avg;
        }
        i = j + 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_of_perfect_and_empty_predictions() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn f1_balances_precision_and_recall() {
        // one true positive, one false positive, one false negative
        let f1 = f1_score(&[1, 1, 0], &[1, 0, 1]);
        assert!((f1 - 0.5).abs() < 1e-9);
        assert_eq!(f1_score(&[0, 0], &[0, 0]), 0.0);
    }

    #[test]
    fn mcc_is_one_for_perfect_and_minus_one_for_inverted() {
        assert!((matthews_correlation(&[1, 0, 1, 0], &[1, 0, 1, 0]) - 1.0).abs() < 1e-9);
        assert!((matthews_correlation(&[0, 1, 0, 1], &[1, 0, 1, 0]) + 1.0).abs() < 1e-9);
        assert_eq!(matthews_correlation(&[1, 1], &[1, 1]), 0.0);
    }

    #[test]
    fn spearman_detects_monotone_relationships() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let increasing = [2.0, 4.0, 6.0, 8.0, 100.0];
        let decreasing = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((spearman_correlation(&a, &increasing) - 1.0).abs() < 1e-9);
        assert!((spearman_correlation(&a, &decreasing) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_handles_ties_and_degenerate_input() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman_correlation(&a, &b) - 1.0).abs() < 1e-9);
        assert_eq!(spearman_correlation(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman_correlation(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn pearson_of_linear_relation_is_one() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [1.0, 3.0, 5.0, 7.0];
        assert!((pearson_correlation(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metric_kind_display_names() {
        assert_eq!(MetricKind::Accuracy.to_string(), "accuracy");
        assert_eq!(MetricKind::SpearmanCorrelation.to_string(), "spearman");
    }
}
