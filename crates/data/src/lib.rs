//! # rt3-data
//!
//! Synthetic data substrate for the RT3 reproduction.
//!
//! The paper's experiments use WikiText-2 (next-word prediction for the
//! small Transformer) and the GLUE benchmark (DistilBERT). Neither dataset
//! is bundled here; instead this crate generates deterministic synthetic
//! counterparts with planted, learnable structure (see DESIGN.md for the
//! substitution rationale):
//!
//! * [`MarkovCorpus`] — a "WikiText-like" language-modelling corpus drawn
//!   from a sparse Markov chain, batched with [`lm_batches`].
//! * [`TaskDataset`] / [`GlueTask`] — GLUE-style synthetic tasks (single
//!   sentence, sentence pair and similarity regression).
//! * Metrics following the GLUE conventions: [`accuracy`], [`f1_score`],
//!   [`matthews_correlation`], [`spearman_correlation`].
//!
//! # Examples
//!
//! ```
//! use rt3_data::{lm_batches, CorpusConfig, MarkovCorpus};
//!
//! let corpus = MarkovCorpus::generate(&CorpusConfig::tiny());
//! let batches = lm_batches(corpus.train(), 8, 16);
//! assert!(!batches.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod glue;
mod metrics;

pub use corpus::{lm_batches, CorpusConfig, LmBatch, MarkovCorpus};
pub use glue::{Example, GlueTask, Label, TaskConfig, TaskDataset, SEP_TOKEN};
pub use metrics::{
    accuracy, f1_score, matthews_correlation, pearson_correlation, spearman_correlation, MetricKind,
};
