//! # rt3-pruning
//!
//! The pruning algorithms of RT3 ("Dancing along Battery", DAC 2021):
//!
//! * **Level 1 — block-structured pruning (BP)**: [`block_prune_matrix`]
//!   implements Algorithm 1 (per-block column removal by l2 norm);
//!   [`block_prune_model`] applies it to every prunable Transformer weight.
//!   [`random_block_prune_matrix`] is the rBP ablation baseline and
//!   [`reweighted_group_lasso_penalty`] the sparsity regulariser.
//! * **Level 2 — pattern pruning (PP)**: [`generate_pattern_space`] builds
//!   the shrunken search space of candidate pattern sets from the backbone
//!   (component ③), [`random_pattern_set`] is the rPP baseline, and
//!   [`combined_masks_for_model`] turns a chosen pattern set into trainable
//!   weight masks composed with the backbone mask.
//!
//! # Examples
//!
//! ```
//! use rt3_pruning::{block_prune_model, BlockPruningConfig};
//! use rt3_transformer::{Model, TransformerConfig, TransformerLm};
//!
//! let model = TransformerLm::new(TransformerConfig::tiny(32), 0);
//! let backbone = block_prune_model(&model, &BlockPruningConfig::default());
//! assert!(backbone.overall_sparsity() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod pattern_apply;
mod pattern_space;

pub use block::{
    block_prune_matrix, block_prune_model, random_block_prune_matrix, random_block_prune_model,
    reweighted_group_lasso_penalty, BlockPruningConfig, PruneCriterion,
};
pub use pattern_apply::{
    combined_masks_and_weights, combined_masks_for_model, effective_sparsity,
    pattern_masks_for_model,
};
pub use pattern_space::{
    generate_pattern_space, importance_map, random_pattern_set, CandidatePatternSet, PatternSpace,
    PatternSpaceConfig,
};
