//! Component ③ of RT3: heuristic generation of the pattern-pruning search
//! space from the Level-1 backbone model.
//!
//! The paper's construction: divide the backbone `C` into `psize x psize`
//! blocks, sample half of them, point-wise add their absolute values to get a
//! per-position importance map, then for every target sparsity keep only the
//! most important positions. Repeating the sampling `m` times yields `m`
//! representative patterns per sparsity — a *candidate pattern set*. The RL
//! controller later picks one candidate set per V/F level.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rt3_sparse::{PatternMask, PatternSet};
use rt3_tensor::Matrix;
use rt3_transformer::{MaskSet, Model};
use serde::{Deserialize, Serialize};

/// Configuration of the pattern search-space generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternSpaceConfig {
    /// Pattern side length (the paper uses 100; experiments here use 4–10).
    pub pattern_size: usize,
    /// Number of representative patterns per candidate set (`m`).
    pub patterns_per_set: usize,
    /// Fraction of blocks sampled when building each importance map (the
    /// paper samples half).
    pub sample_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PatternSpaceConfig {
    fn default() -> Self {
        Self {
            pattern_size: 8,
            patterns_per_set: 4,
            sample_fraction: 0.5,
            seed: 0xbeef,
        }
    }
}

impl PatternSpaceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.pattern_size == 0 {
            return Err("pattern_size must be positive".into());
        }
        if self.patterns_per_set == 0 {
            return Err("patterns_per_set must be positive".into());
        }
        if !(0.0 < self.sample_fraction && self.sample_fraction <= 1.0) {
            return Err("sample_fraction must be in (0, 1]".into());
        }
        Ok(())
    }
}

/// One candidate pattern set with its target sparsity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidatePatternSet {
    /// Target sparsity of every pattern in the set.
    pub sparsity: f64,
    /// The patterns.
    pub set: PatternSet,
}

/// The shrunken Level-2 search space: one candidate set per explored sparsity
/// ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternSpace {
    candidates: Vec<CandidatePatternSet>,
    pattern_size: usize,
}

impl PatternSpace {
    /// The candidate sets, ordered by ascending sparsity.
    pub fn candidates(&self) -> &[CandidatePatternSet] {
        &self.candidates
    }

    /// Number of candidate sets.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Returns `true` if the space holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Pattern side length shared by all candidates.
    pub fn pattern_size(&self) -> usize {
        self.pattern_size
    }

    /// The candidate whose sparsity is closest to `target`.
    pub fn closest_to(&self, target: f64) -> Option<&CandidatePatternSet> {
        self.candidates.iter().min_by(|a, b| {
            (a.sparsity - target)
                .abs()
                .partial_cmp(&(b.sparsity - target).abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// Builds the per-position importance map by sampling blocks of the
/// backbone-masked prunable weights and accumulating their absolute values
/// (point-wise addition, as in the paper).
pub fn importance_map<M: Model>(
    model: &M,
    backbone: &MaskSet,
    config: &PatternSpaceConfig,
    rng: &mut StdRng,
) -> Matrix {
    let psize = config.pattern_size;
    let mut importance = Matrix::zeros(psize, psize);
    let prunable = model.prunable_parameter_names();
    // collect all block origins across prunable parameters
    let mut origins: Vec<(String, usize, usize)> = Vec::new();
    for (name, weight) in model.parameters() {
        if !prunable.contains(&name) {
            continue;
        }
        let grid_rows = weight.rows() / psize;
        let grid_cols = weight.cols() / psize;
        for br in 0..grid_rows {
            for bc in 0..grid_cols {
                origins.push((name.clone(), br * psize, bc * psize));
            }
        }
    }
    if origins.is_empty() {
        // weights smaller than one pattern: fall back to accumulating the
        // top-left corner of every prunable weight
        for (name, weight) in model.parameters() {
            if !prunable.contains(&name) {
                continue;
            }
            let block = weight.block(0, 0, psize, psize);
            for i in 0..block.rows() {
                for j in 0..block.cols() {
                    let v = importance.get(i, j) + block.get(i, j).abs();
                    importance.set(i, j, v);
                }
            }
        }
        return importance;
    }
    origins.shuffle(rng);
    let sample = ((origins.len() as f64) * config.sample_fraction).ceil() as usize;
    for (name, r0, c0) in origins.into_iter().take(sample.max(1)) {
        let weight = model
            .parameter(&name)
            .expect("parameter listed but not found");
        let mask = backbone.get(&name);
        for i in 0..psize {
            for j in 0..psize {
                let w = weight.get(r0 + i, c0 + j);
                let kept = mask.map_or(1.0, |m| m.get(r0 + i, c0 + j));
                let v = importance.get(i, j) + (w * kept).abs();
                importance.set(i, j, v);
            }
        }
    }
    importance
}

/// Generates the shrunken pattern search space: for every target sparsity, a
/// candidate set of `patterns_per_set` importance-guided patterns.
///
/// # Panics
///
/// Panics if the configuration is invalid or `sparsities` is empty.
pub fn generate_pattern_space<M: Model>(
    model: &M,
    backbone: &MaskSet,
    sparsities: &[f64],
    config: &PatternSpaceConfig,
) -> PatternSpace {
    config
        .validate()
        .expect("invalid pattern space configuration");
    assert!(
        !sparsities.is_empty(),
        "at least one target sparsity is required"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sorted: Vec<f64> = sparsities.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // a fresh block sample per pattern gives m distinct but correlated
    // importance-guided patterns; every target sparsity is carved out of the
    // SAME m maps, so the patterns of a sparser candidate are subsets of the
    // denser candidate's patterns and combined sparsity grows monotonically
    // with the target (which keeps predicted latency monotone as well)
    let maps: Vec<Matrix> = (0..config.patterns_per_set)
        .map(|_| importance_map(model, backbone, config, &mut rng))
        .collect();
    let mut candidates = Vec::with_capacity(sorted.len());
    for &sparsity in &sorted {
        let patterns = maps
            .iter()
            .map(|importance| PatternMask::from_importance(importance, sparsity))
            .collect();
        let set = PatternSet::new(patterns).expect("patterns_per_set is positive");
        candidates.push(CandidatePatternSet { sparsity, set });
    }
    PatternSpace {
        candidates,
        pattern_size: config.pattern_size,
    }
}

/// Generates a purely random pattern set (the "rPP" ablation baseline).
///
/// # Panics
///
/// Panics if `patterns_per_set == 0`.
pub fn random_pattern_set<R: Rng + ?Sized>(
    pattern_size: usize,
    sparsity: f64,
    patterns_per_set: usize,
    rng: &mut R,
) -> PatternSet {
    assert!(patterns_per_set > 0, "patterns_per_set must be positive");
    let patterns = (0..patterns_per_set)
        .map(|_| PatternMask::random(pattern_size, sparsity, rng))
        .collect();
    PatternSet::new(patterns).expect("patterns_per_set is positive")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{block_prune_model, BlockPruningConfig};
    use rt3_transformer::{TransformerConfig, TransformerLm};

    fn backbone() -> (TransformerLm, MaskSet) {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 3);
        let masks = block_prune_model(&model, &BlockPruningConfig::default());
        (model, masks)
    }

    #[test]
    fn importance_map_has_pattern_shape_and_nonnegative_entries() {
        let (model, masks) = backbone();
        let config = PatternSpaceConfig {
            pattern_size: 4,
            ..PatternSpaceConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let imp = importance_map(&model, &masks, &config, &mut rng);
        assert_eq!(imp.shape(), (4, 4));
        assert!(imp.as_slice().iter().all(|&x| x >= 0.0));
        assert!(imp.sum() > 0.0);
    }

    #[test]
    fn generated_space_is_sorted_and_respects_sparsities() {
        let (model, masks) = backbone();
        let config = PatternSpaceConfig {
            pattern_size: 4,
            patterns_per_set: 3,
            sample_fraction: 0.5,
            seed: 9,
        };
        let space = generate_pattern_space(&model, &masks, &[0.75, 0.25, 0.5], &config);
        assert_eq!(space.len(), 3);
        let sparsities: Vec<f64> = space.candidates().iter().map(|c| c.sparsity).collect();
        assert_eq!(sparsities, vec![0.25, 0.5, 0.75]);
        for c in space.candidates() {
            assert_eq!(c.set.len(), 3);
            assert!((c.set.mean_sparsity() - c.sparsity).abs() < 0.1);
        }
    }

    #[test]
    fn closest_to_finds_nearest_candidate() {
        let (model, masks) = backbone();
        let config = PatternSpaceConfig {
            pattern_size: 4,
            patterns_per_set: 1,
            sample_fraction: 0.5,
            seed: 2,
        };
        let space = generate_pattern_space(&model, &masks, &[0.2, 0.5, 0.8], &config);
        assert!((space.closest_to(0.55).unwrap().sparsity - 0.5).abs() < 1e-9);
        assert!((space.closest_to(0.95).unwrap().sparsity - 0.8).abs() < 1e-9);
    }

    #[test]
    fn importance_guided_patterns_share_structure_across_sparsities() {
        // Fig. 4 observation: patterns searched for different V/F levels keep
        // the same important positions.
        let (model, masks) = backbone();
        let config = PatternSpaceConfig {
            pattern_size: 4,
            patterns_per_set: 1,
            sample_fraction: 1.0,
            seed: 4,
        };
        let space = generate_pattern_space(&model, &masks, &[0.25, 0.75], &config);
        let sparse = &space.candidates()[1].set.patterns()[0];
        let dense = &space.candidates()[0].set.patterns()[0];
        // the sparser pattern's kept positions should (almost) all be kept in
        // the denser pattern too: containment, not symmetric overlap
        let contained = sparse
            .kept_positions()
            .iter()
            .filter(|&&(r, c)| dense.is_kept(r, c))
            .count();
        let containment = contained as f64 / sparse.ones() as f64;
        assert!(containment > 0.9, "containment {containment}");
    }

    #[test]
    fn random_pattern_set_matches_requested_sparsity() {
        let mut rng = StdRng::seed_from_u64(5);
        let set = random_pattern_set(6, 0.5, 4, &mut rng);
        assert_eq!(set.len(), 4);
        assert!((set.mean_sparsity() - 0.5).abs() < 0.05);
    }

    #[test]
    fn config_validation() {
        assert!(PatternSpaceConfig::default().validate().is_ok());
        assert!(PatternSpaceConfig {
            pattern_size: 0,
            ..PatternSpaceConfig::default()
        }
        .validate()
        .is_err());
        assert!(PatternSpaceConfig {
            sample_fraction: 0.0,
            ..PatternSpaceConfig::default()
        }
        .validate()
        .is_err());
    }
}
