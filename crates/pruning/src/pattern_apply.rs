//! Applying a pattern set to a model: builds the per-parameter masks that a
//! chosen pattern set induces, optionally composed with the fixed Level-1
//! backbone mask.

use rt3_sparse::{PatternPrunedMatrix, PatternSet};
use rt3_tensor::Matrix;
use rt3_transformer::{MaskSet, Model};

/// Builds the mask set induced by assigning, for every `psize x psize` block
/// of each listed parameter, the pattern from `set` that preserves the
/// largest l2 norm (the paper's block→pattern assignment rule).
///
/// Parameters not in `names` are left unmasked.
pub fn pattern_masks_for_model<M: Model>(model: &M, names: &[String], set: &PatternSet) -> MaskSet {
    let mut masks = MaskSet::new();
    for (name, weight) in model.parameters() {
        if !names.contains(&name) {
            continue;
        }
        let pruned = PatternPrunedMatrix::from_dense(weight, set);
        masks.insert(name, pruned.mask());
    }
    masks
}

/// Builds the combined Level-1 + Level-2 mask set: the pattern masks are
/// computed on the *backbone-masked* weights and then intersected with the
/// backbone mask, so a weight survives only if both levels keep it.
pub fn combined_masks_for_model<M: Model>(
    model: &M,
    backbone: &MaskSet,
    names: &[String],
    set: &PatternSet,
) -> MaskSet {
    combined_masks_and_weights(model, backbone, names, set).0
}

/// One-pass lowering of a model to its servable Level-1 ∧ Level-2 form:
/// returns both the combined mask set and the compiled pattern-pruned
/// weights (in `model.parameters()` order), sharing a single
/// `PatternPrunedMatrix::from_dense` per parameter.
///
/// This is the V/F-switch path of the runtime's model bank, which
/// previously lowered every weight twice — once for the masks, once for
/// the executable weights. The masks and weights are bit-identical to the
/// two-pass construction because both derive from the same plan.
pub fn combined_masks_and_weights<M: Model>(
    model: &M,
    backbone: &MaskSet,
    names: &[String],
    set: &PatternSet,
) -> (MaskSet, Vec<(String, PatternPrunedMatrix)>) {
    let mut pattern_masks = MaskSet::new();
    let mut weights = Vec::new();
    for (name, weight) in model.parameters() {
        if !names.contains(&name) {
            continue;
        }
        // pattern assignment happens on the backbone-masked weight, exactly
        // as the offline search evaluated it
        let effective: Matrix = match backbone.get(&name) {
            Some(mask) => weight.zip(mask, |w, m| w * m),
            None => weight.clone(),
        };
        let pruned = PatternPrunedMatrix::from_dense(&effective, set);
        pattern_masks.insert(name.clone(), pruned.mask());
        weights.push((name, pruned));
    }
    (backbone.intersect(&pattern_masks), weights)
}

/// Sparsity the combined mask set achieves over the listed parameters.
pub fn effective_sparsity(masks: &MaskSet) -> f64 {
    masks.overall_sparsity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{block_prune_model, BlockPruningConfig, PruneCriterion};
    use crate::pattern_space::{generate_pattern_space, PatternSpaceConfig};
    use rt3_transformer::{TransformerConfig, TransformerLm};

    fn setup() -> (TransformerLm, MaskSet, PatternSet) {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 11);
        let backbone = block_prune_model(
            &model,
            &BlockPruningConfig {
                num_blocks: 2,
                criterion: PruneCriterion::Fraction(0.25),
            },
        );
        let config = PatternSpaceConfig {
            pattern_size: 4,
            patterns_per_set: 2,
            sample_fraction: 0.5,
            seed: 3,
        };
        let space = generate_pattern_space(&model, &backbone, &[0.5], &config);
        let set = space.candidates()[0].set.clone();
        (model, backbone, set)
    }

    #[test]
    fn pattern_masks_cover_only_requested_parameters() {
        let (model, _, set) = setup();
        let names = vec!["encoder.0.attn.wq".to_string()];
        let masks = pattern_masks_for_model(&model, &names, &set);
        assert_eq!(masks.len(), 1);
        assert!(masks.get("encoder.0.attn.wq").is_some());
        let sparsity = masks.overall_sparsity();
        assert!((sparsity - 0.5).abs() < 0.15, "sparsity {}", sparsity);
    }

    #[test]
    fn combined_masks_are_at_least_as_sparse_as_each_level() {
        let (model, backbone, set) = setup();
        let names = model.prunable_parameter_names();
        let combined = combined_masks_for_model(&model, &backbone, &names, &set);
        let pattern_only = pattern_masks_for_model(&model, &names, &set);
        assert!(combined.overall_sparsity() >= backbone.overall_sparsity() - 1e-9);
        assert!(combined.overall_sparsity() >= pattern_only.overall_sparsity() - 1e-9);
    }

    #[test]
    fn combined_masks_keep_only_positions_kept_by_both() {
        let (model, backbone, set) = setup();
        let names = vec!["encoder.0.ffn.w1".to_string()];
        let combined = combined_masks_for_model(&model, &backbone, &names, &set);
        let cm = combined.get("encoder.0.ffn.w1").unwrap();
        let bm = backbone.get("encoder.0.ffn.w1").unwrap();
        for (c, b) in cm.as_slice().iter().zip(bm.as_slice()) {
            if *c != 0.0 {
                assert_ne!(*b, 0.0, "combined mask kept a position the backbone pruned");
            }
        }
    }
}
