//! Level-1 block-structured pruning (BP) — Algorithm 1 of the paper.
//!
//! The weight matrix is divided into row-wise blocks; within each block the
//! l2 norm of every column is computed and columns falling below a threshold
//! (or the lowest-norm fraction) are removed. The result is expressed as a
//! binary [`MaskSet`] over the model's prunable parameters, so it can be
//! fine-tuned with masked training and later frozen into the backbone model.

use rand::seq::SliceRandom;
use rand::Rng;
use rt3_sparse::BlockPartition;
use rt3_tensor::Matrix;
use rt3_transformer::{MaskSet, Model};
use serde::{Deserialize, Serialize};

/// How columns are selected for removal inside each block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PruneCriterion {
    /// Remove every column whose in-block l2 norm is below this threshold
    /// (the paper's "pre-set threshold" variant).
    Threshold(f32),
    /// Remove the fraction of columns with the smallest in-block l2 norm
    /// (the paper's "percentile" variant); value in `[0, 1)`.
    Fraction(f64),
}

/// Configuration of the Level-1 block-structured pruning pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockPruningConfig {
    /// Number of row-wise blocks each weight matrix is divided into.
    pub num_blocks: usize,
    /// Column-removal criterion.
    pub criterion: PruneCriterion,
}

impl Default for BlockPruningConfig {
    fn default() -> Self {
        Self {
            num_blocks: 4,
            criterion: PruneCriterion::Fraction(0.5),
        }
    }
}

impl BlockPruningConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_blocks == 0 {
            return Err("num_blocks must be positive".into());
        }
        match self.criterion {
            PruneCriterion::Threshold(t) if !(t.is_finite() && t >= 0.0) => {
                Err("threshold must be a non-negative finite number".into())
            }
            PruneCriterion::Fraction(f) if !(0.0..1.0).contains(&f) => {
                Err("fraction must be in [0, 1)".into())
            }
            _ => Ok(()),
        }
    }
}

/// Algorithm 1: produces the binary keep-mask for one weight matrix.
///
/// The matrix is split into `num_blocks` row blocks (clamped to the row
/// count); inside each block whole columns are pruned by the configured
/// criterion.
///
/// # Panics
///
/// Panics if the configuration is invalid.
///
/// # Examples
///
/// ```
/// use rt3_pruning::{block_prune_matrix, BlockPruningConfig, PruneCriterion};
/// use rt3_tensor::Matrix;
///
/// let w = Matrix::from_rows(&[vec![5.0, 0.1], vec![5.0, 0.1]]);
/// let cfg = BlockPruningConfig { num_blocks: 1, criterion: PruneCriterion::Fraction(0.5) };
/// let mask = block_prune_matrix(&w, &cfg);
/// assert_eq!(mask.col(0), vec![1.0, 1.0]);
/// assert_eq!(mask.col(1), vec![0.0, 0.0]);
/// ```
pub fn block_prune_matrix(weight: &Matrix, config: &BlockPruningConfig) -> Matrix {
    config
        .validate()
        .expect("invalid block pruning configuration");
    let blocks = config.num_blocks.min(weight.rows()).max(1);
    let partition = BlockPartition::even(weight.rows(), blocks);
    let mut mask = Matrix::zeros(weight.rows(), weight.cols());
    for &(start, end) in partition.ranges() {
        let block = weight.slice_rows(start, end);
        let norms: Vec<f32> = (0..block.cols()).map(|c| block.col_l2_norm(c)).collect();
        let keep: Vec<bool> = match config.criterion {
            PruneCriterion::Threshold(t) => norms.iter().map(|&n| n >= t).collect(),
            PruneCriterion::Fraction(f) => {
                let prune_count = ((block.cols() as f64) * f).floor() as usize;
                let mut order: Vec<usize> = (0..block.cols()).collect();
                order.sort_by(|&a, &b| {
                    norms[a]
                        .partial_cmp(&norms[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut keep = vec![true; block.cols()];
                for &c in order.iter().take(prune_count) {
                    keep[c] = false;
                }
                keep
            }
        };
        for r in start..end {
            for (c, &k) in keep.iter().enumerate() {
                if k {
                    mask.set(r, c, 1.0);
                }
            }
        }
    }
    mask
}

/// Random block pruning (the "rBP" ablation baseline): removes the same
/// number of columns per block as [`block_prune_matrix`] would under a
/// `Fraction` criterion, but chooses them uniformly at random.
///
/// # Panics
///
/// Panics if `prune_fraction` is outside `[0, 1)` or `num_blocks == 0`.
pub fn random_block_prune_matrix<R: Rng + ?Sized>(
    weight: &Matrix,
    num_blocks: usize,
    prune_fraction: f64,
    rng: &mut R,
) -> Matrix {
    assert!(num_blocks > 0, "num_blocks must be positive");
    assert!(
        (0.0..1.0).contains(&prune_fraction),
        "prune fraction must be in [0, 1)"
    );
    let blocks = num_blocks.min(weight.rows()).max(1);
    let partition = BlockPartition::even(weight.rows(), blocks);
    let mut mask = Matrix::zeros(weight.rows(), weight.cols());
    for &(start, end) in partition.ranges() {
        let prune_count = ((weight.cols() as f64) * prune_fraction).floor() as usize;
        let mut cols: Vec<usize> = (0..weight.cols()).collect();
        cols.shuffle(rng);
        let pruned: std::collections::HashSet<usize> = cols.into_iter().take(prune_count).collect();
        for r in start..end {
            for c in 0..weight.cols() {
                if !pruned.contains(&c) {
                    mask.set(r, c, 1.0);
                }
            }
        }
    }
    mask
}

/// Applies [`block_prune_matrix`] to every prunable parameter of a model and
/// returns the resulting mask set (the Level-1 output `C`).
pub fn block_prune_model<M: Model>(model: &M, config: &BlockPruningConfig) -> MaskSet {
    let prunable = model.prunable_parameter_names();
    let mut masks = MaskSet::new();
    for (name, weight) in model.parameters() {
        if prunable.contains(&name) {
            masks.insert(name, block_prune_matrix(weight, config));
        }
    }
    masks
}

/// Applies [`random_block_prune_matrix`] to every prunable parameter (the
/// "rBP only" ablation row).
pub fn random_block_prune_model<M: Model, R: Rng + ?Sized>(
    model: &M,
    num_blocks: usize,
    prune_fraction: f64,
    rng: &mut R,
) -> MaskSet {
    let prunable = model.prunable_parameter_names();
    let mut masks = MaskSet::new();
    for (name, weight) in model.parameters() {
        if prunable.contains(&name) {
            masks.insert(
                name,
                random_block_prune_matrix(weight, num_blocks, prune_fraction, rng),
            );
        }
    }
    masks
}

/// Reweighted group-lasso penalty used to regularise training towards
/// block-column sparsity: the sum over blocks and columns of the in-block
/// column l2 norms, each divided by its previous value (reweighting) so that
/// already-small groups are pushed harder towards zero.
///
/// `previous_norms` may be `None` on the first iteration (plain group lasso).
///
/// # Panics
///
/// Panics if `previous_norms` is provided with the wrong length.
pub fn reweighted_group_lasso_penalty(
    weight: &Matrix,
    num_blocks: usize,
    previous_norms: Option<&[f32]>,
) -> (f32, Vec<f32>) {
    let blocks = num_blocks.min(weight.rows()).max(1);
    let partition = BlockPartition::even(weight.rows(), blocks);
    let mut norms = Vec::with_capacity(blocks * weight.cols());
    for &(start, end) in partition.ranges() {
        let block = weight.slice_rows(start, end);
        for c in 0..block.cols() {
            norms.push(block.col_l2_norm(c));
        }
    }
    if let Some(prev) = previous_norms {
        assert_eq!(prev.len(), norms.len(), "previous norm count mismatch");
    }
    let penalty = norms
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let weight = match previous_norms {
                Some(prev) => 1.0 / (prev[i] + 1e-6),
                None => 1.0,
            };
            weight * n
        })
        .sum();
    (penalty, norms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rt3_transformer::{TransformerConfig, TransformerLm};

    fn structured_weight() -> Matrix {
        // columns 0..4 strong in the top block, columns 4..8 strong in the
        // bottom block
        Matrix::from_fn(8, 8, |r, c| {
            let top = r < 4;
            let strong = if top { c < 4 } else { c >= 4 };
            if strong {
                1.0
            } else {
                0.01
            }
        })
    }

    #[test]
    fn fraction_criterion_prunes_weak_columns_per_block() {
        let w = structured_weight();
        let cfg = BlockPruningConfig {
            num_blocks: 2,
            criterion: PruneCriterion::Fraction(0.5),
        };
        let mask = block_prune_matrix(&w, &cfg);
        // top block keeps the first four columns
        for c in 0..4 {
            assert_eq!(mask.get(0, c), 1.0);
            assert_eq!(mask.get(0, c + 4), 0.0);
        }
        // bottom block keeps the last four columns
        for c in 4..8 {
            assert_eq!(mask.get(7, c), 1.0);
            assert_eq!(mask.get(7, c - 4), 0.0);
        }
        assert!((mask.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn threshold_criterion_matches_explicit_cutoff() {
        let w = structured_weight();
        let cfg = BlockPruningConfig {
            num_blocks: 2,
            criterion: PruneCriterion::Threshold(0.5),
        };
        let mask = block_prune_matrix(&w, &cfg);
        assert!((mask.sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn higher_fraction_gives_higher_sparsity() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Matrix::xavier(20, 30, &mut rng);
        let sparsities: Vec<f64> = [0.2, 0.5, 0.8]
            .iter()
            .map(|&f| {
                let cfg = BlockPruningConfig {
                    num_blocks: 4,
                    criterion: PruneCriterion::Fraction(f),
                };
                block_prune_matrix(&w, &cfg).sparsity()
            })
            .collect();
        assert!(sparsities[0] < sparsities[1] && sparsities[1] < sparsities[2]);
    }

    #[test]
    fn block_pruning_preserves_more_energy_than_random() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = Matrix::xavier(24, 24, &mut rng);
        let cfg = BlockPruningConfig {
            num_blocks: 4,
            criterion: PruneCriterion::Fraction(0.5),
        };
        let bp_mask = block_prune_matrix(&w, &cfg);
        let rbp_mask = random_block_prune_matrix(&w, 4, 0.5, &mut rng);
        let energy = |mask: &Matrix| {
            w.zip(mask, |v, m| v * m)
                .as_slice()
                .iter()
                .map(|x| x * x)
                .sum::<f32>()
        };
        assert!(
            energy(&bp_mask) > energy(&rbp_mask),
            "BP should preserve more weight energy than random pruning"
        );
        // both prune the same number of elements
        assert!((bp_mask.sparsity() - rbp_mask.sparsity()).abs() < 0.05);
    }

    #[test]
    fn model_level_pruning_covers_only_prunable_parameters() {
        let model = TransformerLm::new(TransformerConfig::tiny(32), 0);
        let cfg = BlockPruningConfig::default();
        let masks = block_prune_model(&model, &cfg);
        let prunable = model.prunable_parameter_names();
        assert_eq!(masks.len(), prunable.len());
        assert!(masks.get("token_embedding").is_none());
        assert!(masks.get("encoder.0.attn.wq").is_some());
        assert!(masks.overall_sparsity() > 0.3);
    }

    #[test]
    fn reweighted_penalty_pushes_small_groups_harder() {
        let w = structured_weight();
        let (p0, norms) = reweighted_group_lasso_penalty(&w, 2, None);
        let (p1, _) = reweighted_group_lasso_penalty(&w, 2, Some(&norms));
        assert!(p0 > 0.0);
        // reweighting divides by previous norms, so small groups dominate and
        // the penalty value changes
        assert!(p1 > 0.0);
        assert_ne!(p0, p1);
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(BlockPruningConfig {
            num_blocks: 0,
            criterion: PruneCriterion::Fraction(0.5)
        }
        .validate()
        .is_err());
        assert!(BlockPruningConfig {
            num_blocks: 2,
            criterion: PruneCriterion::Fraction(1.0)
        }
        .validate()
        .is_err());
        assert!(BlockPruningConfig {
            num_blocks: 2,
            criterion: PruneCriterion::Threshold(-1.0)
        }
        .validate()
        .is_err());
    }
}
