//! Property-based tests for the telemetry primitives:
//!
//! 1. histogram merging is associative and commutative — per-worker and
//!    per-device histograms must aggregate to the same result in any order;
//! 2. quantiles stay within one bucket width of the exact nearest-rank
//!    sample for arbitrary sample sets and quantiles;
//! 3. the ring buffer always retains exactly the newest `capacity` elements
//!    in order and counts every eviction.

use proptest::prelude::*;
use rt3_telemetry::{RingBuffer, StreamingHistogram};

/// Builds a histogram from a slice of samples.
fn hist(samples: &[f64]) -> StreamingHistogram {
    let mut h = StreamingHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Compares two histograms up to floating-point summation order: bucket
/// contents, counts and extremes must be identical, the sums within a
/// relative epsilon.
fn equivalent(a: &StreamingHistogram, b: &StreamingHistogram) -> bool {
    let sums_close = (a.sum() - b.sum()).abs() <= 1e-9 * a.sum().abs().max(1.0);
    let mut a_norm = a.clone();
    let mut b_norm = b.clone();
    // quantile sweep covers the buckets; min/max/count are compared directly
    let quantiles_match =
        (0..=20).all(|i| a_norm.quantile(i as f64 / 20.0) == b_norm.quantile(i as f64 / 20.0));
    // also require merge-neutrality: merging the empty histogram is identity
    let empty = StreamingHistogram::new();
    a_norm.merge(&empty);
    b_norm.merge(&empty);
    sums_close
        && quantiles_match
        && a.count() == b.count()
        && a.min() == b.min()
        && a.max() == b.max()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: `(a ∪ b) ∪ c == a ∪ (b ∪ c)` and `a ∪ b == b ∪ a`,
    /// up to floating-point summation order of the running sum.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in proptest::collection::vec(0.0f64..1.0e6, 0..200),
        ys in proptest::collection::vec(0.0f64..1.0e6, 0..200),
        zs in proptest::collection::vec(0.0f64..1.0e6, 0..200),
    ) {
        let (a, b, c) = (hist(&xs), hist(&ys), hist(&zs));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);

        prop_assert!(equivalent(&left, &right), "associativity");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert!(equivalent(&ab, &ba), "commutativity");

        // merging must also equal recording everything into one histogram
        let mut all_samples = xs.clone();
        all_samples.extend_from_slice(&ys);
        all_samples.extend_from_slice(&zs);
        prop_assert!(equivalent(&left, &hist(&all_samples)), "merge == record-all");
    }

    /// Invariant 2: for every quantile, the reported value lies within the
    /// bucket of the exact nearest-rank sample (the documented error bound).
    #[test]
    fn quantiles_stay_within_one_bucket_of_exact(
        samples in proptest::collection::vec(0.001f64..1.0e6, 1..500),
        q in 0.0f64..=1.0,
    ) {
        let h = hist(&samples);
        let mut samples = samples;
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
        let exact = samples[rank - 1];
        let (lo, hi) = StreamingHistogram::bucket_bounds(exact);
        let approx = h.quantile(q);
        // the reported value is clamped into the observed range, so the
        // admissible interval is the exact sample's bucket ∩ [min, max]
        let lo = lo.min(exact);
        let hi = hi.max(exact);
        prop_assert!(
            approx >= lo && approx <= hi,
            "q={}: reported {} outside [{}, {}] around exact {}",
            q, approx, lo, hi, exact
        );
        // and the relative error bound the docs promise
        prop_assert!(
            (approx - exact).abs() <= StreamingHistogram::relative_error() * exact.abs() + 1e-12,
            "q={}: reported {} vs exact {} breaks the one-bucket bound",
            q, approx, exact
        );
    }

    /// Invariant 3: after any push sequence the ring holds exactly the
    /// newest `min(len, capacity)` elements in order, and the eviction
    /// count equals what fell off the front.
    #[test]
    fn ring_buffer_retains_newest_in_order_and_counts_evictions(
        capacity in 1usize..40,
        values in proptest::collection::vec(0u32..1_000_000u32, 0..200),
    ) {
        let mut ring = RingBuffer::new(capacity);
        for &v in &values {
            ring.push(v);
        }
        let expected_len = values.len().min(capacity);
        prop_assert_eq!(ring.len(), expected_len);
        prop_assert_eq!(
            ring.overwritten(),
            values.len().saturating_sub(capacity) as u64
        );
        let expected: Vec<u32> = values[values.len() - expected_len..].to_vec();
        prop_assert_eq!(ring.to_vec(), expected, "newest elements, oldest first");
    }
}
