//! Property-based tests for the telemetry primitives:
//!
//! 1. histogram merging is associative and commutative — per-worker and
//!    per-device histograms must aggregate to the same result in any order;
//! 2. quantiles stay within one bucket width of the exact nearest-rank
//!    sample for arbitrary sample sets and quantiles;
//! 3. the ring buffer always retains exactly the newest `capacity` elements
//!    in order and counts every eviction;
//! 4. histogram snapshot deltas re-merge bit-exactly across scrape windows;
//! 5. the scraper's counter deltas are never negative, reconcile with the
//!    cumulative totals, and survive a wall-clock scrub replay.

use proptest::prelude::*;
use rt3_telemetry::{MetricsSnapshot, RingBuffer, Scraper, StreamingHistogram};

/// Builds a histogram from a slice of samples.
fn hist(samples: &[f64]) -> StreamingHistogram {
    let mut h = StreamingHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Compares two histograms up to floating-point summation order: bucket
/// contents, counts and extremes must be identical, the sums within a
/// relative epsilon.
fn equivalent(a: &StreamingHistogram, b: &StreamingHistogram) -> bool {
    let sums_close = (a.sum() - b.sum()).abs() <= 1e-9 * a.sum().abs().max(1.0);
    let mut a_norm = a.clone();
    let mut b_norm = b.clone();
    // quantile sweep covers the buckets; min/max/count are compared directly
    let quantiles_match =
        (0..=20).all(|i| a_norm.quantile(i as f64 / 20.0) == b_norm.quantile(i as f64 / 20.0));
    // also require merge-neutrality: merging the empty histogram is identity
    let empty = StreamingHistogram::new();
    a_norm.merge(&empty);
    b_norm.merge(&empty);
    sums_close
        && quantiles_match
        && a.count() == b.count()
        && a.min() == b.min()
        && a.max() == b.max()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: `(a ∪ b) ∪ c == a ∪ (b ∪ c)` and `a ∪ b == b ∪ a`,
    /// up to floating-point summation order of the running sum.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in proptest::collection::vec(0.0f64..1.0e6, 0..200),
        ys in proptest::collection::vec(0.0f64..1.0e6, 0..200),
        zs in proptest::collection::vec(0.0f64..1.0e6, 0..200),
    ) {
        let (a, b, c) = (hist(&xs), hist(&ys), hist(&zs));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);

        prop_assert!(equivalent(&left, &right), "associativity");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert!(equivalent(&ab, &ba), "commutativity");

        // merging must also equal recording everything into one histogram
        let mut all_samples = xs.clone();
        all_samples.extend_from_slice(&ys);
        all_samples.extend_from_slice(&zs);
        prop_assert!(equivalent(&left, &hist(&all_samples)), "merge == record-all");
    }

    /// Invariant 2: for every quantile, the reported value lies within the
    /// bucket of the exact nearest-rank sample (the documented error bound).
    #[test]
    fn quantiles_stay_within_one_bucket_of_exact(
        samples in proptest::collection::vec(0.001f64..1.0e6, 1..500),
        q in 0.0f64..=1.0,
    ) {
        let h = hist(&samples);
        let mut samples = samples;
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
        let exact = samples[rank - 1];
        let (lo, hi) = StreamingHistogram::bucket_bounds(exact);
        let approx = h.quantile(q);
        // the reported value is clamped into the observed range, so the
        // admissible interval is the exact sample's bucket ∩ [min, max]
        let lo = lo.min(exact);
        let hi = hi.max(exact);
        prop_assert!(
            approx >= lo && approx <= hi,
            "q={}: reported {} outside [{}, {}] around exact {}",
            q, approx, lo, hi, exact
        );
        // and the relative error bound the docs promise
        prop_assert!(
            (approx - exact).abs() <= StreamingHistogram::relative_error() * exact.abs() + 1e-12,
            "q={}: reported {} vs exact {} breaks the one-bucket bound",
            q, approx, exact
        );
    }

    /// Invariant 3: after any push sequence the ring holds exactly the
    /// newest `min(len, capacity)` elements in order, and the eviction
    /// count equals what fell off the front.
    #[test]
    fn ring_buffer_retains_newest_in_order_and_counts_evictions(
        capacity in 1usize..40,
        values in proptest::collection::vec(0u32..1_000_000u32, 0..200),
    ) {
        let mut ring = RingBuffer::new(capacity);
        for &v in &values {
            ring.push(v);
        }
        let expected_len = values.len().min(capacity);
        prop_assert_eq!(ring.len(), expected_len);
        prop_assert_eq!(
            ring.overwritten(),
            values.len().saturating_sub(capacity) as u64
        );
        let expected: Vec<u32> = values[values.len() - expected_len..].to_vec();
        prop_assert_eq!(ring.to_vec(), expected, "newest elements, oldest first");
    }

    /// Invariant 4: snapshotting a cumulative histogram once per window and
    /// re-applying the per-window deltas reconstructs the final histogram
    /// *bit-exactly* — same buckets, same count, and the running sum equal
    /// down to the last mantissa bit (deltas carry end-state absolutes, so
    /// no re-derived arithmetic can round differently).
    #[test]
    fn histogram_delta_re_merge_round_trips_bit_exactly(
        base in proptest::collection::vec(0.0f64..1.0e6, 0..50),
        windows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0e6, 0..50),
            1..6,
        ),
    ) {
        let mut cumulative = hist(&base);
        let mut reconstructed = cumulative.clone();
        let mut prev = cumulative.clone();
        for chunk in &windows {
            for &s in chunk {
                cumulative.record(s);
            }
            let delta = cumulative
                .delta_since(&prev)
                .expect("a grown histogram always yields a delta");
            prop_assert_eq!(delta.count(), chunk.len() as u64, "delta covers the window");
            prop_assert_eq!(
                delta.window_histogram().count(),
                chunk.len() as u64,
                "the window histogram holds exactly this window's samples"
            );
            reconstructed = reconstructed.apply_delta(&delta);
            prev = cumulative.clone();
        }
        prop_assert_eq!(&reconstructed, &cumulative, "bit-exact across scrape windows");
        prop_assert_eq!(reconstructed.sum().to_bits(), cumulative.sum().to_bits());
    }

    /// Invariant 5: scraping a monotone counter sequence never registers a
    /// reset, the per-window deltas sum back to the cumulative totals, and
    /// a wall-clock scrub removes exactly the `_wall_ms` histograms — so
    /// two replays of the same logical run compare equal after scrubbing.
    #[test]
    fn scraper_deltas_reconcile_and_survive_wall_clock_scrub(
        increments in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000, 2),
            1..30,
        ),
    ) {
        let names = ["requests_admitted", "requests_completed"];
        let run = |wall_scale: f64| {
            let mut scraper = Scraper::new(1_000.0, 64, Scraper::default_series());
            let mut totals = [0u64; 2];
            // cumulative like a real registry histogram, but with values
            // that differ between the two replays until scrubbed — the
            // stand-in for nondeterministic wall-clock timings
            let mut wall = StreamingHistogram::new();
            for (t, inc) in increments.iter().enumerate() {
                for (total, delta) in totals.iter_mut().zip(inc) {
                    *total += delta;
                }
                wall.record(wall_scale * (t + 1) as f64);
                let snapshot = MetricsSnapshot {
                    counters: names
                        .iter()
                        .zip(totals)
                        .map(|(n, v)| (n.to_string(), v))
                        .collect(),
                    gauges: vec![("queue_depth".to_string(), t as f64)],
                    histograms: vec![("pool_batch_wall_ms".to_string(), wall.clone())],
                };
                scraper.scrape(t as u32, (t + 1) as f64 * 1_000.0, snapshot);
            }
            (scraper, totals)
        };

        let (mut a, totals) = run(1.0);
        let (mut b, _) = run(7.5);

        prop_assert_eq!(a.counter_resets(), 0, "monotone counters never reset");
        prop_assert_eq!(a.windows_dropped(), 0, "capacity covers the run");
        for (name, total) in names.iter().zip(totals) {
            let sum: u64 = a.windows().iter().map(|w| w.counter(name)).sum();
            prop_assert_eq!(sum, total, "deltas of {} sum to the cumulative total", name);
        }

        a.scrub_wall_clock();
        b.scrub_wall_clock();
        prop_assert!(
            a.windows()
                .iter()
                .all(|w| w.histogram("pool_batch_wall_ms").is_none()),
            "wall-clock histograms are scrubbed"
        );
        prop_assert_eq!(&a, &b, "scrubbed replays are bit-identical");
    }
}
