//! Controller decision audit: what the governor saw, what it chose, and how
//! well the cost model's predictions held up.
//!
//! Each call into the runtime controller produces one [`DecisionRecord`]
//! capturing the inputs (state of charge, thermal cap, dwell since the last
//! switch, predicted time to death, predicted latency at the chosen level)
//! and the outcome (raw governor target, chosen level after hysteresis,
//! whether it counted as a switch). Alongside the bounded decision log the
//! audit accumulates running prediction-vs-actual latency residuals, the
//! ground truth for "is the cost model calibrated?".

use crate::json::{json_f64, label_suffix};
use crate::trace::RingBuffer;

/// One controller decision with its inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// Simulation time of the decision.
    pub t_ms: f64,
    /// Battery state of charge in `[0, 1]` the governor saw.
    pub state_of_charge: f64,
    /// Thermal ceiling on the level index, if the thermal model imposed one.
    pub thermal_cap: Option<usize>,
    /// Level the governor mapped the state of charge to, before hysteresis.
    pub raw_target: usize,
    /// Level actually chosen after hysteresis and the thermal cap.
    pub chosen_level: usize,
    /// Whether the engine counted this as a model/level switch (the first
    /// activation is a load, not a switch).
    pub switched: bool,
    /// Milliseconds spent at the previous level when the decision was made.
    pub dwell_ms: f64,
    /// Predicted time to battery death (`INFINITY` while charging).
    pub time_to_death_ms: f64,
    /// Cost-model latency prediction at the chosen level.
    pub predicted_latency_ms: f64,
}

impl DecisionRecord {
    /// One `{"type":"decision",...}` JSONL line carrying the caller's
    /// `labels`. Non-finite inputs (infinite dwell/time-to-death) serialise
    /// as `null`.
    pub fn to_json(&self, labels: &[(&str, &str)]) -> String {
        let suffix = label_suffix(labels);
        let thermal = match self.thermal_cap {
            Some(cap) => cap.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"type\":\"decision\",\"t_ms\":{},\"soc\":{},\"thermal_cap\":{thermal},\
             \"raw_target\":{},\"chosen_level\":{},\"switched\":{},\"dwell_ms\":{},\
             \"time_to_death_ms\":{},\"predicted_latency_ms\":{}{suffix}}}",
            json_f64(self.t_ms),
            json_f64(self.state_of_charge),
            self.raw_target,
            self.chosen_level,
            self.switched,
            json_f64(self.dwell_ms),
            json_f64(self.time_to_death_ms),
            json_f64(self.predicted_latency_ms)
        )
    }
}

/// Running prediction-vs-actual latency residuals.
///
/// The residual of one request is `actual − predicted` completion latency:
/// positive means the cost model was optimistic, negative pessimistic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResidualStats {
    /// Number of residuals observed.
    pub count: u64,
    /// Sum of signed residuals (bias when divided by `count`).
    pub sum_error_ms: f64,
    /// Sum of absolute residuals (mean absolute error when divided).
    pub sum_abs_error_ms: f64,
    /// Largest under-prediction (`actual − predicted`, positive side).
    pub max_over_ms: f64,
    /// Largest over-prediction magnitude (negative side, stored positive).
    pub max_under_ms: f64,
}

impl ResidualStats {
    /// Folds in one prediction/actual pair. Non-finite inputs are ignored.
    pub fn observe(&mut self, predicted_ms: f64, actual_ms: f64) {
        if !predicted_ms.is_finite() || !actual_ms.is_finite() {
            return;
        }
        let residual = actual_ms - predicted_ms;
        self.count += 1;
        self.sum_error_ms += residual;
        self.sum_abs_error_ms += residual.abs();
        if residual > self.max_over_ms {
            self.max_over_ms = residual;
        }
        if -residual > self.max_under_ms {
            self.max_under_ms = -residual;
        }
    }

    /// Mean signed residual — the model's bias (0 when empty).
    pub fn mean_error_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_error_ms / self.count as f64
        }
    }

    /// Mean absolute residual (0 when empty).
    pub fn mean_abs_error_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_abs_error_ms / self.count as f64
        }
    }

    /// Merges another accumulator into this one (associative).
    pub fn merge(&mut self, other: &ResidualStats) {
        self.count += other.count;
        self.sum_error_ms += other.sum_error_ms;
        self.sum_abs_error_ms += other.sum_abs_error_ms;
        self.max_over_ms = self.max_over_ms.max(other.max_over_ms);
        self.max_under_ms = self.max_under_ms.max(other.max_under_ms);
    }

    /// One `{"type":"residuals",...}` JSONL line carrying the caller's
    /// `labels`.
    pub fn to_json(&self, labels: &[(&str, &str)]) -> String {
        let suffix = label_suffix(labels);
        format!(
            "{{\"type\":\"residuals\",\"count\":{},\"mean_error_ms\":{},\
             \"mean_abs_error_ms\":{},\"max_over_ms\":{},\"max_under_ms\":{}{suffix}}}",
            self.count,
            json_f64(self.mean_error_ms()),
            json_f64(self.mean_abs_error_ms()),
            json_f64(self.max_over_ms),
            json_f64(self.max_under_ms)
        )
    }
}

/// Bounded log of controller decisions plus residual accumulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionAudit {
    ring: RingBuffer<DecisionRecord>,
    residuals: ResidualStats,
}

impl DecisionAudit {
    /// An audit retaining at most `capacity` decisions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: RingBuffer::new(capacity),
            residuals: ResidualStats::default(),
        }
    }

    /// Records one decision, evicting the oldest when the buffer is full.
    pub fn record(&mut self, record: DecisionRecord) {
        self.ring.push(record);
    }

    /// Folds one prediction/actual latency pair into the residuals.
    pub fn record_residual(&mut self, predicted_ms: f64, actual_ms: f64) {
        self.residuals.observe(predicted_ms, actual_ms);
    }

    /// The retained decisions, oldest first.
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        self.ring.to_vec()
    }

    /// How many decisions were evicted to bound memory.
    pub fn overwritten(&self) -> u64 {
        self.ring.overwritten()
    }

    /// The residual statistics accumulated so far.
    pub fn residuals(&self) -> ResidualStats {
        self.residuals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(t_ms: f64, chosen_level: usize, switched: bool) -> DecisionRecord {
        DecisionRecord {
            t_ms,
            state_of_charge: 0.8,
            thermal_cap: None,
            raw_target: chosen_level,
            chosen_level,
            switched,
            dwell_ms: 1_000.0,
            time_to_death_ms: f64::INFINITY,
            predicted_latency_ms: 50.0,
        }
    }

    #[test]
    fn audit_bounds_memory_and_keeps_newest_decisions() {
        let mut audit = DecisionAudit::new(2);
        for t in 0..4 {
            audit.record(decision(t as f64, t, false));
        }
        let kept = audit.decisions();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].t_ms, 2.0);
        assert_eq!(kept[1].t_ms, 3.0);
        assert_eq!(audit.overwritten(), 2);
    }

    #[test]
    fn residuals_track_bias_and_extremes() {
        let mut stats = ResidualStats::default();
        stats.observe(50.0, 58.0); // under-predicted by 8
        stats.observe(50.0, 47.0); // over-predicted by 3
        stats.observe(f64::INFINITY, 10.0); // ignored
        assert_eq!(stats.count, 2);
        assert_eq!(stats.mean_error_ms(), 2.5);
        assert_eq!(stats.mean_abs_error_ms(), 5.5);
        assert_eq!(stats.max_over_ms, 8.0);
        assert_eq!(stats.max_under_ms, 3.0);
        let mut other = ResidualStats::default();
        other.observe(10.0, 30.0);
        stats.merge(&other);
        assert_eq!(stats.count, 3);
        assert_eq!(stats.max_over_ms, 20.0);
    }

    #[test]
    fn decision_json_encodes_infinite_inputs_as_null() {
        let json = decision(5.0, 1, true).to_json(&[("device", "d1")]);
        assert!(json.contains("\"time_to_death_ms\":null"));
        assert!(json.contains("\"thermal_cap\":null"));
        assert!(json.contains("\"switched\":true"));
        assert!(json.contains("\"device\":\"d1\""));
        assert!(!json.contains("inf"));
        let capped = DecisionRecord {
            thermal_cap: Some(1),
            ..decision(6.0, 1, false)
        };
        assert!(capped.to_json(&[]).contains("\"thermal_cap\":1"));
    }
}
