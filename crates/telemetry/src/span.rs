//! Cross-layer request spans: the trace ring reassembled into
//! parent/child timing trees, with a critical-path analyzer that says
//! *where* each deadline was lost.
//!
//! The engine's [`TraceEvent`](crate::TraceEvent)s are flat; a
//! [`SpanForest`] folds them back into per-request span trees (route →
//! admit → queue → batch/infer → respond) plus device-level switch spans,
//! because a governor reconfiguration blocks every queued request and its
//! cost must be attributed to *them*, not to abstract queue time.
//! [`SpanForest::critical_path`] splits each completed request's
//! end-to-end latency into queue / switch / infer segments and names the
//! dominant one; [`SpanForest::miss_attribution`] aggregates that over
//! every deadline miss. Forests from several devices merge for a
//! fleet-level view.

use crate::json::{json_f64, json_str, label_suffix};
use crate::trace::{TraceEvent, TraceEventKind};

/// A segment of a request's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanSegment {
    /// Router picked a device (fleet runs only; zero-width marker).
    Route,
    /// Scheduler admission decision (zero-width marker).
    Admit,
    /// Waiting in the scheduler queue for a batch slot.
    Queue,
    /// Blocked behind a governor level switch (overlaps Queue).
    Switch,
    /// Executing inside a batch.
    Infer,
    /// Completion bookkeeping (zero-width marker).
    Respond,
}

impl SpanSegment {
    /// Short label used in JSONL output.
    pub fn label(&self) -> &'static str {
        match self {
            SpanSegment::Route => "route",
            SpanSegment::Admit => "admit",
            SpanSegment::Queue => "queue",
            SpanSegment::Switch => "switch",
            SpanSegment::Infer => "infer",
            SpanSegment::Respond => "respond",
        }
    }
}

/// One child span inside a request tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Which lifecycle segment this is.
    pub segment: SpanSegment,
    /// Segment start, absolute milliseconds.
    pub start_ms: f64,
    /// Segment end, absolute milliseconds.
    pub end_ms: f64,
}

impl Span {
    /// Segment duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }
}

/// The span tree of one completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpans {
    /// The request the tree belongs to.
    pub request_id: u64,
    /// When it arrived (root span start).
    pub arrival_ms: f64,
    /// When its batch started executing.
    pub start_ms: f64,
    /// When inference finished (root span end).
    pub finish_ms: f64,
    /// Requests in its batch.
    pub batch: usize,
    /// Level ladder position it ran at.
    pub level_pos: usize,
    /// Whether it beat its deadline.
    pub met_deadline: bool,
    /// Cost-model prediction made at admission.
    pub predicted_ms: f64,
    /// Milliseconds of its queue wait spent blocked behind level
    /// switches.
    pub switch_ms: f64,
}

impl RequestSpans {
    /// Time spent waiting in the queue (including any switch overlap).
    pub fn queue_ms(&self) -> f64 {
        self.start_ms - self.arrival_ms
    }

    /// Time spent executing inside the batch.
    pub fn infer_ms(&self) -> f64 {
        self.finish_ms - self.start_ms
    }

    /// End-to-end latency.
    pub fn total_ms(&self) -> f64 {
        self.finish_ms - self.arrival_ms
    }

    /// The ordered child spans of the tree: zero-width admit/respond
    /// markers bracket the measured queue (minus switch overlap), switch
    /// and infer segments.
    pub fn children(&self) -> Vec<Span> {
        let mut spans = vec![Span {
            segment: SpanSegment::Admit,
            start_ms: self.arrival_ms,
            end_ms: self.arrival_ms,
        }];
        if self.switch_ms > 0.0 {
            spans.push(Span {
                segment: SpanSegment::Switch,
                start_ms: self.arrival_ms,
                end_ms: self.arrival_ms + self.switch_ms,
            });
        }
        spans.push(Span {
            segment: SpanSegment::Queue,
            start_ms: self.arrival_ms + self.switch_ms,
            end_ms: self.start_ms,
        });
        spans.push(Span {
            segment: SpanSegment::Infer,
            start_ms: self.start_ms,
            end_ms: self.finish_ms,
        });
        spans.push(Span {
            segment: SpanSegment::Respond,
            start_ms: self.finish_ms,
            end_ms: self.finish_ms,
        });
        spans
    }

    /// The dominant segment of this request's latency and its duration:
    /// the largest of switch overlap, remaining queue wait, and infer
    /// time. Ties break deterministically switch > queue > infer, so the
    /// analyzer blames the most actionable cause first.
    pub fn critical_path(&self) -> (CriticalSegment, f64) {
        let queue_rest = (self.queue_ms() - self.switch_ms).max(0.0);
        let infer = self.infer_ms();
        if self.switch_ms >= queue_rest && self.switch_ms >= infer {
            (CriticalSegment::Switch, self.switch_ms)
        } else if queue_rest >= infer {
            (CriticalSegment::Queue, queue_rest)
        } else {
            (CriticalSegment::Infer, infer)
        }
    }

    /// One `{"type":"span",...}` JSONL line for the whole tree.
    pub fn to_json(&self, labels: &[(&str, &str)]) -> String {
        let (segment, dominant_ms) = self.critical_path();
        format!(
            "{{\"type\":\"span\",\"request_id\":{},\"arrival_ms\":{},\"start_ms\":{},\
             \"finish_ms\":{},\"queue_ms\":{},\"switch_ms\":{},\"infer_ms\":{},\
             \"batch\":{},\"level_pos\":{},\"met_deadline\":{},\"predicted_ms\":{},\
             \"critical\":{},\"critical_ms\":{}{}}}",
            self.request_id,
            json_f64(self.arrival_ms),
            json_f64(self.start_ms),
            json_f64(self.finish_ms),
            json_f64(self.queue_ms()),
            json_f64(self.switch_ms),
            json_f64(self.infer_ms()),
            self.batch,
            self.level_pos,
            self.met_deadline,
            json_f64(self.predicted_ms),
            json_str(segment.label()),
            json_f64(dominant_ms),
            label_suffix(labels)
        )
    }
}

/// A device-level governor reconfiguration span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchSpan {
    /// When the switch started blocking workers.
    pub start_ms: f64,
    /// When workers unblocked.
    pub end_ms: f64,
    /// Level ladder position before.
    pub from_level: usize,
    /// Level ladder position after.
    pub to_level: usize,
}

/// The segment a miss is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CriticalSegment {
    /// Queue wait dominated.
    Queue,
    /// Level-switch blocking dominated.
    Switch,
    /// Inference time dominated.
    Infer,
}

impl CriticalSegment {
    /// Short label used in JSONL output.
    pub fn label(&self) -> &'static str {
        match self {
            CriticalSegment::Queue => "queue",
            CriticalSegment::Switch => "switch",
            CriticalSegment::Infer => "infer",
        }
    }
}

/// Deadline misses grouped by their dominant segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissAttribution {
    /// Misses dominated by queue wait.
    pub queue: u64,
    /// Misses dominated by switch blocking.
    pub switch: u64,
    /// Misses dominated by inference time.
    pub infer: u64,
}

impl MissAttribution {
    /// Total attributed misses.
    pub fn total(&self) -> u64 {
        self.queue + self.switch + self.infer
    }
}

/// Every request span tree and switch span reconstructed from a trace
/// ring (one device), or merged across devices (fleet view).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanForest {
    /// Completed requests, ordered by (arrival, id).
    pub requests: Vec<RequestSpans>,
    /// Governor switches, ordered by start.
    pub switches: Vec<SwitchSpan>,
}

impl SpanForest {
    /// Reassembles span trees from a flat trace: one [`RequestSpans`] per
    /// `Complete` event, one [`SwitchSpan`] per `Switch` event, with each
    /// request's queue wait intersected against the switch spans to
    /// compute its switch overlap.
    pub fn from_trace(events: &[TraceEvent]) -> Self {
        let mut switches = Vec::new();
        for event in events {
            if let TraceEventKind::Switch {
                from_level,
                to_level,
                duration_ms,
            } = event.kind
            {
                switches.push(SwitchSpan {
                    start_ms: event.t_ms,
                    end_ms: event.t_ms + duration_ms,
                    from_level,
                    to_level,
                });
            }
        }
        let mut requests = Vec::new();
        for event in events {
            if let TraceEventKind::Complete {
                arrival_ms,
                start_ms,
                finish_ms,
                batch,
                level_pos,
                met_deadline,
                predicted_ms,
            } = event.kind
            {
                let switch_ms = overlap_total(arrival_ms, start_ms, &switches);
                requests.push(RequestSpans {
                    request_id: event.request_id,
                    arrival_ms,
                    start_ms,
                    finish_ms,
                    batch,
                    level_pos,
                    met_deadline,
                    predicted_ms,
                    switch_ms,
                });
            }
        }
        let mut forest = Self { requests, switches };
        forest.sort();
        forest
    }

    fn sort(&mut self) {
        self.requests.sort_by(|a, b| {
            a.arrival_ms
                .total_cmp(&b.arrival_ms)
                .then(a.request_id.cmp(&b.request_id))
        });
        self.switches
            .sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));
    }

    /// Folds another device's forest into this one (fleet-level merge);
    /// ordering stays deterministic.
    pub fn merge(&mut self, other: &SpanForest) {
        self.requests.extend(other.requests.iter().cloned());
        self.switches.extend(other.switches.iter().copied());
        self.sort();
    }

    /// Attributes every deadline miss to its dominant segment.
    pub fn miss_attribution(&self) -> MissAttribution {
        let mut out = MissAttribution::default();
        for request in self.requests.iter().filter(|r| !r.met_deadline) {
            match request.critical_path().0 {
                CriticalSegment::Queue => out.queue += 1,
                CriticalSegment::Switch => out.switch += 1,
                CriticalSegment::Infer => out.infer += 1,
            }
        }
        out
    }

    /// One JSONL line per request tree plus one per switch span.
    pub fn to_jsonl_lines(&self, labels: &[(&str, &str)]) -> Vec<String> {
        let mut lines: Vec<String> = self.requests.iter().map(|r| r.to_json(labels)).collect();
        for s in &self.switches {
            lines.push(format!(
                "{{\"type\":\"span\",\"segment\":\"switch\",\"start_ms\":{},\"end_ms\":{},\
                 \"from_level\":{},\"to_level\":{}{}}}",
                json_f64(s.start_ms),
                json_f64(s.end_ms),
                s.from_level,
                s.to_level,
                label_suffix(labels)
            ));
        }
        lines
    }
}

/// Total overlap of `[lo, hi]` with the switch spans.
fn overlap_total(lo: f64, hi: f64, switches: &[SwitchSpan]) -> f64 {
    switches
        .iter()
        .map(|s| (s.end_ms.min(hi) - s.start_ms.max(lo)).max(0.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(id: u64, arrival: f64, start: f64, finish: f64, met: bool) -> TraceEvent {
        TraceEvent {
            t_ms: finish,
            request_id: id,
            kind: TraceEventKind::Complete {
                arrival_ms: arrival,
                start_ms: start,
                finish_ms: finish,
                batch: 1,
                level_pos: 0,
                met_deadline: met,
                predicted_ms: 5.0,
            },
        }
    }

    fn switch(at: f64, dur: f64) -> TraceEvent {
        TraceEvent {
            t_ms: at,
            request_id: 0,
            kind: TraceEventKind::Switch {
                from_level: 0,
                to_level: 1,
                duration_ms: dur,
            },
        }
    }

    #[test]
    fn critical_path_blames_the_dominant_segment() {
        let events = vec![
            switch(10.0, 30.0),
            // queued 0..50, switch covers 10..40 of it → switch 30 > queue 20 > infer 5
            complete(1, 0.0, 50.0, 55.0, false),
            // queued 100..102, infer 40 dominates
            complete(2, 100.0, 102.0, 142.0, false),
            // long queue, no switch overlap
            complete(3, 200.0, 290.0, 295.0, false),
        ];
        let forest = SpanForest::from_trace(&events);
        assert_eq!(forest.requests.len(), 3);
        assert_eq!(forest.switches.len(), 1);
        assert_eq!(forest.requests[0].switch_ms, 30.0);
        assert_eq!(
            forest.requests[0].critical_path().0,
            CriticalSegment::Switch
        );
        assert_eq!(forest.requests[1].critical_path().0, CriticalSegment::Infer);
        assert_eq!(forest.requests[2].critical_path().0, CriticalSegment::Queue);
        let attribution = forest.miss_attribution();
        assert_eq!(attribution.queue, 1);
        assert_eq!(attribution.switch, 1);
        assert_eq!(attribution.infer, 1);
        assert_eq!(attribution.total(), 3, "every miss attributed");
    }

    #[test]
    fn children_cover_the_request_without_gaps() {
        let forest =
            SpanForest::from_trace(&[switch(5.0, 10.0), complete(7, 0.0, 30.0, 45.0, true)]);
        let request = &forest.requests[0];
        assert_eq!(request.switch_ms, 10.0);
        let children = request.children();
        // switch + queue + infer tile [arrival, finish] without gaps
        let queue = children
            .iter()
            .find(|s| s.segment == SpanSegment::Queue)
            .unwrap();
        assert_eq!(queue.start_ms, request.arrival_ms + request.switch_ms);
        assert_eq!(queue.end_ms, request.start_ms);
        let covered: f64 = children.iter().map(|s| s.duration_ms()).sum();
        assert_eq!(covered, request.total_ms());
        assert!(children.iter().any(|s| s.segment == SpanSegment::Switch));
    }

    #[test]
    fn fleet_merge_is_ordered_and_serialises() {
        let a = SpanForest::from_trace(&[complete(2, 10.0, 20.0, 30.0, true)]);
        let mut b = SpanForest::from_trace(&[switch(0.0, 5.0), complete(1, 3.0, 8.0, 12.0, false)]);
        b.merge(&a);
        assert_eq!(b.requests[0].request_id, 1, "sorted by arrival after merge");
        assert_eq!(b.requests[1].request_id, 2);
        let lines = b.to_jsonl_lines(&[("fleet", "f0")]);
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.contains("\"type\":\"span\"")));
        assert!(lines.iter().any(|l| l.contains("\"critical\":")));
        assert!(lines.last().unwrap().contains("\"segment\":\"switch\""));
    }
}
