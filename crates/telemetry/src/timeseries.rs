//! Live time-series: a fixed-capacity ring of per-window
//! [`MetricsSnapshot`] deltas and the derived series an operator watches.
//!
//! The runtime's metrics are *cumulative* — counters only grow, histograms
//! only accumulate. A [`Scraper`] turns them into per-window signals: on
//! every window boundary it diffs the current snapshot against the
//! previous one (counter increments, gauge values, histogram deltas via
//! [`StreamingHistogram::delta_since`]) and retains the [`WindowDelta`] in
//! a bounded ring. Derived series ([`SeriesExpr`]) — rates from monotone
//! counters, error ratios, per-window histogram quantiles, EWMA smoothing
//! — are evaluated on demand over the retained windows, so evaluation is a
//! pure function of the ring content and replays bit-exactly.
//!
//! Both window loops feed the same scraper type: the simulated
//! engine/fleet scrape on simulated window boundaries, the socket server
//! scrapes on its wall-clock dispatch tick.

use crate::histogram::{HistogramDelta, StreamingHistogram};
use crate::json::{json_f64, json_str, label_suffix};
use crate::metrics::MetricsSnapshot;
use crate::trace::RingBuffer;

/// The three diffed components of one window: counter increments, gauge
/// values and histogram deltas (the body of a [`WindowDelta`]).
type DeltaParts = (
    Vec<(String, u64)>,
    Vec<(String, f64)>,
    Vec<(String, HistogramDelta)>,
);

/// One scrape window's worth of metric movement.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDelta {
    /// Window index (seconds into a simulated trace, or the server's
    /// window counter).
    pub t_s: u32,
    /// Absolute time of the window end, milliseconds.
    pub end_ms: f64,
    /// Counter increments during the window (every known counter, zeros
    /// included, so series stay dense).
    pub counters: Vec<(String, u64)>,
    /// Gauge values at the window end (unset gauges omitted).
    pub gauges: Vec<(String, f64)>,
    /// Histogram movement during the window (only histograms that recorded
    /// at least one sample).
    pub histograms: Vec<(String, HistogramDelta)>,
}

impl WindowDelta {
    /// Counter increment by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Gauge value by name, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram delta by name, if the window recorded any sample into it.
    pub fn histogram(&self, name: &str) -> Option<&HistogramDelta> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d)
    }

    /// Drops wall-clock histogram deltas (`*_wall_ms`), mirroring
    /// [`MetricsSnapshot::scrub_wall_clock`] so replayed window rings
    /// compare bit-exactly.
    pub fn scrub_wall_clock(&mut self) {
        self.histograms
            .retain(|(name, _)| !name.ends_with("_wall_ms"));
    }
}

/// A derived series: how to turn the retained window deltas into one
/// `(t_s, value)` sequence. Evaluation is pure — same windows, same
/// points.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesExpr {
    /// Per-second rate of a monotone counter (window increment divided by
    /// the window length).
    CounterRate(String),
    /// Raw per-window increment of a monotone counter.
    CounterDelta(String),
    /// Gauge value at each window end (windows where the gauge is unset
    /// yield no point).
    Gauge(String),
    /// `sum(numer increments) / sum(denom increments)` per window; windows
    /// with a zero denominator yield 0 (an idle window has no errors).
    Ratio {
        /// Counter names summed into the numerator.
        numer: Vec<String>,
        /// Counter names summed into the denominator.
        denom: Vec<String>,
    },
    /// Per-window quantile of a histogram's delta (windows where the
    /// histogram recorded nothing yield no point).
    HistogramQuantile {
        /// Histogram name.
        name: String,
        /// Quantile in `[0, 1]`.
        q: f64,
    },
    /// Exponentially-weighted moving average over the inner series:
    /// `e_0 = v_0`, `e_i = alpha·v_i + (1-alpha)·e_{i-1}`, folded over the
    /// retained points oldest-first.
    Ewma {
        /// The series being smoothed.
        inner: Box<SeriesExpr>,
        /// Smoothing factor in `(0, 1]`; higher tracks faster.
        alpha: f64,
    },
}

impl SeriesExpr {
    /// Whether each window's point depends on that window alone — true
    /// for everything except EWMA, whose fold carries history. Pointwise
    /// expressions evaluate identically over any suffix of the ring.
    fn pointwise(&self) -> bool {
        !matches!(self, SeriesExpr::Ewma { .. })
    }
}

/// One sample of a derived series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Window index the sample belongs to.
    pub t_s: u32,
    /// Series value for that window.
    pub value: f64,
}

impl SeriesPoint {
    /// One `{"type":"series",...}` JSONL line carrying the caller's
    /// `labels`.
    pub fn to_json(&self, name: &str, labels: &[(&str, &str)]) -> String {
        format!(
            "{{\"type\":\"series\",\"name\":{},\"t_s\":{},\"value\":{}{}}}",
            json_str(name),
            self.t_s,
            json_f64(self.value),
            label_suffix(labels)
        )
    }
}

/// Scrapes a cumulative [`MetricsSnapshot`] on window boundaries into a
/// bounded ring of [`WindowDelta`]s and evaluates named derived series
/// over them.
#[derive(Debug, Clone, PartialEq)]
pub struct Scraper {
    window_ms: f64,
    prev: Option<MetricsSnapshot>,
    windows: RingBuffer<WindowDelta>,
    series: Vec<(String, SeriesExpr)>,
    scrapes: u64,
    counter_resets: u64,
}

impl Scraper {
    /// A scraper retaining at most `capacity` windows of `window_ms`
    /// length, evaluating the given named `series`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(window_ms: f64, capacity: usize, series: Vec<(String, SeriesExpr)>) -> Self {
        Self {
            window_ms,
            prev: None,
            windows: RingBuffer::new(capacity),
            series,
            scrapes: 0,
            counter_resets: 0,
        }
    }

    /// The dashboard set both serving paths export by default: admission
    /// and completion rates, the terminal-outcome miss ratio (and its
    /// EWMA), queue depth, battery signals and the per-window p95 latency.
    /// Names reference the runtime/server metric contract of DESIGN.md §9;
    /// series whose metrics a source does not register simply stay empty.
    pub fn default_series() -> Vec<(String, SeriesExpr)> {
        let miss_ratio = SeriesExpr::Ratio {
            numer: vec![
                "deadline_missed".into(),
                "requests_rejected_queue_full".into(),
                "requests_rejected_certain_miss".into(),
                "requests_dropped_dead".into(),
            ],
            denom: vec![
                "requests_admitted".into(),
                "requests_rejected_queue_full".into(),
                "requests_rejected_certain_miss".into(),
            ],
        };
        vec![
            (
                "admitted_per_s".into(),
                SeriesExpr::CounterRate("requests_admitted".into()),
            ),
            (
                "completed_per_s".into(),
                SeriesExpr::CounterRate("requests_completed".into()),
            ),
            ("miss_rate".into(), miss_ratio.clone()),
            (
                "miss_rate_ewma".into(),
                SeriesExpr::Ewma {
                    inner: Box::new(miss_ratio),
                    alpha: 0.3,
                },
            ),
            (
                "queue_depth".into(),
                SeriesExpr::Gauge("queue_depth".into()),
            ),
            (
                "state_of_charge".into(),
                SeriesExpr::Gauge("state_of_charge".into()),
            ),
            (
                "time_to_death_ms".into(),
                SeriesExpr::Gauge("time_to_death_ms".into()),
            ),
            (
                "p95_latency_ms".into(),
                SeriesExpr::HistogramQuantile {
                    name: "latency_ms".into(),
                    q: 0.95,
                },
            ),
        ]
    }

    /// Window length in milliseconds.
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }

    /// Diffs `snapshot` against the previous scrape and retains the
    /// resulting [`WindowDelta`]. A counter or histogram that moved
    /// backwards means the source was reset, not extended; the scrape then
    /// treats the whole snapshot as this window's movement and counts the
    /// reset (monotone sources — everything in this workspace — never
    /// trigger it).
    pub fn scrape(&mut self, t_s: u32, end_ms: f64, snapshot: MetricsSnapshot) {
        self.scrapes += 1;
        // the hot path: consecutive scrapes of one registry are positionally
        // aligned, and the consumed previous snapshot donates its name
        // allocations to the retained delta — the steady-state scrape
        // allocates no strings at all
        let delta = match self.prev.take() {
            Some(prev) if Self::aligned(&prev, &snapshot) => Self::diff_aligned(prev, &snapshot),
            Some(prev) => Self::diff(&prev, &snapshot),
            None => None,
        };
        let (counters, gauges, histograms) = match delta {
            Some(delta) => delta,
            None => {
                if self.scrapes > 1 {
                    self.counter_resets += 1;
                }
                let empty = MetricsSnapshot::default();
                Self::diff(&empty, &snapshot).expect("an empty baseline never shrinks")
            }
        };
        self.windows.push(WindowDelta {
            t_s,
            end_ms,
            counters,
            gauges,
            histograms,
        });
        self.prev = Some(snapshot);
    }

    /// Whether `prev` and `cur` hold the same metric names in the same
    /// order — true for consecutive snapshots of one registry, whose
    /// layout is append-only.
    fn aligned(prev: &MetricsSnapshot, cur: &MetricsSnapshot) -> bool {
        prev.counters.len() == cur.counters.len()
            && prev.gauges.len() == cur.gauges.len()
            && prev.histograms.len() == cur.histograms.len()
            && prev
                .counters
                .iter()
                .zip(&cur.counters)
                .all(|((a, _), (b, _))| a == b)
            && prev
                .gauges
                .iter()
                .zip(&cur.gauges)
                .all(|((a, _), (b, _))| a == b)
            && prev
                .histograms
                .iter()
                .zip(&cur.histograms)
                .all(|((a, _), (b, _))| a == b)
    }

    /// Positionally diffs `cur` against a consumed aligned `prev`, moving
    /// `prev`'s name strings into the output; `None` when a counter or
    /// histogram moved backwards (the source was reset, not extended).
    #[allow(clippy::type_complexity)]
    fn diff_aligned(prev: MetricsSnapshot, cur: &MetricsSnapshot) -> Option<DeltaParts> {
        let mut counters = Vec::with_capacity(cur.counters.len());
        for ((name, before), &(_, value)) in prev.counters.into_iter().zip(&cur.counters) {
            if value < before {
                return None;
            }
            counters.push((name, value - before));
        }
        let mut gauges = Vec::with_capacity(cur.gauges.len());
        for ((name, _), &(_, value)) in prev.gauges.into_iter().zip(&cur.gauges) {
            gauges.push((name, value));
        }
        let mut histograms = Vec::with_capacity(cur.histograms.len());
        for ((name, before), (_, value)) in prev.histograms.into_iter().zip(&cur.histograms) {
            let delta = value.delta_since(&before)?;
            if !delta.is_empty() {
                histograms.push((name, delta));
            }
        }
        Some((counters, gauges, histograms))
    }

    /// Diffs `cur` against `prev` by name — the slow path for sources that
    /// re-registered metrics between scrapes; `None` when any counter or
    /// histogram moved backwards or disappeared (the source was reset, not
    /// extended).
    #[allow(clippy::type_complexity)]
    fn diff(prev: &MetricsSnapshot, cur: &MetricsSnapshot) -> Option<DeltaParts> {
        let mut counters = Vec::with_capacity(cur.counters.len());
        for (name, value) in &cur.counters {
            let before = prev.counter(name).unwrap_or(0);
            if *value < before {
                return None;
            }
            counters.push((name.clone(), value - before));
        }
        if prev
            .counters
            .iter()
            .any(|(name, before)| *before > 0 && cur.counter(name).is_none())
        {
            return None;
        }
        let fresh = StreamingHistogram::default();
        let mut histograms = Vec::with_capacity(cur.histograms.len());
        for (name, value) in &cur.histograms {
            let before = prev.histogram(name).unwrap_or(&fresh);
            let delta = value.delta_since(before)?;
            if !delta.is_empty() {
                histograms.push((name.clone(), delta));
            }
        }
        if prev
            .histograms
            .iter()
            .any(|(name, before)| before.count() > 0 && cur.histogram(name).is_none())
        {
            return None;
        }
        Some((counters, cur.gauges.clone(), histograms))
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> Vec<WindowDelta> {
        self.windows.to_vec()
    }

    /// Scrapes performed so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes
    }

    /// Windows evicted from the ring to bound memory.
    pub fn windows_dropped(&self) -> u64 {
        self.windows.overwritten()
    }

    /// Non-monotone scrapes observed (should be 0 for every source in this
    /// workspace; the counter is how a consumer detects a restarted
    /// source).
    pub fn counter_resets(&self) -> u64 {
        self.counter_resets
    }

    /// The configured named series.
    pub fn series(&self) -> &[(String, SeriesExpr)] {
        &self.series
    }

    /// Evaluates one series expression over the retained windows.
    pub fn evaluate(&self, expr: &SeriesExpr) -> Vec<SeriesPoint> {
        // references only: evaluation is on the per-window alert path, so
        // it must not deep-clone the retained ring
        let windows: Vec<&WindowDelta> = self.windows.iter().collect();
        Self::evaluate_over(&windows, self.window_ms, expr)
    }

    /// Evaluates `expr` over only the newest `tail` windows — exact for
    /// pointwise expressions (every variant except EWMA maps each window
    /// to its point independently); a history-folding expression falls
    /// back to the full ring so smoothing stays correct. This keeps the
    /// per-window alert evaluation O(tail) instead of O(retained).
    pub fn evaluate_tail(&self, expr: &SeriesExpr, tail: usize) -> Vec<SeriesPoint> {
        if !expr.pointwise() {
            return self.evaluate(expr);
        }
        let skip = self.windows.len().saturating_sub(tail);
        let windows: Vec<&WindowDelta> = self.windows.iter().skip(skip).collect();
        Self::evaluate_over(&windows, self.window_ms, expr)
    }

    /// Evaluates every configured named series.
    pub fn evaluate_named(&self) -> Vec<(String, Vec<SeriesPoint>)> {
        let windows: Vec<&WindowDelta> = self.windows.iter().collect();
        self.series
            .iter()
            .map(|(name, expr)| {
                (
                    name.clone(),
                    Self::evaluate_over(&windows, self.window_ms, expr),
                )
            })
            .collect()
    }

    fn evaluate_over(
        windows: &[&WindowDelta],
        window_ms: f64,
        expr: &SeriesExpr,
    ) -> Vec<SeriesPoint> {
        match expr {
            SeriesExpr::CounterRate(name) => windows
                .iter()
                .map(|w| SeriesPoint {
                    t_s: w.t_s,
                    value: w.counter(name) as f64 / (window_ms / 1_000.0),
                })
                .collect(),
            SeriesExpr::CounterDelta(name) => windows
                .iter()
                .map(|w| SeriesPoint {
                    t_s: w.t_s,
                    value: w.counter(name) as f64,
                })
                .collect(),
            SeriesExpr::Gauge(name) => windows
                .iter()
                .filter_map(|w| w.gauge(name).map(|value| SeriesPoint { t_s: w.t_s, value }))
                .collect(),
            SeriesExpr::Ratio { numer, denom } => windows
                .iter()
                .map(|w| {
                    let n: u64 = numer.iter().map(|name| w.counter(name)).sum();
                    let d: u64 = denom.iter().map(|name| w.counter(name)).sum();
                    SeriesPoint {
                        t_s: w.t_s,
                        value: if d == 0 { 0.0 } else { n as f64 / d as f64 },
                    }
                })
                .collect(),
            SeriesExpr::HistogramQuantile { name, q } => windows
                .iter()
                .filter_map(|w| {
                    w.histogram(name).map(|delta| SeriesPoint {
                        t_s: w.t_s,
                        value: delta.window_histogram().quantile(*q),
                    })
                })
                .collect(),
            SeriesExpr::Ewma { inner, alpha } => {
                let mut smoothed = None;
                Self::evaluate_over(windows, window_ms, inner)
                    .into_iter()
                    .map(|p| {
                        let e = match smoothed {
                            None => p.value,
                            Some(prev) => alpha * p.value + (1.0 - alpha) * prev,
                        };
                        smoothed = Some(e);
                        SeriesPoint {
                            t_s: p.t_s,
                            value: e,
                        }
                    })
                    .collect()
            }
        }
    }

    /// Drops wall-clock histogram deltas from every retained window (see
    /// [`WindowDelta::scrub_wall_clock`]), and forgets the wall-clock
    /// histograms of the last scrape so the next delta stays consistent.
    pub fn scrub_wall_clock(&mut self) {
        let mut ring = RingBuffer::new(self.windows.capacity());
        for mut w in self.windows.to_vec() {
            w.scrub_wall_clock();
            ring.push(w);
        }
        self.windows = ring;
        if let Some(prev) = &mut self.prev {
            prev.scrub_wall_clock();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamingHistogram;

    fn snapshot(completed: u64, missed: u64, latencies: &[f64]) -> MetricsSnapshot {
        let mut h = StreamingHistogram::new();
        for &l in latencies {
            h.record(l);
        }
        MetricsSnapshot {
            counters: vec![
                ("requests_admitted".into(), completed + missed),
                ("requests_completed".into(), completed),
                ("deadline_missed".into(), missed),
            ],
            gauges: vec![("queue_depth".into(), missed as f64)],
            histograms: vec![("latency_ms".into(), h)],
        }
    }

    #[test]
    fn scrape_diffs_counters_gauges_and_histograms_per_window() {
        let mut scraper = Scraper::new(1_000.0, 8, Vec::new());
        scraper.scrape(0, 1_000.0, snapshot(5, 1, &[10.0; 6]));
        scraper.scrape(1, 2_000.0, snapshot(9, 1, &[10.0; 10]));
        let windows = scraper.windows();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].counter("requests_completed"), 5);
        assert_eq!(windows[1].counter("requests_completed"), 4);
        assert_eq!(windows[1].counter("deadline_missed"), 0);
        assert_eq!(windows[1].gauge("queue_depth"), Some(1.0));
        assert_eq!(windows[0].histogram("latency_ms").unwrap().count(), 6);
        assert_eq!(windows[1].histogram("latency_ms").unwrap().count(), 4);
        assert_eq!(scraper.counter_resets(), 0);
        assert_eq!(scraper.scrapes(), 2);
    }

    #[test]
    fn rates_ratios_quantiles_and_ewma_evaluate_over_windows() {
        let mut scraper = Scraper::new(500.0, 8, Scraper::default_series());
        scraper.scrape(0, 500.0, snapshot(4, 0, &[10.0; 4]));
        scraper.scrape(
            1,
            1_000.0,
            snapshot(6, 2, &[10.0, 10.0, 10.0, 10.0, 40.0, 40.0]),
        );
        let rate = scraper.evaluate(&SeriesExpr::CounterRate("requests_completed".into()));
        assert_eq!(rate[0].value, 8.0, "4 completions in half a second");
        assert_eq!(rate[1].value, 4.0);
        let miss = scraper.evaluate(&SeriesExpr::Ratio {
            numer: vec!["deadline_missed".into()],
            denom: vec!["requests_admitted".into()],
        });
        assert_eq!(miss[0].value, 0.0);
        assert_eq!(miss[1].value, 0.5, "2 misses over 4 admissions");
        let p95 = scraper.evaluate(&SeriesExpr::HistogramQuantile {
            name: "latency_ms".into(),
            q: 0.95,
        });
        assert!(p95[0].value < 11.0);
        assert!(
            p95[1].value >= 39.0,
            "the window's own tail, not the cumulative one"
        );
        let ewma = scraper.evaluate(&SeriesExpr::Ewma {
            inner: Box::new(SeriesExpr::Ratio {
                numer: vec!["deadline_missed".into()],
                denom: vec!["requests_admitted".into()],
            }),
            alpha: 0.5,
        });
        assert_eq!(ewma[0].value, 0.0);
        assert_eq!(ewma[1].value, 0.25);
        // the named dashboard set evaluates without panicking
        let named = scraper.evaluate_named();
        assert!(named.iter().any(|(n, _)| n == "miss_rate"));
    }

    #[test]
    fn ring_bounds_windows_and_resets_are_detected() {
        let mut scraper = Scraper::new(1_000.0, 2, Vec::new());
        for t in 0..4u32 {
            scraper.scrape(t, (t + 1) as f64 * 1_000.0, snapshot(t as u64 + 1, 0, &[]));
        }
        assert_eq!(scraper.windows().len(), 2);
        assert_eq!(scraper.windows_dropped(), 2);
        assert_eq!(scraper.windows()[0].t_s, 2, "oldest windows evicted first");
        // a shrunk counter is a reset: the scrape falls back to absolutes
        scraper.scrape(4, 5_000.0, snapshot(1, 0, &[]));
        assert_eq!(scraper.counter_resets(), 1);
        assert_eq!(
            scraper
                .windows()
                .last()
                .unwrap()
                .counter("requests_completed"),
            1
        );
    }

    #[test]
    fn series_points_serialise_as_jsonl() {
        let p = SeriesPoint {
            t_s: 7,
            value: 0.25,
        };
        let line = p.to_json("miss_rate", &[("device", "d0")]);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"type\":\"series\""));
        assert!(line.contains("\"name\":\"miss_rate\""));
        assert!(line.contains("\"t_s\":7"));
        assert!(line.contains("\"device\":\"d0\""));
    }
}
