//! # rt3-telemetry
//!
//! Zero-dependency observability layer of the RT3 runtime: streaming
//! metrics, request-lifecycle tracing and a controller decision audit.
//! The serving engine's core claim is a run-time *dance* — the controller
//! reconfiguring V/F levels and sparse models against battery drain — and
//! this crate produces the evidence: why a switch fired, where a missed
//! deadline spent its time, and what the cost model predicted versus what
//! actually happened.
//!
//! The building blocks:
//!
//! * [`StreamingHistogram`] — log-bucketed, bounded-memory, mergeable
//!   latency histogram with quantile error of at most one bucket width
//!   (≈ 3% relative). Per-device and per-worker histograms merge
//!   associatively, so fleet aggregates never need the raw samples.
//! * [`MetricRegistry`] / [`MetricShard`] — interned metric names with
//!   plain-index shards: the hot path is an array add with no locks and no
//!   hashing; shards merge into aggregates at window boundaries.
//! * [`TraceRecorder`] — a bounded ring buffer of per-request span events
//!   (admit → infer → complete/miss/reject/drop), exportable as JSONL.
//! * [`DecisionAudit`] — a bounded ring buffer of controller decisions with
//!   their inputs (state of charge, dwell, time to death, predicted
//!   latency) plus running prediction-vs-actual residual statistics.
//! * [`Clock`] — the wall-time source behind kernel/build timings, with a
//!   deterministic [`ManualClock`] so tests never depend on the host.
//!
//! Everything sits behind a [`TelemetryConfig`] with three levels:
//! [`TelemetryLevel::Off`] (the default — behaviour and overhead identical
//! to an uninstrumented build), [`TelemetryLevel::Counters`]
//! (counters/gauges/histograms only; the <3% overhead budget of the CI
//! gate applies here) and [`TelemetryLevel::Full`] (adds tracing and the
//! decision audit).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alert;
mod audit;
mod clock;
mod config;
mod histogram;
mod json;
mod metrics;
mod span;
mod timeseries;
mod trace;

pub use alert::{
    AlertCondition, AlertEngine, AlertRule, AlertState, AlertTransition, Compare, ObsPlane,
    ObsSnapshot,
};
pub use audit::{DecisionAudit, DecisionRecord, ResidualStats};
pub use clock::{Clock, ManualClock, WallClock};
pub use config::{TelemetryConfig, TelemetryLevel};
pub use histogram::{HistogramDelta, StreamingHistogram};
pub use json::{json_f64, json_str};
pub use metrics::{CounterId, GaugeId, HistogramId, MetricRegistry, MetricShard, MetricsSnapshot};
pub use span::{
    CriticalSegment, MissAttribution, RequestSpans, Span, SpanForest, SpanSegment, SwitchSpan,
};
pub use timeseries::{Scraper, SeriesExpr, SeriesPoint, WindowDelta};
pub use trace::{RingBuffer, TraceEvent, TraceEventKind, TraceRecorder};

/// Everything one instrumented run produced, detached from the live
/// recording machinery so it can ride inside a report: the merged metric
/// snapshot, the (possibly truncated) trace and decision audit, and the
/// cost-model residual statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Level the run recorded at.
    pub level: TelemetryLevel,
    /// Counters, gauges and histograms by name.
    pub metrics: MetricsSnapshot,
    /// Request-lifecycle events in record order (empty below
    /// [`TelemetryLevel::Full`]).
    pub trace: Vec<TraceEvent>,
    /// Events evicted from the trace ring buffer before the snapshot.
    pub trace_overwritten: u64,
    /// Controller decisions in record order (empty below
    /// [`TelemetryLevel::Full`]).
    pub decisions: Vec<DecisionRecord>,
    /// Decisions evicted from the audit ring buffer before the snapshot.
    pub decisions_overwritten: u64,
    /// Prediction-vs-actual latency residuals accumulated by the audit.
    pub residuals: ResidualStats,
    /// The observability plane's view — evaluated series and the alert
    /// log — when the source ran one (`None` below
    /// [`TelemetryLevel::Full`], and on merged fleet aggregates: series
    /// from different sources don't sum point-wise, so consumers merge
    /// raw metrics and re-derive).
    pub obs: Option<ObsSnapshot>,
}

impl TelemetrySnapshot {
    /// Merges another device's snapshot into this one to build a fleet-wide
    /// aggregate: metrics merge by name ([`MetricsSnapshot::merge`] —
    /// counters add, histograms bucket-merge, gauges last-wins), traces and
    /// decision audits concatenate in merge order, overwrite counts add, and
    /// residual statistics accumulate. The recorded level is the lower of
    /// the two, so a merged snapshot never claims data a member never
    /// collected.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.level = self.level.min(other.level);
        self.metrics.merge(&other.metrics);
        self.trace.extend(other.trace.iter().cloned());
        self.trace_overwritten += other.trace_overwritten;
        self.decisions.extend(other.decisions.iter().cloned());
        self.decisions_overwritten += other.decisions_overwritten;
        self.residuals.merge(&other.residuals);
        // Evaluated series are per-source; a fleet view re-derives from the
        // merged metrics (or uses SpanForest::merge for spans).
        self.obs = None;
    }

    /// Reassembles the trace into per-request span trees with switch
    /// overlap attribution (empty below [`TelemetryLevel::Full`]).
    pub fn spans(&self) -> SpanForest {
        SpanForest::from_trace(&self.trace)
    }

    /// Drops series measured against the real clock (see
    /// [`MetricsSnapshot::scrub_wall_clock`]); the rest of a simulated
    /// run's snapshot is seed-deterministic and replay-comparable.
    pub fn scrub_wall_clock(&mut self) {
        self.metrics.scrub_wall_clock();
    }

    /// Serialises the whole snapshot as JSONL: one `{"type": "metric", ...}`
    /// line per metric, one `{"type": "trace", ...}` line per span event,
    /// one `{"type": "decision", ...}` line per audited decision, one
    /// `{"type": "ring", ...}` accounting line (so a consumer reassembling
    /// spans can tell a complete trace from a truncated one instead of
    /// silently reconstructing partial trees), and — when an observability
    /// plane ran — the series/alert lines, each carrying the caller's
    /// extra `labels` (e.g. the device name).
    pub fn to_jsonl(&self, labels: &[(&str, &str)]) -> String {
        let mut out = String::new();
        for line in self.metrics.to_jsonl_lines(labels) {
            out.push_str(&line);
            out.push('\n');
        }
        for event in &self.trace {
            out.push_str(&event.to_json(labels));
            out.push('\n');
        }
        for decision in &self.decisions {
            out.push_str(&decision.to_json(labels));
            out.push('\n');
        }
        out.push_str(&self.residuals.to_json(labels));
        out.push('\n');
        out.push_str(&format!(
            "{{\"type\":\"ring\",\"trace_overwritten\":{},\"decisions_overwritten\":{}{}}}\n",
            self.trace_overwritten,
            self.decisions_overwritten,
            json::label_suffix(labels)
        ));
        if let Some(obs) = &self.obs {
            for line in obs.to_jsonl_lines(labels) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_merge_aggregates_every_section() {
        fn device_snapshot(served: u64, latency: f64) -> TelemetrySnapshot {
            let mut registry = MetricRegistry::new();
            let c = registry.counter("served");
            let h = registry.histogram("latency_ms");
            let mut shard = registry.shard();
            shard.add(c, served);
            shard.record(h, latency);
            let mut audit = DecisionAudit::new(4);
            audit.record_residual(50.0, latency);
            TelemetrySnapshot {
                level: TelemetryLevel::Full,
                metrics: registry.snapshot(&shard),
                trace: vec![TraceEvent {
                    t_ms: latency,
                    request_id: served,
                    kind: TraceEventKind::Admit {
                        deadline_ms: latency + 400.0,
                        queue_depth: 0,
                        predicted_ms: latency,
                    },
                }],
                trace_overwritten: 1,
                decisions: Vec::new(),
                decisions_overwritten: 0,
                residuals: audit.residuals(),
                obs: Some(ObsPlane::standard(1_000.0, 8).snapshot()),
            }
        }
        let mut fleet = device_snapshot(3, 10.0);
        let counters_only = TelemetrySnapshot {
            level: TelemetryLevel::Counters,
            ..device_snapshot(4, 30.0)
        };
        fleet.merge(&counters_only);
        assert_eq!(fleet.level, TelemetryLevel::Counters, "lowest level wins");
        assert_eq!(fleet.metrics.counter("served"), Some(7));
        assert_eq!(fleet.metrics.histogram("latency_ms").unwrap().count(), 2);
        assert_eq!(fleet.trace.len(), 2);
        assert_eq!(fleet.trace_overwritten, 2);
        assert_eq!(fleet.residuals.count, 2);
        assert!(
            fleet.obs.is_none(),
            "per-source series don't merge; fleet views re-derive"
        );
    }

    #[test]
    fn snapshot_jsonl_emits_every_section_with_labels() {
        let mut registry = MetricRegistry::new();
        let c = registry.counter("served");
        let g = registry.gauge("soc");
        let h = registry.histogram("latency_ms");
        let mut shard = registry.shard();
        shard.add(c, 3);
        shard.set(g, 0.5);
        shard.record(h, 12.0);
        let mut trace = TraceRecorder::new(8);
        trace.record(TraceEvent {
            t_ms: 1.0,
            request_id: 7,
            kind: TraceEventKind::Reject {
                reason: "queue-full",
            },
        });
        let mut audit = DecisionAudit::new(8);
        audit.record(DecisionRecord {
            t_ms: 0.0,
            state_of_charge: 0.9,
            thermal_cap: None,
            raw_target: 2,
            chosen_level: 2,
            switched: false,
            dwell_ms: f64::INFINITY,
            time_to_death_ms: f64::INFINITY,
            predicted_latency_ms: 55.0,
        });
        audit.record_residual(50.0, 58.0);
        let snapshot = TelemetrySnapshot {
            level: TelemetryLevel::Full,
            metrics: registry.snapshot(&shard),
            trace: trace.events(),
            trace_overwritten: trace.overwritten(),
            decisions: audit.decisions(),
            decisions_overwritten: audit.overwritten(),
            residuals: audit.residuals(),
            obs: None,
        };
        let jsonl = snapshot.to_jsonl(&[("device", "d0")]);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines.len(),
            3 + 1 + 1 + 1 + 1,
            "metrics + trace + decision + residuals + ring accounting"
        );
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines.iter().all(|l| l.contains("\"device\":\"d0\"")));
        assert!(jsonl.contains("\"type\":\"metric\""));
        assert!(jsonl.contains("\"type\":\"trace\""));
        assert!(jsonl.contains("\"type\":\"decision\""));
        assert!(jsonl.contains("\"type\":\"residuals\""));
        assert!(jsonl.contains("\"type\":\"ring\""));
        assert!(jsonl.contains("\"trace_overwritten\":0"));
        // non-finite inputs must serialise as null, not `inf`
        assert!(
            !jsonl.contains("inf"),
            "JSONL must stay valid JSON: {jsonl}"
        );
    }
}
