//! Request-lifecycle tracing: a bounded ring buffer of span events.
//!
//! Every request moving through the engine leaves a short trail — admitted
//! (or rejected) by the scheduler, inferred inside a batch, completed
//! against its deadline, or dropped at shutdown. The [`TraceRecorder`]
//! keeps the most recent events in a fixed-capacity [`RingBuffer`] and
//! counts what it had to overwrite, so a long run degrades to "recent
//! history plus an eviction count" instead of unbounded memory.

use crate::json::{json_f64, json_str, label_suffix};

/// Fixed-capacity overwrite-oldest buffer that counts evictions.
#[derive(Debug, Clone, PartialEq)]
pub struct RingBuffer<T> {
    slots: Vec<T>,
    capacity: usize,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    overwritten: u64,
}

impl<T: Clone> RingBuffer<T> {
    /// An empty buffer holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        Self {
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            overwritten: 0,
        }
    }

    /// Appends `value`, evicting (and counting) the oldest element when full.
    pub fn push(&mut self, value: T) {
        if self.slots.len() < self.capacity {
            self.slots.push(value);
        } else {
            self.slots[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Number of retained elements.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Maximum number of retained elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// How many elements were evicted to make room.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The retained elements, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.head..]);
        out.extend_from_slice(&self.slots[..self.head]);
        out
    }

    /// Borrowing iterator over the retained elements, oldest first — the
    /// clone-free counterpart of [`RingBuffer::to_vec`] for hot paths that
    /// only read.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots[self.head..]
            .iter()
            .chain(&self.slots[..self.head])
    }
}

/// What happened to a request at one point in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// The scheduler accepted the request into its queue.
    Admit {
        /// Absolute deadline of the request.
        deadline_ms: f64,
        /// Queue depth right after admission.
        queue_depth: usize,
        /// Cost-model latency prediction at admission, if one was made.
        predicted_ms: f64,
    },
    /// The scheduler turned the request away.
    Reject {
        /// Which admission rule fired.
        reason: &'static str,
    },
    /// The request was dispatched into a batch for inference.
    Infer {
        /// When its batch started executing.
        start_ms: f64,
        /// Requests in the batch.
        batch: usize,
        /// Position of the active model in the level ladder.
        level_pos: usize,
    },
    /// The request finished; the full timing breakdown.
    Complete {
        /// When the request arrived.
        arrival_ms: f64,
        /// When its batch started (queue wait = `start_ms - arrival_ms`).
        start_ms: f64,
        /// When inference finished (infer time = `finish_ms - start_ms`).
        finish_ms: f64,
        /// Requests in the batch.
        batch: usize,
        /// Position of the active model in the level ladder.
        level_pos: usize,
        /// Whether it beat its deadline.
        met_deadline: bool,
        /// Cost-model latency prediction at admission, if one was made.
        predicted_ms: f64,
    },
    /// The request was discarded without running.
    Drop {
        /// Why it was discarded (e.g. the device died).
        reason: &'static str,
    },
    /// The governor reconfigured the active model level; workers were
    /// blocked for `duration_ms` (`request_id` is 0 — a switch belongs to
    /// the device, and overlaps every queued request's wait).
    Switch {
        /// Level ladder position before the switch.
        from_level: usize,
        /// Level ladder position after the switch.
        to_level: usize,
        /// How long workers were blocked loading weights.
        duration_ms: f64,
    },
}

impl TraceEventKind {
    /// Short label used as the `"event"` JSON member.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::Admit { .. } => "admit",
            TraceEventKind::Reject { .. } => "reject",
            TraceEventKind::Infer { .. } => "infer",
            TraceEventKind::Complete { .. } => "complete",
            TraceEventKind::Drop { .. } => "drop",
            TraceEventKind::Switch { .. } => "switch",
        }
    }
}

/// One span event: a request, a timestamp, and what happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation time the event was recorded at.
    pub t_ms: f64,
    /// The request this event belongs to.
    pub request_id: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// One `{"type":"trace",...}` JSONL line carrying the caller's `labels`.
    pub fn to_json(&self, labels: &[(&str, &str)]) -> String {
        let suffix = label_suffix(labels);
        let head = format!(
            "{{\"type\":\"trace\",\"event\":{},\"t_ms\":{},\"request_id\":{}",
            json_str(self.kind.label()),
            json_f64(self.t_ms),
            self.request_id
        );
        let body = match self.kind {
            TraceEventKind::Admit {
                deadline_ms,
                queue_depth,
                predicted_ms,
            } => format!(
                ",\"deadline_ms\":{},\"queue_depth\":{queue_depth},\"predicted_ms\":{}",
                json_f64(deadline_ms),
                json_f64(predicted_ms)
            ),
            TraceEventKind::Reject { reason } => {
                format!(",\"reason\":{}", json_str(reason))
            }
            TraceEventKind::Infer {
                start_ms,
                batch,
                level_pos,
            } => format!(
                ",\"start_ms\":{},\"batch\":{batch},\"level_pos\":{level_pos}",
                json_f64(start_ms)
            ),
            TraceEventKind::Complete {
                arrival_ms,
                start_ms,
                finish_ms,
                batch,
                level_pos,
                met_deadline,
                predicted_ms,
            } => format!(
                ",\"arrival_ms\":{},\"start_ms\":{},\"finish_ms\":{},\
                 \"queue_ms\":{},\"infer_ms\":{},\"batch\":{batch},\
                 \"level_pos\":{level_pos},\"met_deadline\":{met_deadline},\"predicted_ms\":{}",
                json_f64(arrival_ms),
                json_f64(start_ms),
                json_f64(finish_ms),
                json_f64(start_ms - arrival_ms),
                json_f64(finish_ms - start_ms),
                json_f64(predicted_ms)
            ),
            TraceEventKind::Drop { reason } => {
                format!(",\"reason\":{}", json_str(reason))
            }
            TraceEventKind::Switch {
                from_level,
                to_level,
                duration_ms,
            } => format!(
                ",\"from_level\":{from_level},\"to_level\":{to_level},\"duration_ms\":{}",
                json_f64(duration_ms)
            ),
        };
        format!("{head}{body}{suffix}}}")
    }
}

/// Bounded recorder of [`TraceEvent`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecorder {
    ring: RingBuffer<TraceEvent>,
}

impl TraceRecorder {
    /// A recorder retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: RingBuffer::new(capacity),
        }
    }

    /// Records one event, evicting the oldest when the buffer is full.
    pub fn record(&mut self, event: TraceEvent) {
        self.ring.push(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.to_vec()
    }

    /// How many events were evicted to bound memory.
    pub fn overwritten(&self) -> u64 {
        self.ring.overwritten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_evictions() {
        let mut ring = RingBuffer::new(3);
        assert!(ring.is_empty());
        for i in 0..5u32 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.to_vec(), vec![2, 3, 4], "oldest first after wrap");
        assert_eq!(ring.overwritten(), 2);
    }

    #[test]
    fn complete_events_serialise_the_timing_breakdown() {
        let event = TraceEvent {
            t_ms: 120.0,
            request_id: 42,
            kind: TraceEventKind::Complete {
                arrival_ms: 100.0,
                start_ms: 110.0,
                finish_ms: 120.0,
                batch: 4,
                level_pos: 1,
                met_deadline: true,
                predicted_ms: 9.5,
            },
        };
        let json = event.to_json(&[("device", "d0")]);
        assert!(json.contains("\"event\":\"complete\""));
        assert!(json.contains("\"queue_ms\":10"));
        assert!(json.contains("\"infer_ms\":10"));
        assert!(json.contains("\"met_deadline\":true"));
        assert!(json.contains("\"device\":\"d0\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn recorder_preserves_order_and_eviction_count() {
        let mut recorder = TraceRecorder::new(2);
        for id in 0..4u64 {
            recorder.record(TraceEvent {
                t_ms: id as f64,
                request_id: id,
                kind: TraceEventKind::Drop { reason: "dead" },
            });
        }
        let events = recorder.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].request_id, 2);
        assert_eq!(events[1].request_id, 3);
        assert_eq!(recorder.overwritten(), 2);
    }
}
