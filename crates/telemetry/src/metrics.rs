//! Sharded metric registry: interned names, plain-index shards.
//!
//! A [`MetricRegistry`] owns the name space and hands out dense integer ids
//! at registration time; a [`MetricShard`] is the matching flat storage
//! (`Vec<u64>` counters, `Vec<Option<f64>>` gauges, histograms). The hot
//! path — `shard.add(id, 1)` — is a bounds-checked array add: no locks, no
//! hashing, no allocation. Every worker or device owns its own shard and
//! merges it into an aggregate at window boundaries, which is where the
//! histogram's associative [`StreamingHistogram::merge`] earns its keep.

use crate::histogram::StreamingHistogram;
use crate::json::{json_f64, json_str, label_suffix};

/// Handle of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// The metric name space: registration interns a name and returns the dense
/// id shards index by.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    counters: Vec<String>,
    gauges: Vec<String>,
    histograms: Vec<String>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter and returns its id.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counters.push(name.to_string());
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge and returns its id.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.gauges.push(name.to_string());
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram and returns its id.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        self.histograms.push(name.to_string());
        HistogramId(self.histograms.len() - 1)
    }

    /// A zeroed shard matching the current registration layout. Shards
    /// created from the same registry state merge; registering more metrics
    /// afterwards makes older shards incompatible (length-checked).
    pub fn shard(&self) -> MetricShard {
        MetricShard {
            counters: vec![0; self.counters.len()],
            gauges: vec![None; self.gauges.len()],
            histograms: vec![StreamingHistogram::new(); self.histograms.len()],
        }
    }

    /// Pairs a shard's values with the registered names.
    ///
    /// # Panics
    ///
    /// Panics if `shard` does not match this registry's layout.
    pub fn snapshot(&self, shard: &MetricShard) -> MetricsSnapshot {
        assert_eq!(shard.counters.len(), self.counters.len(), "layout mismatch");
        assert_eq!(shard.gauges.len(), self.gauges.len(), "layout mismatch");
        assert_eq!(
            shard.histograms.len(),
            self.histograms.len(),
            "layout mismatch"
        );
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .cloned()
                .zip(shard.counters.iter().copied())
                .collect(),
            gauges: self
                .gauges
                .iter()
                .zip(&shard.gauges)
                .filter_map(|(name, g)| g.map(|v| (name.clone(), v)))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .cloned()
                .zip(shard.histograms.iter().cloned())
                .collect(),
        }
    }
}

/// Flat metric storage for one worker/device, indexed by registry ids.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricShard {
    counters: Vec<u64>,
    gauges: Vec<Option<f64>>,
    histograms: Vec<StreamingHistogram>,
}

impl MetricShard {
    /// Adds `delta` to a counter.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0] += delta;
    }

    /// Current value of a counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Sets a gauge to `value`.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0] = Some(value);
    }

    /// Current value of a gauge (`None` until first set).
    pub fn gauge(&self, id: GaugeId) -> Option<f64> {
        self.gauges[id.0]
    }

    /// Records a sample into a histogram.
    pub fn record(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].record(value);
    }

    /// The histogram behind `id`.
    pub fn histogram(&self, id: HistogramId) -> &StreamingHistogram {
        &self.histograms[id.0]
    }

    /// Merges another shard of the same layout into this one: counters add,
    /// histograms merge bucket-wise, and a gauge set in `other` overwrites
    /// (the merged-in shard is the more recent observer).
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ.
    pub fn merge(&mut self, other: &MetricShard) {
        assert_eq!(self.counters.len(), other.counters.len(), "layout mismatch");
        assert_eq!(self.gauges.len(), other.gauges.len(), "layout mismatch");
        assert_eq!(
            self.histograms.len(),
            other.histograms.len(),
            "layout mismatch"
        );
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            *mine += theirs;
        }
        for (mine, theirs) in self.gauges.iter_mut().zip(&other.gauges) {
            if theirs.is_some() {
                *mine = *theirs;
            }
        }
        for (mine, theirs) in self.histograms.iter_mut().zip(&other.histograms) {
            mine.merge(theirs);
        }
    }
}

/// Named metric values detached from the registry, ready for reporting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value (unset gauges are omitted).
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → full histogram (mergeable downstream).
    pub histograms: Vec<(String, StreamingHistogram)>,
}

impl MetricsSnapshot {
    /// Value of a counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge by name, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&StreamingHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Merges another snapshot into this one by metric *name*: counters add,
    /// histograms merge bucket-wise, and a gauge present in `other`
    /// overwrites (the merged-in snapshot is the more recent observer).
    /// Names only `other` has are appended, so merging snapshots from
    /// differently-registered shards (e.g. per-device `routed_to:<dev>`
    /// counters) is total rather than a layout error. The operation is
    /// associative and commutative for counters and histograms; gauge
    /// last-wins makes it order-sensitive for gauges only.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += value,
                None => self.counters.push((name.clone(), *value)),
            }
        }
        for (name, value) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine = *value,
                None => self.gauges.push((name.clone(), *value)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
    }

    /// Drops series measured against the real clock (the `*_wall_ms`
    /// histograms). Everything else in a simulated run is a pure function
    /// of the seed, so a snapshot scrubbed of wall-clock series compares
    /// bit-exactly across replays — what the chaos harness's
    /// replay-exactness checks rely on.
    pub fn scrub_wall_clock(&mut self) {
        self.histograms
            .retain(|(name, _)| !name.ends_with("_wall_ms"));
    }

    /// One `{"type":"metric",...}` JSONL line per metric, each carrying the
    /// caller's `labels`. Histogram lines summarise count/sum/min/max and
    /// the p50/p90/p95/p99 quantiles.
    pub fn to_jsonl_lines(&self, labels: &[(&str, &str)]) -> Vec<String> {
        let suffix = label_suffix(labels);
        let mut lines =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + self.histograms.len());
        for (name, value) in &self.counters {
            lines.push(format!(
                "{{\"type\":\"metric\",\"kind\":\"counter\",\"name\":{},\"value\":{value}{suffix}}}",
                json_str(name)
            ));
        }
        for (name, value) in &self.gauges {
            lines.push(format!(
                "{{\"type\":\"metric\",\"kind\":\"gauge\",\"name\":{},\"value\":{}{suffix}}}",
                json_str(name),
                json_f64(*value)
            ));
        }
        for (name, h) in &self.histograms {
            lines.push(format!(
                "{{\"type\":\"metric\",\"kind\":\"histogram\",\"name\":{},\"count\":{},\
                 \"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}{suffix}}}",
                json_str(name),
                h.count(),
                json_f64(h.sum()),
                json_f64(h.min()),
                json_f64(h.max()),
                json_f64(h.quantile(0.50)),
                json_f64(h.quantile(0.90)),
                json_f64(h.quantile(0.95)),
                json_f64(h.quantile(0.99)),
            ));
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_index_their_own_shard_without_interference() {
        let mut registry = MetricRegistry::new();
        let a = registry.counter("a");
        let b = registry.counter("b");
        let g = registry.gauge("g");
        let h = registry.histogram("h");
        let mut shard = registry.shard();
        shard.add(a, 2);
        shard.add(b, 5);
        shard.add(a, 1);
        shard.set(g, 0.25);
        shard.record(h, 10.0);
        assert_eq!(shard.counter(a), 3);
        assert_eq!(shard.counter(b), 5);
        assert_eq!(shard.gauge(g), Some(0.25));
        assert_eq!(shard.histogram(h).count(), 1);
        let snap = registry.snapshot(&shard);
        assert_eq!(snap.counter("a"), Some(3));
        assert_eq!(snap.gauge("g"), Some(0.25));
        assert_eq!(snap.histogram("h").unwrap().count(), 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn shard_merge_adds_counters_and_overwrites_gauges() {
        let mut registry = MetricRegistry::new();
        let c = registry.counter("c");
        let g = registry.gauge("g");
        let h = registry.histogram("h");
        let mut total = registry.shard();
        total.add(c, 1);
        total.set(g, 1.0);
        total.record(h, 5.0);
        let mut worker = registry.shard();
        worker.add(c, 2);
        worker.record(h, 50.0);
        total.merge(&worker);
        assert_eq!(total.counter(c), 3);
        assert_eq!(total.gauge(g), Some(1.0), "unset gauge does not clobber");
        assert_eq!(total.histogram(h).count(), 2);
        let mut newer = registry.shard();
        newer.set(g, 0.5);
        total.merge(&newer);
        assert_eq!(total.gauge(g), Some(0.5), "set gauge overwrites");
    }

    #[test]
    fn snapshot_merge_is_by_name_and_appends_strangers() {
        let mut reg_a = MetricRegistry::new();
        let ca = reg_a.counter("shared");
        let ga = reg_a.gauge("soc");
        let ha = reg_a.histogram("lat");
        let mut shard_a = reg_a.shard();
        shard_a.add(ca, 3);
        shard_a.set(ga, 0.9);
        shard_a.record(ha, 1.0);
        let mut reg_b = MetricRegistry::new();
        // Different registration order and an extra per-device counter.
        let gb = reg_b.gauge("soc");
        let cb_extra = reg_b.counter("routed_to:dev-1");
        let cb = reg_b.counter("shared");
        let hb = reg_b.histogram("lat");
        let mut shard_b = reg_b.shard();
        shard_b.add(cb, 4);
        shard_b.add(cb_extra, 7);
        shard_b.set(gb, 0.4);
        shard_b.record(hb, 3.0);
        let mut merged = reg_a.snapshot(&shard_a);
        merged.merge(&reg_b.snapshot(&shard_b));
        assert_eq!(merged.counter("shared"), Some(7));
        assert_eq!(merged.counter("routed_to:dev-1"), Some(7));
        assert_eq!(merged.gauge("soc"), Some(0.4), "gauge last-wins");
        let h = merged.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4.0);
    }

    #[test]
    fn unset_gauges_are_omitted_from_snapshots() {
        let mut registry = MetricRegistry::new();
        let _ = registry.gauge("never-set");
        let set = registry.gauge("set");
        let mut shard = registry.shard();
        shard.set(set, 7.0);
        let snap = registry.snapshot(&shard);
        assert_eq!(snap.gauges, vec![("set".to_string(), 7.0)]);
        let lines = snap.to_jsonl_lines(&[]);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"name\":\"set\""));
    }
}
