//! Tiny hand-rolled JSON encoding helpers (the workspace is offline; the
//! vendored `serde` stand-in has no serializer, and the JSONL schema here
//! is small enough that hand-assembly is the simpler dependency story).

/// A JSON number for `v`, or `null` when `v` is not finite — `inf`/`NaN`
/// must never leak into a JSONL file.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A JSON string literal for `s`, with the mandatory escapes applied.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders extra `labels` as trailing `,"key":"value"` JSON members.
pub(crate) fn label_suffix(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!(",{}:{}", json_str(k), json_str(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_and_strings_encode_as_valid_json() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(label_suffix(&[("device", "d0")]), ",\"device\":\"d0\"");
        assert_eq!(label_suffix(&[]), "");
    }
}
