//! Telemetry configuration: the Off/Counters/Full dial and the ring-buffer
//! capacities of the full level.

use std::str::FromStr;

/// How much the runtime records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TelemetryLevel {
    /// Nothing is recorded; behaviour and overhead are identical to an
    /// uninstrumented build. The default.
    #[default]
    Off,
    /// Counters, gauges and streaming histograms — the cheap aggregates the
    /// <3% overhead budget is gated on.
    Counters,
    /// Everything: aggregates plus per-request lifecycle tracing and the
    /// controller decision audit.
    Full,
}

impl TelemetryLevel {
    /// Whether counters/gauges/histograms are recorded at this level.
    pub fn counters_enabled(self) -> bool {
        !matches!(self, TelemetryLevel::Off)
    }

    /// Whether tracing and the decision audit are recorded at this level.
    pub fn full_enabled(self) -> bool {
        matches!(self, TelemetryLevel::Full)
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Full => "full",
        }
    }
}

impl FromStr for TelemetryLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TelemetryLevel::Off),
            "counters" => Ok(TelemetryLevel::Counters),
            "full" => Ok(TelemetryLevel::Full),
            other => Err(format!(
                "unknown telemetry level {other:?} (expected off|counters|full)"
            )),
        }
    }
}

/// Telemetry parameters of a serve/fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Recording level.
    pub level: TelemetryLevel,
    /// Ring-buffer bound on retained trace events (per device). Once full,
    /// the oldest events are overwritten and counted.
    pub trace_capacity: usize,
    /// Ring-buffer bound on retained controller decisions (per device).
    pub audit_capacity: usize,
    /// Ring-buffer bound on retained scrape windows and alert transitions
    /// of the observability plane (per device, full level only).
    pub series_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            level: TelemetryLevel::Off,
            // ~5 events per request: enough to hold every event of the
            // canned acceptance traces without overwriting
            trace_capacity: 65_536,
            audit_capacity: 8_192,
            // one window per simulated second: ~17 minutes of history
            series_capacity: 1_024,
        }
    }
}

impl TelemetryConfig {
    /// Counters-level configuration.
    pub fn counters() -> Self {
        Self {
            level: TelemetryLevel::Counters,
            ..Self::default()
        }
    }

    /// Full-level configuration with the default ring-buffer bounds.
    pub fn full() -> Self {
        Self {
            level: TelemetryLevel::Full,
            ..Self::default()
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.level.full_enabled()
            && (self.trace_capacity == 0 || self.audit_capacity == 0 || self.series_capacity == 0)
        {
            return Err("full telemetry requires positive trace/audit/series capacities".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_gate_features() {
        assert_eq!("off".parse::<TelemetryLevel>(), Ok(TelemetryLevel::Off));
        assert_eq!(
            "counters".parse::<TelemetryLevel>(),
            Ok(TelemetryLevel::Counters)
        );
        assert_eq!("full".parse::<TelemetryLevel>(), Ok(TelemetryLevel::Full));
        assert!("verbose".parse::<TelemetryLevel>().is_err());
        assert!(!TelemetryLevel::Off.counters_enabled());
        assert!(TelemetryLevel::Counters.counters_enabled());
        assert!(!TelemetryLevel::Counters.full_enabled());
        assert!(TelemetryLevel::Full.full_enabled());
        assert_eq!(TelemetryLevel::default(), TelemetryLevel::Off);
    }

    #[test]
    fn full_level_rejects_zero_capacities() {
        let mut config = TelemetryConfig::full();
        assert!(config.validate().is_ok());
        config.trace_capacity = 0;
        assert!(config.validate().is_err());
        let no_series = TelemetryConfig {
            series_capacity: 0,
            ..TelemetryConfig::full()
        };
        assert!(no_series.validate().is_err());
        let off = TelemetryConfig {
            trace_capacity: 0,
            ..TelemetryConfig::default()
        };
        assert!(off.validate().is_ok(), "capacities are moot when off");
    }
}
