//! Declarative alerting over derived series: threshold and SLO burn-rate
//! rules with a Pending → Firing → Resolved lifecycle and a bounded
//! transition log.
//!
//! Rules are evaluated on window boundaries against a [`Scraper`]'s
//! retained windows, so evaluation is a pure function of the scraped
//! metric history — a chaos replay with the same seed produces the same
//! transitions bit-exactly. The [`ObsPlane`] bundles one scraper with one
//! engine: each serving loop owns a plane and feeds it once per window.

use crate::json::{json_f64, json_str, label_suffix};
use crate::metrics::MetricsSnapshot;
use crate::timeseries::{Scraper, SeriesExpr, SeriesPoint};
use crate::trace::RingBuffer;

/// Where a rule is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The condition has never been true (or was false before ever
    /// reaching Firing).
    Inactive,
    /// The condition is true but has not yet held for `for_windows`.
    Pending,
    /// The condition has held long enough; the alert is active.
    Firing,
    /// The alert fired and the condition has since cleared.
    Resolved,
}

impl AlertState {
    /// Short label used in JSONL output.
    pub fn label(&self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// Direction of a threshold comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compare {
    /// Condition is true when the series value is strictly above the
    /// threshold.
    Above,
    /// Condition is true when the series value is strictly below the
    /// threshold.
    Below,
}

/// When a rule's condition is considered true for one window.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertCondition {
    /// The latest point of `series` compares against `threshold`.
    Threshold {
        /// The watched series.
        series: SeriesExpr,
        /// Comparison direction.
        op: Compare,
        /// The boundary value.
        threshold: f64,
    },
    /// Multi-window SLO burn rate: true when the mean of `series` over
    /// BOTH the last `short_windows` and the last `long_windows` exceeds
    /// `slo * factor`. The short window makes the alert react, the long
    /// window stops a single bad window from paging; this is the
    /// two-window burn-rate policy from SRE practice, evaluated on the
    /// scraper's deterministic window ring.
    BurnRate {
        /// The error-ratio series being budgeted (e.g. miss rate).
        series: SeriesExpr,
        /// The error budget per window (e.g. 0.01 for a 99% SLO).
        slo: f64,
        /// How many times faster than budget the burn must be.
        factor: f64,
        /// Reactive window count (must be > 0).
        short_windows: u32,
        /// Confirmation window count (must be >= `short_windows`).
        long_windows: u32,
    },
}

/// A named alert rule: a condition plus how long it must hold.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name, carried on every transition.
    pub name: String,
    /// Per-window truth condition.
    pub condition: AlertCondition,
    /// Consecutive true windows required before Firing (1 fires
    /// immediately).
    pub for_windows: u32,
}

/// One state change of one rule, with the series value that drove it.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Window index the transition happened at.
    pub t_s: u32,
    /// The rule that transitioned.
    pub rule: String,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// The condition's observed value at the transition (the latest series
    /// point for thresholds, the short-window burn ratio for burn rates).
    pub value: f64,
}

impl AlertTransition {
    /// One `{"type":"alert",...}` JSONL line carrying the caller's
    /// `labels`.
    pub fn to_json(&self, labels: &[(&str, &str)]) -> String {
        format!(
            "{{\"type\":\"alert\",\"rule\":{},\"t_s\":{},\"from\":{},\"to\":{},\"value\":{}{}}}",
            json_str(&self.rule),
            self.t_s,
            json_str(self.from.label()),
            json_str(self.to.label()),
            json_f64(self.value),
            label_suffix(labels)
        )
    }
}

#[derive(Debug, Clone, PartialEq)]
struct RuleState {
    state: AlertState,
    true_windows: u32,
    first_fired: Option<u32>,
}

/// Evaluates a fixed rule set once per window and logs every state
/// change.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    log: RingBuffer<AlertTransition>,
}

impl AlertEngine {
    /// An engine for `rules`, retaining at most `log_capacity`
    /// transitions.
    ///
    /// # Panics
    ///
    /// Panics if `log_capacity` is zero.
    pub fn new(rules: Vec<AlertRule>, log_capacity: usize) -> Self {
        let states = rules
            .iter()
            .map(|_| RuleState {
                state: AlertState::Inactive,
                true_windows: 0,
                first_fired: None,
            })
            .collect();
        Self {
            rules,
            states,
            log: RingBuffer::new(log_capacity),
        }
    }

    /// The default operator set: a time-to-death cliff predictor, a
    /// miss-rate SLO burn, and a queue saturation warning. `window_ms`
    /// scales the cliff threshold — the rule pages when the battery model
    /// projects death within eight governor windows, which (with
    /// `for_windows = 2`) leaves at least several windows of lead before
    /// the device actually dies.
    pub fn default_rules(window_ms: f64) -> Vec<AlertRule> {
        vec![
            AlertRule {
                name: "battery_cliff".into(),
                condition: AlertCondition::Threshold {
                    series: SeriesExpr::Gauge("time_to_death_ms".into()),
                    op: Compare::Below,
                    threshold: 8.0 * window_ms,
                },
                for_windows: 2,
            },
            AlertRule {
                name: "miss_burn_rate".into(),
                condition: AlertCondition::BurnRate {
                    series: SeriesExpr::Ratio {
                        numer: vec![
                            "deadline_missed".into(),
                            "requests_rejected_queue_full".into(),
                            "requests_rejected_certain_miss".into(),
                            "requests_dropped_dead".into(),
                        ],
                        denom: vec![
                            "requests_admitted".into(),
                            "requests_rejected_queue_full".into(),
                            "requests_rejected_certain_miss".into(),
                        ],
                    },
                    slo: 0.01,
                    factor: 4.0,
                    short_windows: 3,
                    long_windows: 12,
                },
                for_windows: 1,
            },
            AlertRule {
                name: "queue_depth_high".into(),
                condition: AlertCondition::Threshold {
                    series: SeriesExpr::Gauge("queue_depth".into()),
                    op: Compare::Above,
                    threshold: 48.0,
                },
                for_windows: 3,
            },
        ]
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Current state of every rule, by name.
    pub fn states(&self) -> Vec<(String, AlertState)> {
        self.rules
            .iter()
            .zip(&self.states)
            .map(|(rule, s)| (rule.name.clone(), s.state))
            .collect()
    }

    /// The retained transition log, oldest first.
    pub fn log(&self) -> Vec<AlertTransition> {
        self.log.to_vec()
    }

    /// Transitions evicted from the log to bound memory.
    pub fn log_dropped(&self) -> u64 {
        self.log.overwritten()
    }

    /// Window index at which `rule` first reached Firing, if it ever did.
    pub fn first_firing(&self, rule: &str) -> Option<u32> {
        self.rules
            .iter()
            .zip(&self.states)
            .find(|(r, _)| r.name == rule)
            .and_then(|(_, s)| s.first_fired)
    }

    /// Evaluates every rule against the scraper's windows at window
    /// `t_s`; returns (and logs) the transitions this window produced.
    pub fn evaluate(&mut self, t_s: u32, scraper: &Scraper) -> Vec<AlertTransition> {
        let mut out = Vec::new();
        for (rule, rs) in self.rules.iter().zip(self.states.iter_mut()) {
            let (truth, value) = Self::condition(&rule.condition, scraper);
            let from = rs.state;
            let to = match (from, truth) {
                (AlertState::Firing, true) => AlertState::Firing,
                (AlertState::Firing, false) => AlertState::Resolved,
                (_, false) => {
                    if from == AlertState::Resolved {
                        AlertState::Resolved
                    } else {
                        AlertState::Inactive
                    }
                }
                (_, true) => {
                    rs.true_windows += 1;
                    if rs.true_windows >= rule.for_windows {
                        AlertState::Firing
                    } else {
                        AlertState::Pending
                    }
                }
            };
            if !truth {
                rs.true_windows = 0;
            }
            if to == AlertState::Firing && rs.first_fired.is_none() {
                rs.first_fired = Some(t_s);
            }
            if to != from {
                let transition = AlertTransition {
                    t_s,
                    rule: rule.name.clone(),
                    from,
                    to,
                    value,
                };
                self.log.push(transition.clone());
                out.push(transition);
            }
            rs.state = to;
        }
        out
    }

    /// Evaluates one condition; returns (is it true, the observed value).
    fn condition(condition: &AlertCondition, scraper: &Scraper) -> (bool, f64) {
        match condition {
            AlertCondition::Threshold {
                series,
                op,
                threshold,
            } => match scraper.evaluate_tail(series, 1).last() {
                None => (false, f64::NAN),
                Some(SeriesPoint { value, .. }) => {
                    let truth = match op {
                        Compare::Above => value > threshold,
                        Compare::Below => value < threshold,
                    };
                    (truth, *value)
                }
            },
            AlertCondition::BurnRate {
                series,
                slo,
                factor,
                short_windows,
                long_windows,
            } => {
                let tail = (*short_windows).max(*long_windows) as usize;
                let points = scraper.evaluate_tail(series, tail.max(1));
                if points.is_empty() {
                    return (false, f64::NAN);
                }
                let mean_of_last = |n: u32| -> f64 {
                    let n = (n as usize).max(1).min(points.len());
                    let tail = &points[points.len() - n..];
                    tail.iter().map(|p| p.value).sum::<f64>() / n as f64
                };
                let short_burn = mean_of_last(*short_windows) / slo;
                let long_burn = mean_of_last(*long_windows) / slo;
                (short_burn >= *factor && long_burn >= *factor, short_burn)
            }
        }
    }
}

/// The observed state of one plane: evaluated series, alert transitions
/// and rule states, plus the ring accounting a consumer needs to judge
/// completeness. Snapshots carry evaluated points, not raw windows, so
/// they stay small and serialise directly.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// Scrape window length in milliseconds.
    pub window_ms: f64,
    /// Scrapes performed over the plane's lifetime.
    pub windows_observed: u64,
    /// Windows evicted from the scraper's ring.
    pub windows_dropped: u64,
    /// Non-monotone scrapes detected (0 unless a source restarted).
    pub counter_resets: u64,
    /// Every named series, evaluated over the retained windows.
    pub series: Vec<(String, Vec<SeriesPoint>)>,
    /// The retained alert transition log, oldest first.
    pub alerts: Vec<AlertTransition>,
    /// Transitions evicted from the alert log.
    pub alerts_dropped: u64,
    /// Current state of every rule.
    pub states: Vec<(String, AlertState)>,
}

impl ObsSnapshot {
    /// Points of the named series, if configured.
    pub fn series(&self, name: &str) -> Option<&[SeriesPoint]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, points)| points.as_slice())
    }

    /// Window index at which `rule` first transitioned to Firing, if the
    /// retained log holds it.
    pub fn first_firing(&self, rule: &str) -> Option<u32> {
        self.alerts
            .iter()
            .find(|t| t.rule == rule && t.to == AlertState::Firing)
            .map(|t| t.t_s)
    }

    /// Every series point and alert transition as JSONL, plus one
    /// `{"type":"obs",...}` accounting line.
    pub fn to_jsonl_lines(&self, labels: &[(&str, &str)]) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, points) in &self.series {
            for point in points {
                lines.push(point.to_json(name, labels));
            }
        }
        for transition in &self.alerts {
            lines.push(transition.to_json(labels));
        }
        lines.push(format!(
            "{{\"type\":\"obs\",\"window_ms\":{},\"windows_observed\":{},\
             \"windows_dropped\":{},\"counter_resets\":{},\"alerts_dropped\":{}{}}}",
            json_f64(self.window_ms),
            self.windows_observed,
            self.windows_dropped,
            self.counter_resets,
            self.alerts_dropped,
            label_suffix(labels)
        ));
        lines
    }
}

/// One scraper plus one alert engine: the unit each serving loop owns
/// and feeds once per window boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsPlane {
    scraper: Scraper,
    engine: AlertEngine,
}

impl ObsPlane {
    /// A plane from explicit parts.
    pub fn new(scraper: Scraper, engine: AlertEngine) -> Self {
        Self { scraper, engine }
    }

    /// The standard plane both serving paths use: default dashboard
    /// series and default operator rules, retaining `capacity` windows
    /// and transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn standard(window_ms: f64, capacity: usize) -> Self {
        Self {
            scraper: Scraper::new(window_ms, capacity, Scraper::default_series()),
            engine: AlertEngine::new(AlertEngine::default_rules(window_ms), capacity),
        }
    }

    /// The plane's scraper (read-only).
    pub fn scraper(&self) -> &Scraper {
        &self.scraper
    }

    /// The plane's alert engine (read-only).
    pub fn engine(&self) -> &AlertEngine {
        &self.engine
    }

    /// Scrapes `snapshot` as window `t_s` ending at `end_ms` and evaluates
    /// the rules; returns this window's alert transitions.
    pub fn observe_window(
        &mut self,
        t_s: u32,
        end_ms: f64,
        snapshot: MetricsSnapshot,
    ) -> Vec<AlertTransition> {
        self.scraper.scrape(t_s, end_ms, snapshot);
        self.engine.evaluate(t_s, &self.scraper)
    }

    /// The current observed state (evaluated series + alert log).
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            window_ms: self.scraper.window_ms(),
            windows_observed: self.scraper.scrapes(),
            windows_dropped: self.scraper.windows_dropped(),
            counter_resets: self.scraper.counter_resets(),
            series: self.scraper.evaluate_named(),
            alerts: self.engine.log(),
            alerts_dropped: self.engine.log_dropped(),
            states: self.engine.states(),
        }
    }

    /// One streaming chunk for window `t_s`: only this window's series
    /// points and `transitions`, as JSONL terminated lines joined by
    /// `\n`. This is what the socket server pushes to `REQ_SUBSCRIBE`
    /// clients each window — a delta, not the whole retained history.
    pub fn window_jsonl(
        &self,
        t_s: u32,
        transitions: &[AlertTransition],
        labels: &[(&str, &str)],
    ) -> String {
        let mut lines = Vec::new();
        for (name, expr) in self.scraper.series() {
            // window indices in the ring are unique, so the newest point
            // either is this window's or the window produced none
            for point in self.scraper.evaluate_tail(expr, 1) {
                if point.t_s == t_s {
                    lines.push(point.to_json(name, labels));
                }
            }
        }
        for transition in transitions {
            lines.push(transition.to_json(labels));
        }
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauge_snapshot(ttd: f64, missed: u64, admitted: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("requests_admitted".into(), admitted),
                ("deadline_missed".into(), missed),
            ],
            gauges: vec![("time_to_death_ms".into(), ttd)],
            histograms: Vec::new(),
        }
    }

    #[test]
    fn threshold_rule_walks_pending_firing_resolved() {
        let rules = vec![AlertRule {
            name: "battery_cliff".into(),
            condition: AlertCondition::Threshold {
                series: SeriesExpr::Gauge("time_to_death_ms".into()),
                op: Compare::Below,
                threshold: 5_000.0,
            },
            for_windows: 2,
        }];
        let mut plane = ObsPlane::new(
            Scraper::new(1_000.0, 32, Vec::new()),
            AlertEngine::new(rules, 32),
        );
        // healthy → condition false
        assert!(plane
            .observe_window(0, 1_000.0, gauge_snapshot(60_000.0, 0, 10))
            .is_empty());
        // first bad window → Pending
        let t = plane.observe_window(1, 2_000.0, gauge_snapshot(4_000.0, 0, 20));
        assert_eq!(t.len(), 1);
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Inactive, AlertState::Pending)
        );
        // second bad window → Firing
        let t = plane.observe_window(2, 3_000.0, gauge_snapshot(3_000.0, 0, 30));
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Pending, AlertState::Firing)
        );
        assert_eq!(plane.engine().first_firing("battery_cliff"), Some(2));
        // recovery → Resolved, and it stays Resolved while healthy
        let t = plane.observe_window(3, 4_000.0, gauge_snapshot(90_000.0, 0, 40));
        assert_eq!(
            (t[0].from, t[0].to),
            (AlertState::Firing, AlertState::Resolved)
        );
        assert!(plane
            .observe_window(4, 5_000.0, gauge_snapshot(90_000.0, 0, 50))
            .is_empty());
        let snapshot = plane.snapshot();
        assert_eq!(snapshot.first_firing("battery_cliff"), Some(2));
        assert_eq!(snapshot.alerts.len(), 3);
    }

    #[test]
    fn a_single_bad_window_does_not_trip_the_burn_rate() {
        let rules = vec![AlertRule {
            name: "miss_burn_rate".into(),
            condition: AlertCondition::BurnRate {
                series: SeriesExpr::Ratio {
                    numer: vec!["deadline_missed".into()],
                    denom: vec!["requests_admitted".into()],
                },
                slo: 0.01,
                factor: 4.0,
                short_windows: 2,
                long_windows: 6,
            },
            for_windows: 1,
        }];
        let mut plane = ObsPlane::new(
            Scraper::new(1_000.0, 32, Vec::new()),
            AlertEngine::new(rules, 32),
        );
        let mut admitted = 0;
        let mut missed = 0;
        // six clean windows to fill the long lookback
        for t in 0..6u32 {
            admitted += 100;
            assert!(plane
                .observe_window(
                    t,
                    (t + 1) as f64 * 1_000.0,
                    gauge_snapshot(1e9, missed, admitted)
                )
                .is_empty());
        }
        // one bad window: the short burn spikes (5x budget) but the long
        // mean stays below 4x — no page
        admitted += 100;
        missed += 10;
        assert!(
            plane
                .observe_window(6, 7_000.0, gauge_snapshot(1e9, missed, admitted))
                .is_empty(),
            "long window must hold the page back"
        );
        // sustained burn trips both windows
        let mut fired = false;
        for t in 7..13u32 {
            admitted += 100;
            missed += 10;
            let transitions = plane.observe_window(
                t,
                (t + 1) as f64 * 1_000.0,
                gauge_snapshot(1e9, missed, admitted),
            );
            fired |= transitions.iter().any(|tr| tr.to == AlertState::Firing);
        }
        assert!(fired, "sustained 50x burn must fire");
    }

    #[test]
    fn snapshot_serialises_series_alerts_and_accounting() {
        let mut plane = ObsPlane::standard(1_000.0, 16);
        for t in 0..3u32 {
            plane.observe_window(
                t,
                (t + 1) as f64 * 1_000.0,
                gauge_snapshot(500.0, 0, (t + 1) as u64 * 10),
            );
        }
        let snapshot = plane.snapshot();
        assert!(snapshot.series("time_to_death_ms").is_some());
        assert_eq!(snapshot.windows_observed, 3);
        let lines = snapshot.to_jsonl_lines(&[("device", "d0")]);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines.iter().any(|l| l.contains("\"type\":\"series\"")));
        assert!(lines.iter().any(|l| l.contains("\"type\":\"alert\"")));
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"type\":\"obs\""))
                .count(),
            1
        );
        // the cliff gauge sits far below 8 windows; with for_windows = 2 it fires at t=1
        assert_eq!(snapshot.first_firing("battery_cliff"), Some(1));
        // streaming chunk carries only the asked-for window
        let chunk = plane.window_jsonl(2, &[], &[("source", "test")]);
        assert!(chunk.ends_with('\n'));
        assert!(chunk.contains("\"t_s\":2"));
        assert!(!chunk.contains("\"t_s\":1"));
    }
}
