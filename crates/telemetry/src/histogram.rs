//! Log-bucketed streaming histogram: bounded memory, lock-free recording,
//! associative merging and quantiles within one bucket of the true value.
//!
//! The bucketing is **log-linear in base 2** (the HdrHistogram layout): each
//! power-of-two octave between `2^MIN_EXP` and `2^MAX_EXP` is divided into
//! [`SUB_BUCKETS`] linear sub-buckets, so a value's bucket index is computed
//! straight from its IEEE-754 bits — no `ln`, no platform-dependent libm,
//! bit-identical on every machine. The relative bucket width is
//! `1/SUB_BUCKETS ≈ 3%`, which bounds the quantile error: the reported
//! quantile lands in the same bucket as the exact nearest-rank value.

/// Linear sub-buckets per power-of-two octave; the relative resolution of
/// the histogram is `1/SUB_BUCKETS`.
const SUB_BUCKETS: usize = 32;
/// Smallest representable exponent: values below `2^-10` (≈ 0.001 ms when
/// recording milliseconds) collapse into the first bucket.
const MIN_EXP: i32 = -10;
/// Largest representable exponent: values at or above `2^20` (≈ 17 minutes
/// in milliseconds) count in the overflow bucket, reported as the max.
const MAX_EXP: i32 = 20;
const OCTAVES: usize = (MAX_EXP - MIN_EXP) as usize;
const BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// Fixed-layout log-bucketed histogram of non-negative samples (latencies,
/// service times, batch sizes). `counts` stores only the *occupied* slice
/// of the conceptual [`BUCKETS`]-long array: `counts[i]` is bucket
/// `base + i`, and the slice is trimmed so `counts.first()` and
/// `counts.last()` are both nonzero (empty histograms hold an empty `Vec`
/// and `base == 0`). Real metric streams occupy a narrow band of the
/// 960-bucket range, so snapshot clones and delta scans touch tens of
/// slots instead of the full array — that is what keeps the per-window
/// observability scrape inside the full-telemetry overhead budget. Bucket
/// counts only ever grow, so the trimmed bounds are a pure function of the
/// recorded multiset and the derived `PartialEq` stays honest.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingHistogram {
    /// Absolute bucket index of `counts[0]`.
    base: usize,
    counts: Vec<u64>,
    /// Samples at or above `2^MAX_EXP`.
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            base: 0,
            counts: Vec::new(),
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The relative width of one bucket: quantiles are exact up to this
    /// fraction of the reported value.
    pub const fn relative_error() -> f64 {
        1.0 / SUB_BUCKETS as f64
    }

    /// Records one sample. Negative and sub-minimum values collapse into the
    /// first bucket; non-finite samples are ignored (they carry no
    /// information a bounded histogram can hold).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        match bucket_index(value) {
            Some(i) => *self.slot(i) += 1,
            None => self.overflow += 1,
        }
    }

    /// A mutable reference to the conceptual bucket `idx`, growing the
    /// trimmed slice to cover it. Growth happens at most once per newly
    /// occupied boundary bucket, so the amortised cost over a histogram's
    /// lifetime is bounded by the occupied span.
    fn slot(&mut self, idx: usize) -> &mut u64 {
        debug_assert!(idx < BUCKETS, "bucket index inside the layout");
        if self.counts.is_empty() {
            self.base = idx;
            self.counts.push(0);
        } else if idx < self.base {
            let grow = self.base - idx;
            self.counts.splice(0..0, std::iter::repeat_n(0, grow));
            self.base = idx;
        } else if idx >= self.base + self.counts.len() {
            self.counts.resize(idx - self.base + 1, 0);
        }
        &mut self.counts[idx - self.base]
    }

    /// The conceptual bucket `idx`'s count (0 outside the occupied slice).
    fn bucket(&self, idx: usize) -> u64 {
        idx.checked_sub(self.base)
            .and_then(|i| self.counts.get(i).copied())
            .unwrap_or(0)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`: the smallest bucket boundary
    /// with at least `q` of the mass at or below it, clamped to the observed
    /// maximum. Within one bucket width (≈ 3% relative) of the exact
    /// nearest-rank sample; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(self.base + i).min(self.max).max(self.min);
            }
        }
        // the rank falls in the overflow bucket
        self.max
    }

    /// Merges another histogram into this one. Associative and commutative:
    /// `(a ∪ b) ∪ c` and `a ∪ (b ∪ c)` hold identical buckets, which is
    /// what lets per-worker and per-device histograms aggregate in any
    /// order.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.count == 0 {
            return;
        }
        if !other.counts.is_empty() {
            if self.counts.is_empty() {
                self.base = other.base;
                self.counts = other.counts.clone();
            } else {
                // grow once to the union of the two occupied spans, then add
                let lo = self.base.min(other.base);
                let hi = (self.base + self.counts.len()).max(other.base + other.counts.len());
                if lo < self.base {
                    let grow = self.base - lo;
                    self.counts.splice(0..0, std::iter::repeat_n(0, grow));
                    self.base = lo;
                }
                self.counts.resize(hi - lo, 0);
                let offset = other.base - lo;
                for (i, &theirs) in other.counts.iter().enumerate() {
                    self.counts[offset + i] += theirs;
                }
            }
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The inclusive lower / exclusive upper boundaries of the bucket a
    /// value falls into (the quantile's uncertainty interval).
    pub fn bucket_bounds(value: f64) -> (f64, f64) {
        match bucket_index(value) {
            Some(i) => (bucket_lower(i), bucket_upper(i)),
            None => (two_pow(MAX_EXP), f64::INFINITY),
        }
    }

    /// The per-window delta between this snapshot and an earlier snapshot
    /// `prev` of the same cumulative histogram, or `None` when `self` is not
    /// a superset of `prev` (a counter reset: the histogram was replaced,
    /// not extended — bucket counts went backwards).
    ///
    /// The delta carries the window's bucket increments (sparse) *and* the
    /// end-state scalars (`count`/`overflow`/`sum`/`min`/`max` of `self`),
    /// so [`StreamingHistogram::apply_delta`] reconstructs `self` from
    /// `prev` bit-exactly: the floating-point fields travel as absolutes
    /// and are never re-derived by arithmetic that could round differently.
    pub fn delta_since(&self, prev: &StreamingHistogram) -> Option<HistogramDelta> {
        if self.count < prev.count || self.overflow < prev.overflow {
            return None;
        }
        if prev.count > 0 && (self.min > prev.min || self.max < prev.max) {
            return None;
        }
        // a trimmed histogram has nonzero boundary buckets, so any part of
        // `prev`'s occupied span outside `self`'s means a bucket shrank
        if !prev.counts.is_empty()
            && (self.counts.is_empty()
                || prev.base < self.base
                || prev.base + prev.counts.len() > self.base + self.counts.len())
        {
            return None;
        }
        let mut buckets = Vec::new();
        for (i, &cur) in self.counts.iter().enumerate() {
            let idx = self.base + i;
            let before = prev.bucket(idx);
            if cur < before {
                return None;
            }
            if cur > before {
                buckets.push((idx as u32, cur - before));
            }
        }
        Some(HistogramDelta {
            buckets,
            overflow: self.overflow - prev.overflow,
            count: self.count - prev.count,
            end_count: self.count,
            end_overflow: self.overflow,
            end_sum: self.sum,
            end_min: self.min,
            end_max: self.max,
        })
    }

    /// Re-merges a delta produced by [`StreamingHistogram::delta_since`]
    /// onto the snapshot it was diffed against, reconstructing the later
    /// snapshot **bit-exactly** (the delta's end-state scalars are copied,
    /// not recomputed).
    pub fn apply_delta(&self, delta: &HistogramDelta) -> StreamingHistogram {
        let mut merged = self.clone();
        for &(i, inc) in &delta.buckets {
            *merged.slot(i as usize) += inc;
        }
        merged.overflow = delta.end_overflow;
        merged.count = delta.end_count;
        merged.sum = delta.end_sum;
        merged.min = delta.end_min;
        merged.max = delta.end_max;
        merged
    }
}

/// One scrape window's worth of a cumulative [`StreamingHistogram`]: the
/// sparse bucket increments recorded during the window plus the end-state
/// scalars needed to re-merge the delta bit-exactly (see
/// [`StreamingHistogram::delta_since`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDelta {
    /// `(bucket index, added count)` pairs, ascending by index.
    buckets: Vec<(u32, u64)>,
    /// Overflow samples added during the window.
    overflow: u64,
    /// Samples added during the window.
    count: u64,
    end_count: u64,
    end_overflow: u64,
    end_sum: f64,
    end_min: f64,
    end_max: f64,
}

impl HistogramDelta {
    /// Samples recorded during the window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the window recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// A standalone histogram of just this window's samples, for per-window
    /// quantiles. Bucket counts are exact; when the window is the
    /// histogram's entire history the scalars are exact too, otherwise
    /// `min`/`max` are widened to the occupied bucket boundaries and `sum`
    /// is estimated from bucket midpoints (documented ±one-bucket error,
    /// same as every quantile read).
    pub fn window_histogram(&self) -> StreamingHistogram {
        if self.count == 0 {
            return StreamingHistogram::new();
        }
        let mut base = 0;
        let mut counts = Vec::new();
        if let (Some(&(first, _)), Some(&(last, _))) = (self.buckets.first(), self.buckets.last()) {
            base = first as usize;
            counts = vec![0; (last - first) as usize + 1];
            for &(i, inc) in &self.buckets {
                counts[i as usize - base] += inc;
            }
        }
        let exact = self.count == self.end_count;
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        if exact {
            (min, max, sum) = (self.end_min, self.end_max, self.end_sum);
        } else {
            for &(i, inc) in &self.buckets {
                min = min.min(bucket_lower(i as usize));
                max = max.max(bucket_upper(i as usize));
                sum += inc as f64 * 0.5 * (bucket_lower(i as usize) + bucket_upper(i as usize));
            }
            if self.overflow > 0 {
                // overflow samples are bounded below by the layout maximum
                // and above by the cumulative maximum
                min = min.min(two_pow(MAX_EXP));
                max = max.max(self.end_max);
                sum += self.overflow as f64 * two_pow(MAX_EXP);
            }
        }
        StreamingHistogram {
            base,
            counts,
            overflow: self.overflow,
            count: self.count,
            sum,
            min,
            max,
        }
    }
}

/// `2^e` as an exact f64, for the exponent range the layout uses.
fn two_pow(e: i32) -> f64 {
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Bucket index of a finite value, or `None` for the overflow range.
fn bucket_index(value: f64) -> Option<usize> {
    if value < two_pow(MIN_EXP) {
        // negative, zero and sub-minimum values share the first bucket
        return Some(0);
    }
    if value >= two_pow(MAX_EXP) {
        return None;
    }
    let bits = value.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as i32 - 1023;
    // top bits of the mantissa select the linear sub-bucket inside the octave
    let sub = (bits >> (52 - SUB_BUCKETS.trailing_zeros() as u64)) as usize & (SUB_BUCKETS - 1);
    Some(((exponent - MIN_EXP) as usize) * SUB_BUCKETS + sub)
}

/// Inclusive lower boundary of bucket `i`.
fn bucket_lower(i: usize) -> f64 {
    let exponent = MIN_EXP + (i / SUB_BUCKETS) as i32;
    let sub = (i % SUB_BUCKETS) as f64;
    two_pow(exponent) * (1.0 + sub / SUB_BUCKETS as f64)
}

/// Exclusive upper boundary of bucket `i`.
fn bucket_upper(i: usize) -> f64 {
    let exponent = MIN_EXP + (i / SUB_BUCKETS) as i32;
    let sub = (i % SUB_BUCKETS) as f64 + 1.0;
    two_pow(exponent) * (1.0 + sub / SUB_BUCKETS as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_boundary_exact() {
        let values = [0.001, 0.5, 1.0, 1.03, 2.0, 3.999, 4.0, 100.0, 1e5];
        let mut last = 0usize;
        for v in values {
            let i = bucket_index(v).expect("in range");
            assert!(i >= last, "bucket index must be monotone at {v}");
            assert!(bucket_lower(i) <= v && v < bucket_upper(i), "bounds at {v}");
            last = i;
        }
        // powers of two start a fresh octave exactly
        let i = bucket_index(2.0).unwrap();
        assert_eq!(bucket_lower(i), 2.0);
    }

    #[test]
    fn quantiles_track_exact_nearest_rank_within_a_bucket() {
        let mut h = StreamingHistogram::new();
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 / 7.0).collect();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let exact = samples[rank - 1];
            let (lo, hi) = StreamingHistogram::bucket_bounds(exact);
            let approx = h.quantile(q);
            assert!(
                (lo..=hi).contains(&approx),
                "q={q}: {approx} outside [{lo}, {hi}] around exact {exact}"
            );
        }
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = StreamingHistogram::new();
        for _ in 0..8 {
            h.record(100.0);
        }
        // the max clamp collapses the bucket to the one observed value
        assert_eq!(h.quantile(0.5), 100.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.min(), 100.0);
        assert_eq!(h.mean(), 100.0);
    }

    #[test]
    fn empty_and_edge_inputs_are_safe() {
        let mut h = StreamingHistogram::new();
        assert_eq!(h.quantile(0.95), 0.0);
        assert_eq!(h.max(), 0.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0, "non-finite samples are ignored");
        h.record(-5.0);
        h.record(0.0);
        assert_eq!(h.count(), 2, "sub-minimum samples are clamped, not lost");
        assert!(h.quantile(1.0) <= 0.0);
        h.record(1e9); // overflow range
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), 1e9, "overflow reports the observed max");
    }

    #[test]
    fn delta_apply_reconstructs_the_later_snapshot_bit_exactly() {
        let mut earlier = StreamingHistogram::new();
        for i in 0..100 {
            earlier.record((i as f64 * 7.3) % 250.0 + 0.5);
        }
        let mut later = earlier.clone();
        for i in 0..37 {
            later.record((i as f64 * 3.1) % 90.0 + 1.0);
        }
        later.record(1e9); // one overflow sample in the window
        let delta = later.delta_since(&earlier).expect("monotone growth");
        assert_eq!(delta.count(), 38);
        let rebuilt = earlier.apply_delta(&delta);
        assert_eq!(rebuilt, later);
        assert_eq!(rebuilt.sum().to_bits(), later.sum().to_bits());
        assert_eq!(rebuilt.min().to_bits(), later.min().to_bits());
        assert_eq!(rebuilt.max().to_bits(), later.max().to_bits());
        // the window histogram holds exactly the window's samples
        let window = delta.window_histogram();
        assert_eq!(window.count(), 38);
        assert!(window.quantile(1.0) >= 1e9);
    }

    #[test]
    fn delta_since_detects_resets_and_handles_empty_ends() {
        let mut a = StreamingHistogram::new();
        a.record(5.0);
        a.record(9.0);
        let fresh = StreamingHistogram::new();
        assert!(
            fresh.delta_since(&a).is_none(),
            "shrinking counts mean a reset, not a window"
        );
        let delta = a.delta_since(&fresh).expect("everything is new");
        assert_eq!(delta.count(), 2);
        assert_eq!(fresh.apply_delta(&delta), a);
        let idle = a.delta_since(&a).expect("identical snapshots diff");
        assert!(idle.is_empty());
        assert_eq!(idle.window_histogram().count(), 0);
        assert_eq!(a.apply_delta(&idle), a);
        let none = fresh.delta_since(&fresh).expect("empty to empty");
        assert_eq!(fresh.apply_delta(&none), fresh, "stays canonical-empty");
    }

    #[test]
    fn partial_window_histogram_stats_stay_within_a_bucket() {
        let mut earlier = StreamingHistogram::new();
        earlier.record(100.0);
        let mut later = earlier.clone();
        later.record(4.0);
        later.record(64.0);
        let window = later.delta_since(&earlier).unwrap().window_histogram();
        assert_eq!(window.count(), 2);
        let (lo4, hi4) = StreamingHistogram::bucket_bounds(4.0);
        let (_, hi64) = StreamingHistogram::bucket_bounds(64.0);
        assert!(window.min() >= lo4 && window.min() <= hi4);
        assert!(window.max() >= 64.0 && window.max() <= hi64);
        assert!(window.quantile(0.5) >= lo4);
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let mut all = StreamingHistogram::new();
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        for i in 0..500 {
            let v = (i as f64 * 13.7) % 400.0 + 0.01;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        // the sum differs by summation order only — compare it with a
        // relative tolerance, everything else must be bit-identical
        assert!((a.sum() - all.sum()).abs() <= 1e-9 * all.sum());
        a.sum = all.sum;
        assert_eq!(a, all, "merge must be exactly bucket-wise addition");
    }
}
