//! Log-bucketed streaming histogram: bounded memory, lock-free recording,
//! associative merging and quantiles within one bucket of the true value.
//!
//! The bucketing is **log-linear in base 2** (the HdrHistogram layout): each
//! power-of-two octave between `2^MIN_EXP` and `2^MAX_EXP` is divided into
//! [`SUB_BUCKETS`] linear sub-buckets, so a value's bucket index is computed
//! straight from its IEEE-754 bits — no `ln`, no platform-dependent libm,
//! bit-identical on every machine. The relative bucket width is
//! `1/SUB_BUCKETS ≈ 3%`, which bounds the quantile error: the reported
//! quantile lands in the same bucket as the exact nearest-rank value.

/// Linear sub-buckets per power-of-two octave; the relative resolution of
/// the histogram is `1/SUB_BUCKETS`.
const SUB_BUCKETS: usize = 32;
/// Smallest representable exponent: values below `2^-10` (≈ 0.001 ms when
/// recording milliseconds) collapse into the first bucket.
const MIN_EXP: i32 = -10;
/// Largest representable exponent: values at or above `2^20` (≈ 17 minutes
/// in milliseconds) count in the overflow bucket, reported as the max.
const MAX_EXP: i32 = 20;
const OCTAVES: usize = (MAX_EXP - MIN_EXP) as usize;
const BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// Fixed-layout log-bucketed histogram of non-negative samples (latencies,
/// service times, batch sizes). The bucket array (~7.5 KiB) is allocated
/// lazily on the first bucketed sample, so empty histograms — the common
/// case in freshly minted per-worker shards — cost one pointer-sized `Vec`
/// and merge in O(1). `counts` is either empty (no bucketed sample yet) or
/// exactly [`BUCKETS`] long; the representation is canonical, which keeps
/// the derived `PartialEq` honest.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    /// Samples at or above `2^MAX_EXP`.
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The relative width of one bucket: quantiles are exact up to this
    /// fraction of the reported value.
    pub const fn relative_error() -> f64 {
        1.0 / SUB_BUCKETS as f64
    }

    /// Records one sample. Negative and sub-minimum values collapse into the
    /// first bucket; non-finite samples are ignored (they carry no
    /// information a bounded histogram can hold).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        match bucket_index(value) {
            Some(i) => {
                if self.counts.is_empty() {
                    self.counts = vec![0; BUCKETS];
                }
                self.counts[i] += 1;
            }
            None => self.overflow += 1,
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`: the smallest bucket boundary
    /// with at least `q` of the mass at or below it, clamped to the observed
    /// maximum. Within one bucket width (≈ 3% relative) of the exact
    /// nearest-rank sample; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max).max(self.min);
            }
        }
        // the rank falls in the overflow bucket
        self.max
    }

    /// Merges another histogram into this one. Associative and commutative:
    /// `(a ∪ b) ∪ c` and `a ∪ (b ∪ c)` hold identical buckets, which is
    /// what lets per-worker and per-device histograms aggregate in any
    /// order.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.count == 0 {
            return;
        }
        if !other.counts.is_empty() {
            if self.counts.is_empty() {
                self.counts = other.counts.clone();
            } else {
                for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
                    *mine += theirs;
                }
            }
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The inclusive lower / exclusive upper boundaries of the bucket a
    /// value falls into (the quantile's uncertainty interval).
    pub fn bucket_bounds(value: f64) -> (f64, f64) {
        match bucket_index(value) {
            Some(i) => (bucket_lower(i), bucket_upper(i)),
            None => (two_pow(MAX_EXP), f64::INFINITY),
        }
    }
}

/// `2^e` as an exact f64, for the exponent range the layout uses.
fn two_pow(e: i32) -> f64 {
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Bucket index of a finite value, or `None` for the overflow range.
fn bucket_index(value: f64) -> Option<usize> {
    if value < two_pow(MIN_EXP) {
        // negative, zero and sub-minimum values share the first bucket
        return Some(0);
    }
    if value >= two_pow(MAX_EXP) {
        return None;
    }
    let bits = value.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as i32 - 1023;
    // top bits of the mantissa select the linear sub-bucket inside the octave
    let sub = (bits >> (52 - SUB_BUCKETS.trailing_zeros() as u64)) as usize & (SUB_BUCKETS - 1);
    Some(((exponent - MIN_EXP) as usize) * SUB_BUCKETS + sub)
}

/// Inclusive lower boundary of bucket `i`.
fn bucket_lower(i: usize) -> f64 {
    let exponent = MIN_EXP + (i / SUB_BUCKETS) as i32;
    let sub = (i % SUB_BUCKETS) as f64;
    two_pow(exponent) * (1.0 + sub / SUB_BUCKETS as f64)
}

/// Exclusive upper boundary of bucket `i`.
fn bucket_upper(i: usize) -> f64 {
    let exponent = MIN_EXP + (i / SUB_BUCKETS) as i32;
    let sub = (i % SUB_BUCKETS) as f64 + 1.0;
    two_pow(exponent) * (1.0 + sub / SUB_BUCKETS as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_boundary_exact() {
        let values = [0.001, 0.5, 1.0, 1.03, 2.0, 3.999, 4.0, 100.0, 1e5];
        let mut last = 0usize;
        for v in values {
            let i = bucket_index(v).expect("in range");
            assert!(i >= last, "bucket index must be monotone at {v}");
            assert!(bucket_lower(i) <= v && v < bucket_upper(i), "bounds at {v}");
            last = i;
        }
        // powers of two start a fresh octave exactly
        let i = bucket_index(2.0).unwrap();
        assert_eq!(bucket_lower(i), 2.0);
    }

    #[test]
    fn quantiles_track_exact_nearest_rank_within_a_bucket() {
        let mut h = StreamingHistogram::new();
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 / 7.0).collect();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
            let exact = samples[rank - 1];
            let (lo, hi) = StreamingHistogram::bucket_bounds(exact);
            let approx = h.quantile(q);
            assert!(
                (lo..=hi).contains(&approx),
                "q={q}: {approx} outside [{lo}, {hi}] around exact {exact}"
            );
        }
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = StreamingHistogram::new();
        for _ in 0..8 {
            h.record(100.0);
        }
        // the max clamp collapses the bucket to the one observed value
        assert_eq!(h.quantile(0.5), 100.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.min(), 100.0);
        assert_eq!(h.mean(), 100.0);
    }

    #[test]
    fn empty_and_edge_inputs_are_safe() {
        let mut h = StreamingHistogram::new();
        assert_eq!(h.quantile(0.95), 0.0);
        assert_eq!(h.max(), 0.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0, "non-finite samples are ignored");
        h.record(-5.0);
        h.record(0.0);
        assert_eq!(h.count(), 2, "sub-minimum samples are clamped, not lost");
        assert!(h.quantile(1.0) <= 0.0);
        h.record(1e9); // overflow range
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), 1e9, "overflow reports the observed max");
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let mut all = StreamingHistogram::new();
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        for i in 0..500 {
            let v = (i as f64 * 13.7) % 400.0 + 0.01;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        // the sum differs by summation order only — compare it with a
        // relative tolerance, everything else must be bit-identical
        assert!((a.sum() - all.sum()).abs() <= 1e-9 * all.sum());
        a.sum = all.sum;
        assert_eq!(a, all, "merge must be exactly bucket-wise addition");
    }
}
