//! The wall-time source behind kernel and model-build timings.
//!
//! Production code times real work with [`WallClock`]; tests swap in a
//! [`ManualClock`] that advances a fixed step per reading, so timing
//! assertions are deterministic on any host.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic source of milliseconds.
pub trait Clock: Send + Sync {
    /// Milliseconds since the clock's epoch.
    fn now_ms(&self) -> f64;
}

/// Real wall time, measured from construction.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl WallClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1_000.0
    }
}

/// Deterministic clock: every reading advances time by a fixed step, so the
/// k-th call returns `k * step_ms`. Thread-safe (the tick is atomic).
#[derive(Debug)]
pub struct ManualClock {
    ticks: AtomicU64,
    step_ms: f64,
}

impl ManualClock {
    /// A clock advancing `step_ms` per reading, starting at `step_ms`.
    pub fn new(step_ms: f64) -> Self {
        Self {
            ticks: AtomicU64::new(0),
            step_ms,
        }
    }

    /// Readings taken so far.
    pub fn readings(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> f64 {
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        tick as f64 * self.step_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_a_fixed_step_per_reading() {
        let clock = ManualClock::new(2.5);
        assert_eq!(clock.now_ms(), 2.5);
        assert_eq!(clock.now_ms(), 5.0);
        assert_eq!(clock.readings(), 2);
        // timing a span between two readings always yields exactly one step
        let start = clock.now_ms();
        let finish = clock.now_ms();
        assert_eq!(finish - start, 2.5);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
