//! [`Evolutionary`]: elitist (μ+λ) evolution over Level-2 assignments with
//! uniform crossover and per-level mutation — the classic NAS alternative
//! the paper's Table III compares the RL controller against.

use crate::optimizer::{AssignmentSpace, BestTracker, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the evolutionary optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionaryConfig {
    /// Elite population size μ; the first μ proposals seed it with random
    /// assignments, every later proposal is one offspring (λ = 1 per
    /// generation, steady state).
    pub population: usize,
    /// Per-level probability of replacing a gene with a random candidate.
    pub mutation_rate: f64,
    /// Probability an offspring is a uniform crossover of two parents
    /// (otherwise it is a mutated copy of the better parent).
    pub crossover_rate: f64,
}

impl Default for EvolutionaryConfig {
    fn default() -> Self {
        Self {
            population: 8,
            mutation_rate: 0.2,
            crossover_rate: 0.9,
        }
    }
}

impl EvolutionaryConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.population == 0 {
            return Err("population must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err("mutation_rate must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) {
            return Err("crossover_rate must be in [0, 1]".into());
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Member {
    actions: Vec<usize>,
    reward: f64,
    feasible: bool,
}

impl Member {
    /// Feasibility-first fitness key (higher is better).
    fn key(&self) -> (bool, f64) {
        (self.feasible, self.reward)
    }
}

/// Seeded (μ+λ) evolutionary search.
#[derive(Debug, Clone)]
pub struct Evolutionary {
    space: AssignmentSpace,
    config: EvolutionaryConfig,
    /// `config.population` clamped to the space size — the population holds
    /// distinct assignments, so a tiny space could otherwise never finish
    /// seeding and the optimizer would degrade to pure random search.
    effective_population: usize,
    rng: StdRng,
    /// Elite population, kept sorted best-first.
    parents: Vec<Member>,
    tracker: BestTracker,
}

impl Evolutionary {
    /// Creates the optimizer with the given hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(space: AssignmentSpace, config: EvolutionaryConfig, seed: u64) -> Self {
        config
            .validate()
            .expect("invalid evolutionary configuration");
        let effective_population = space
            .size()
            .map_or(config.population, |size| config.population.min(size));
        Self {
            space,
            config,
            effective_population,
            rng: StdRng::seed_from_u64(seed),
            parents: Vec::with_capacity(effective_population + 1),
            tracker: BestTracker::new(),
        }
    }

    /// Default hyper-parameters for a space.
    pub fn for_space(space: AssignmentSpace, seed: u64) -> Self {
        Self::new(space, EvolutionaryConfig::default(), seed)
    }

    fn random_assignment(&mut self) -> Vec<usize> {
        (0..self.space.num_levels)
            .map(|_| self.rng.gen_range(0..self.space.num_candidates))
            .collect()
    }

    /// Binary tournament: the better of two uniformly drawn parents.
    fn tournament(&mut self) -> usize {
        let a = self.rng.gen_range(0..self.parents.len());
        let b = self.rng.gen_range(0..self.parents.len());
        if self.parents[a].key() >= self.parents[b].key() {
            a
        } else {
            b
        }
    }
}

impl Optimizer for Evolutionary {
    fn name(&self) -> &'static str {
        "evolutionary"
    }

    fn space(&self) -> AssignmentSpace {
        self.space
    }

    fn propose(&mut self) -> Vec<usize> {
        if self.parents.len() < self.effective_population {
            return self.random_assignment();
        }
        let first = self.tournament();
        let second = self.tournament();
        let (better, other) = if self.parents[first].key() >= self.parents[second].key() {
            (first, second)
        } else {
            (second, first)
        };
        let mut child = if self.rng.gen::<f64>() < self.config.crossover_rate {
            // uniform crossover: each level independently from either parent
            (0..self.space.num_levels)
                .map(|level| {
                    let parent = if self.rng.gen::<bool>() {
                        better
                    } else {
                        other
                    };
                    self.parents[parent].actions[level]
                })
                .collect()
        } else {
            self.parents[better].actions.clone()
        };
        for gene in child.iter_mut() {
            if self.rng.gen::<f64>() < self.config.mutation_rate {
                *gene = self.rng.gen_range(0..self.space.num_candidates);
            }
        }
        child
    }

    fn observe(&mut self, actions: &[usize], reward: f64, meets_constraint: bool) {
        self.tracker.offer(actions, reward, meets_constraint);
        // rewards are deterministic per assignment, so a repeated
        // observation (the driver replays cache hits) carries no new
        // information — inserting it anyway would let copies of a converged
        // incumbent flood the elite population and collapse its diversity
        if self.parents.iter().any(|m| m.actions == actions) {
            return;
        }
        let member = Member {
            actions: actions.to_vec(),
            reward,
            feasible: meets_constraint,
        };
        // insert keeping best-first order; stable position for equal keys
        // (earlier observations stay ahead) keeps runs deterministic
        let at = self.parents.partition_point(|m| m.key() >= member.key());
        self.parents.insert(at, member);
        self.parents.truncate(self.effective_population);
    }

    fn best(&self) -> Option<Vec<usize>> {
        self.tracker.best_actions().map(<[usize]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Separable toy objective with a unique optimum at all-max genes.
    fn reward_of(actions: &[usize]) -> f64 {
        actions.iter().map(|&a| a as f64).sum::<f64>()
    }

    #[test]
    fn population_stays_bounded_and_sorted() {
        let space = AssignmentSpace::new(3, 4);
        let mut evo = Evolutionary::for_space(space, 3);
        for _ in 0..40 {
            let a = evo.propose();
            let r = reward_of(&a);
            evo.observe(&a, r, true);
        }
        assert!(evo.parents.len() <= evo.effective_population);
        for pair in evo.parents.windows(2) {
            assert!(pair[0].key() >= pair[1].key());
        }
    }

    #[test]
    fn converges_on_a_separable_toy_problem() {
        let space = AssignmentSpace::new(4, 5);
        let mut evo = Evolutionary::for_space(space, 11);
        for _ in 0..200 {
            let a = evo.propose();
            let r = reward_of(&a);
            evo.observe(&a, r, true);
        }
        let best = evo.best().expect("observed something");
        assert_eq!(best, vec![4, 4, 4, 4]);
    }

    #[test]
    fn tiny_spaces_still_reach_the_evolution_phase() {
        // 1 level x 3 candidates: only 3 distinct assignments, far below the
        // default population of 8 — seeding must still end and offspring
        // must be proposed (regression: this used to stay random forever)
        let space = AssignmentSpace::new(1, 3);
        let mut evo = Evolutionary::for_space(space, 2);
        assert_eq!(evo.effective_population, 3);
        for _ in 0..30 {
            let a = evo.propose();
            let r = a[0] as f64;
            evo.observe(&a, r, true);
        }
        assert_eq!(evo.parents.len(), 3, "all distinct assignments held");
        assert_eq!(evo.best(), Some(vec![2]));
    }

    #[test]
    fn infeasible_members_rank_below_feasible_ones() {
        let space = AssignmentSpace::new(2, 3);
        let mut evo = Evolutionary::new(
            space,
            EvolutionaryConfig {
                population: 2,
                ..EvolutionaryConfig::default()
            },
            5,
        );
        evo.observe(&[2, 2], 10.0, false);
        evo.observe(&[0, 0], 1.0, true);
        evo.observe(&[1, 1], 2.0, true);
        let keys: Vec<_> = evo.parents.iter().map(Member::key).collect();
        assert_eq!(keys, vec![(true, 2.0), (true, 1.0)]);
        assert_eq!(evo.best(), Some(vec![1, 1]));
    }
}
