//! [`RandomSearch`]: seeded uniform sampling of the assignment space — the
//! baseline every tuned optimizer must beat at equal evaluation budget.

use crate::optimizer::{AssignmentSpace, BestTracker, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random search.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    space: AssignmentSpace,
    rng: StdRng,
    tracker: BestTracker,
}

impl RandomSearch {
    /// Creates a seeded random search over `space`.
    pub fn new(space: AssignmentSpace, seed: u64) -> Self {
        Self {
            space,
            rng: StdRng::seed_from_u64(seed),
            tracker: BestTracker::new(),
        }
    }
}

impl Optimizer for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn space(&self) -> AssignmentSpace {
        self.space
    }

    fn propose(&mut self) -> Vec<usize> {
        (0..self.space.num_levels)
            .map(|_| self.rng.gen_range(0..self.space.num_candidates))
            .collect()
    }

    fn observe(&mut self, actions: &[usize], reward: f64, meets_constraint: bool) {
        self.tracker.offer(actions, reward, meets_constraint);
    }

    fn best(&self) -> Option<Vec<usize>> {
        self.tracker.best_actions().map(<[usize]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remembers_the_best_feasible_assignment() {
        let space = AssignmentSpace::new(2, 4);
        let mut search = RandomSearch::new(space, 1);
        assert!(search.best().is_none());
        for _ in 0..30 {
            let a = search.propose();
            let r = a.iter().sum::<usize>() as f64;
            // assignments summing above 5 are "infeasible"
            search.observe(&a, r, r <= 5.0);
        }
        let best = search.best().expect("something observed");
        assert!(best.iter().sum::<usize>() <= 5);
    }
}
